//! The stock-Linux engines (*strict* / *defer*): global-lock IOVA tree
//! allocation plus per-unmap (strict) or globally batched (deferred)
//! IOTLB invalidation — the baselines of the paper's Figure 1.

// lint: allow(panic) — IOVA-tree invariants are engine bugs, not runtime errors

use crate::flush::PendingUnmap;
use crate::{
    CoherentBuffer, CoherentHelper, DeferPolicy, DeferredFlusher, DmaBuf, DmaDirection, DmaEngine,
    DmaError, DmaMapping, FlushScope, GlobalCachedIovaAllocator, GlobalTreeIovaAllocator,
    IovaAllocator, PerCoreIovaAllocator, ProtectionProfile, Strictness,
};
use iommu::{DeviceId, Iommu, IovaPage};
use memsim::PhysMemory;
use simcore::sync::Mutex;
use simcore::CoreCtx;
use simcore::FxHashMap;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
struct LiveMapping {
    first_page: IovaPage,
    pages: u64,
}

/// The stock Linux intel-iommu DMA path.
///
/// `dma_map` allocates an IOVA range from the global interval tree (under
/// its lock — the FAST'15 bottleneck) and installs per-page mappings with
/// the requested direction's permissions. `dma_unmap` removes the mappings
/// and then either synchronously invalidates (strict) or appends to the
/// global deferred-flush list (deferred, 250 entries / 10 ms), whose lock
/// is the remaining multi-core bottleneck \[42\].
pub struct LinuxDma {
    mmu: Arc<Iommu>,
    dev: DeviceId,
    strictness: Strictness,
    name: &'static str,
    allocator: Box<dyn IovaAllocator + Send + Sync>,
    live: Mutex<FxHashMap<u64, LiveMapping>>,
    flusher: Option<DeferredFlusher>,
    coherent: CoherentHelper,
}

impl std::fmt::Debug for LinuxDma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinuxDma")
            .field("name", &self.name)
            .field("dev", &self.dev)
            .field("strictness", &self.strictness)
            .finish()
    }
}

impl LinuxDma {
    /// Creates the strict variant.
    pub fn strict(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        Self::new(mem, mmu, dev, Strictness::Strict)
    }

    /// Creates the deferred variant (global batching list).
    pub fn deferred(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        Self::new(mem, mmu, dev, Strictness::Deferred)
    }

    /// Creates EiovaR's strict variant (FAST'15 \[38\]): stock Linux plus a
    /// free-range cache in front of the IOVA tree. Strict protection at
    /// page granularity; the single allocator lock still limits scaling.
    pub fn eiovar_strict(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        let mut e = Self::new(mem, mmu, dev, Strictness::Strict);
        e.allocator = Box::new(GlobalCachedIovaAllocator::with_obs(e.mmu.obs().clone()));
        e.name = "eiovar+";
        e
    }

    /// Creates EiovaR's deferred variant (FAST'15 \[38\]).
    pub fn eiovar_deferred(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        let mut e = Self::new(mem, mmu, dev, Strictness::Deferred);
        e.allocator = Box::new(GlobalCachedIovaAllocator::with_obs(e.mmu.obs().clone()));
        e.name = "eiovar-";
        e
    }

    /// Creates the strict engine with the magazine-backed per-core IOVA
    /// allocator \[42\] in place of the global tree. Protection semantics
    /// and the engine name are unchanged — only the allocator's lock
    /// behavior differs, so scaling curves compare like for like.
    pub fn percore_strict(
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        dev: DeviceId,
        cores: usize,
    ) -> Self {
        let mut e = Self::new(mem, mmu, dev, Strictness::Strict);
        e.allocator = Box::new(PerCoreIovaAllocator::with_obs(cores, e.mmu.obs().clone()));
        e
    }

    /// Creates the deferred engine with the per-core IOVA allocator.
    pub fn percore_deferred(
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        dev: DeviceId,
        cores: usize,
    ) -> Self {
        let mut e = Self::new(mem, mmu, dev, Strictness::Deferred);
        e.allocator = Box::new(PerCoreIovaAllocator::with_obs(cores, e.mmu.obs().clone()));
        e
    }

    fn new(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId, strictness: Strictness) -> Self {
        let flusher = match strictness {
            Strictness::Strict => None,
            Strictness::Deferred => Some(DeferredFlusher::with_obs(
                DeferPolicy::linux_default(),
                FlushScope::Global,
                1,
                mmu.obs().clone(),
            )),
        };
        let allocator = Box::new(GlobalTreeIovaAllocator::with_obs(mmu.obs().clone()));
        LinuxDma {
            coherent: CoherentHelper::new(mem, mmu.clone(), dev),
            mmu,
            dev,
            strictness,
            name: match strictness {
                Strictness::Strict => "strict",
                Strictness::Deferred => "defer",
            },
            allocator,
            live: Mutex::new(FxHashMap::default()),
            flusher,
        }
    }

    /// The strictness this instance was built with.
    pub fn strictness(&self) -> Strictness {
        self.strictness
    }

    /// The IOVA allocator (for lock-contention stats).
    pub fn allocator(&self) -> &dyn IovaAllocator {
        self.allocator.as_ref()
    }

    /// The deferred flusher, if deferred.
    pub fn flusher(&self) -> Option<&DeferredFlusher> {
        self.flusher.as_ref()
    }

    fn drain(&self, ctx: &mut CoreCtx, batch: &[PendingUnmap]) {
        self.mmu.flush_device_sync(ctx, self.dev);
        // IOVAs become reusable only after the flush.
        for e in batch {
            self.allocator.free(ctx, e.page, e.pages);
        }
    }
}

impl DmaEngine for LinuxDma {
    fn name(&self) -> &'static str {
        self.name
    }

    fn device(&self) -> DeviceId {
        self.dev
    }

    fn profile(&self) -> ProtectionProfile {
        ProtectionProfile {
            name: self.name,
            uses_iommu: true,
            sub_page: false,
            no_vulnerability_window: self.strictness == Strictness::Strict,
        }
    }

    fn map(
        &self,
        ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError> {
        let pages = buf.pages();
        let first = self.allocator.alloc(ctx, pages)?;
        self.mmu
            .map_range(ctx, self.dev, first, buf.pa.pfn(), pages, dir.perms())?;
        let iova = first.base().add(buf.pa.page_offset() as u64);
        self.live.lock().insert(
            iova.get(),
            LiveMapping {
                first_page: first,
                pages,
            },
        );
        Ok(DmaMapping {
            iova,
            len: buf.len,
            dir,
            os_pa: buf.pa,
        })
    }

    fn unmap(&self, ctx: &mut CoreCtx, mapping: DmaMapping) -> Result<(), DmaError> {
        let live = self
            .live
            .lock()
            .remove(&mapping.iova.get())
            .ok_or(DmaError::BadUnmap(mapping.iova))?;
        let pages: Vec<IovaPage> = (0..live.pages).map(|i| live.first_page.add(i)).collect();
        for &p in &pages {
            self.mmu.unmap_page_nosync(ctx, self.dev, p)?;
        }
        match self.strictness {
            Strictness::Strict => {
                self.mmu.invalidate_pages_sync(ctx, self.dev, &pages);
                self.allocator.free(ctx, live.first_page, live.pages);
            }
            Strictness::Deferred => {
                let flusher = self.flusher.as_ref().expect("deferred mode has a flusher");
                flusher.defer(
                    ctx,
                    PendingUnmap {
                        page: live.first_page,
                        pages: live.pages,
                    },
                    |ctx, batch| self.drain(ctx, batch),
                );
            }
        }
        Ok(())
    }

    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError> {
        self.coherent
            .alloc(ctx, len, |ctx, pages, _| self.allocator.alloc(ctx, pages))
    }

    fn free_coherent(&self, ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError> {
        self.coherent.free(ctx, buf, |ctx, first, pages| {
            self.allocator.free(ctx, first, pages)
        })
    }

    fn flush_deferred(&self, ctx: &mut CoreCtx) {
        if let Some(flusher) = &self.flusher {
            flusher.force_flush(ctx, |ctx, batch| self.drain(ctx, batch));
        }
        // Magazine-backed allocators park freed ranges per core; return
        // them so teardown leaves nothing checked out of the shared pool.
        self.allocator.drain(ctx);
    }

    fn iova_lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        self.allocator.lock_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bus;
    use iommu::Iova;
    use memsim::{NumaDomain, NumaTopology};
    use simcore::{CoreId, CostModel, Phase};

    const DEV: DeviceId = DeviceId(0);

    struct Rig {
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        bus: Bus,
        ctx: CoreCtx,
    }

    fn rig() -> Rig {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(64)));
        let mmu = Arc::new(Iommu::new());
        let bus = Bus::Iommu {
            mmu: mmu.clone(),
            mem: mem.clone(),
        };
        Rig {
            mem,
            mmu,
            bus,
            ctx: CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz())),
        }
    }

    #[test]
    fn strict_roundtrip_with_nonidentity_iova() {
        let mut r = rig();
        let eng = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base().add(128), 1500);
        let m = eng.map(&mut r.ctx, buf, DmaDirection::FromDevice).unwrap();
        // The IOVA preserves the sub-page offset but not the frame number.
        assert_eq!(m.iova.page_offset(), 128);
        assert_ne!(m.iova.get(), buf.pa.get());

        r.bus.write(DEV, m.iova.get(), &vec![0x11u8; 1500]).unwrap();
        eng.unmap(&mut r.ctx, m).unwrap();
        assert_eq!(r.mem.read_vec(buf.pa, 1500).unwrap(), vec![0x11; 1500]);
        assert!(r.bus.write(DEV, m.iova.get(), b"late").is_err());
    }

    #[test]
    fn map_pays_tree_alloc_and_pagetable() {
        let mut r = rig();
        let eng = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let m = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base(), 64),
                DmaDirection::ToDevice,
            )
            .unwrap();
        let pt = r.ctx.breakdown.get(Phase::IommuPageTableMgmt);
        assert!(pt >= r.ctx.cost.iova_tree_alloc + r.ctx.cost.pagetable_map_page);
        assert!(r.ctx.breakdown.get(Phase::Spinlock) >= r.ctx.cost.spinlock_uncontended);
        eng.unmap(&mut r.ctx, m).unwrap();
    }

    #[test]
    fn deferred_leaves_window_then_recycles_iovas() {
        let mut r = rig();
        let eng = LinuxDma::deferred(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base(), 1500);
        let m = eng.map(&mut r.ctx, buf, DmaDirection::FromDevice).unwrap();
        r.bus.write(DEV, m.iova.get(), b"warm").unwrap();
        eng.unmap(&mut r.ctx, m).unwrap();
        // Window open: stale IOTLB entry still works.
        assert!(r.bus.write(DEV, m.iova.get(), b"attack").is_ok());
        eng.flush_deferred(&mut r.ctx);
        assert!(r.bus.write(DEV, m.iova.get(), b"late").is_err());
        // After the flush the IOVA range is reusable: map again and we may
        // get the same range back.
        let m2 = eng.map(&mut r.ctx, buf, DmaDirection::FromDevice).unwrap();
        assert_eq!(m2.iova, m.iova, "IOVA recycled only after flush");
        eng.unmap(&mut r.ctx, m2).unwrap();
        eng.flush_deferred(&mut r.ctx);
    }

    #[test]
    fn deferred_does_not_recycle_iova_before_flush() {
        let mut r = rig();
        let eng = LinuxDma::deferred(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frames(NumaDomain(0), 2).unwrap();
        let buf = DmaBuf::new(pfn.base(), 64);
        let m1 = eng.map(&mut r.ctx, buf, DmaDirection::ToDevice).unwrap();
        eng.unmap(&mut r.ctx, m1).unwrap();
        // Next map must NOT reuse the pending IOVA.
        let buf2 = DmaBuf::new(pfn.base().add(4096), 64);
        let m2 = eng.map(&mut r.ctx, buf2, DmaDirection::ToDevice).unwrap();
        assert_ne!(m2.iova.page(), m1.iova.page());
        eng.unmap(&mut r.ctx, m2).unwrap();
        eng.flush_deferred(&mut r.ctx);
    }

    #[test]
    fn per_direction_permissions_enforced() {
        let mut r = rig();
        let eng = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let m = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base(), 256),
                DmaDirection::ToDevice,
            )
            .unwrap();
        // ToDevice = device may read, not write.
        let mut b = [0u8; 8];
        assert!(r.bus.read(DEV, m.iova.get(), &mut b).is_ok());
        assert!(r.bus.write(DEV, m.iova.get(), b"x").is_err());
        eng.unmap(&mut r.ctx, m).unwrap();
    }

    #[test]
    fn page_granularity_still_exposes_page_tail() {
        // Even with per-direction perms, a 256-byte buffer exposes its whole
        // page to reads.
        let mut r = rig();
        let eng = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        r.mem.write(pfn.base().add(2000), b"NEIGHBOR").unwrap();
        let m = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base(), 256),
                DmaDirection::ToDevice,
            )
            .unwrap();
        let mut stolen = [0u8; 8];
        r.bus
            .read(DEV, m.iova.page().base().add(2000).get(), &mut stolen)
            .unwrap();
        assert_eq!(&stolen, b"NEIGHBOR");
        eng.unmap(&mut r.ctx, m).unwrap();
    }

    #[test]
    fn sg_maps_each_element() {
        let mut r = rig();
        let eng = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frames(NumaDomain(0), 3).unwrap();
        let bufs: Vec<DmaBuf> = (0..3)
            .map(|i| DmaBuf::new(pfn.add(i).base(), 512))
            .collect();
        let ms = eng
            .map_sg(&mut r.ctx, &bufs, DmaDirection::FromDevice)
            .unwrap();
        assert_eq!(ms.len(), 3);
        for (i, m) in ms.iter().enumerate() {
            r.bus.write(DEV, m.iova.get(), &[i as u8; 16]).unwrap();
        }
        eng.unmap_sg(&mut r.ctx, ms).unwrap();
        for i in 0..3u64 {
            assert_eq!(
                r.mem.read_vec(pfn.add(i).base(), 16).unwrap(),
                vec![i as u8; 16]
            );
        }
    }

    #[test]
    fn coherent_uses_allocator_and_strict_teardown() {
        let mut r = rig();
        let eng = LinuxDma::deferred(r.mem.clone(), r.mmu.clone(), DEV);
        let c = eng.alloc_coherent(&mut r.ctx, 16384).unwrap();
        assert_eq!(c.pages, 4);
        r.bus.write(DEV, c.iova.get(), b"ring entry").unwrap();
        eng.free_coherent(&mut r.ctx, c).unwrap();
        assert!(r.bus.write(DEV, c.iova.get(), b"x").is_err());
    }

    #[test]
    fn unmap_unknown_fails() {
        let mut r = rig();
        let eng = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let bogus = DmaMapping {
            iova: Iova::new(0x4000),
            len: 64,
            dir: DmaDirection::ToDevice,
            os_pa: memsim::PhysAddr(0),
        };
        assert!(matches!(
            eng.unmap(&mut r.ctx, bogus),
            Err(DmaError::BadUnmap(_))
        ));
    }

    #[test]
    fn names_and_profiles() {
        let r = rig();
        let s = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let d = LinuxDma::deferred(r.mem.clone(), r.mmu.clone(), DEV);
        assert_eq!(s.name(), "strict");
        assert_eq!(d.name(), "defer");
        assert!(s.profile().no_vulnerability_window);
        assert!(!d.profile().no_vulnerability_window);
        let es = LinuxDma::eiovar_strict(r.mem.clone(), r.mmu.clone(), DEV);
        let ed = LinuxDma::eiovar_deferred(r.mem.clone(), r.mmu.clone(), DEV);
        assert_eq!(es.name(), "eiovar+");
        assert_eq!(ed.name(), "eiovar-");
        assert!(es.profile().no_vulnerability_window);
        assert!(!ed.profile().no_vulnerability_window);
    }

    #[test]
    fn eiovar_cache_makes_steady_state_allocation_cheap() {
        // The FAST'15 result: the ring-buffer alloc/free pattern hits the
        // cache after the first allocation, skipping the tree walk.
        let mut r = rig();
        let eng = LinuxDma::eiovar_strict(r.mem.clone(), r.mmu.clone(), DEV);
        let stock = LinuxDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base(), 1500);
        // Warm both.
        for e in [&eng, &stock] {
            let m = e.map(&mut r.ctx, buf, DmaDirection::FromDevice).unwrap();
            e.unmap(&mut r.ctx, m).unwrap();
        }
        let measure = |e: &LinuxDma, ctx: &mut CoreCtx| {
            ctx.reset_stats();
            for _ in 0..50 {
                let m = e.map(ctx, buf, DmaDirection::FromDevice).unwrap();
                e.unmap(ctx, m).unwrap();
            }
            ctx.breakdown.get(Phase::IommuPageTableMgmt)
        };
        let eiovar_cost = measure(&eng, &mut r.ctx);
        let stock_cost = measure(&stock, &mut r.ctx);
        assert!(
            eiovar_cost * 2 < stock_cost,
            "eiovar {eiovar_cost} vs stock {stock_cost}"
        );
        // Functionally identical: strict blocking after unmap.
        let m = eng.map(&mut r.ctx, buf, DmaDirection::FromDevice).unwrap();
        r.bus.write(DEV, m.iova.get(), b"warm").unwrap();
        eng.unmap(&mut r.ctx, m).unwrap();
        assert!(r.bus.write(DEV, m.iova.get(), b"x").is_err());
    }
}
