//! The *no-iommu* baseline: IOMMU disabled, zero protection, zero cost.

use crate::{
    CoherentBuffer, DmaBuf, DmaDirection, DmaEngine, DmaError, DmaMapping, ProtectionProfile,
};
use iommu::{DeviceId, Iova};
use memsim::{PhysMemory, PAGE_SIZE};
use simcore::CoreCtx;
use std::sync::Arc;

/// The IOMMU-disabled DMA API: device addresses *are* physical addresses.
///
/// `map`/`unmap` are bookkeeping-free (and cost-free): the returned "IOVA"
/// is the buffer's physical address, and the device — connected via
/// [`crate::Bus::Direct`] — can reach any allocated memory at any time.
/// This is the paper's performance ceiling and its security floor.
#[derive(Debug)]
pub struct NoIommu {
    mem: Arc<PhysMemory>,
    dev: DeviceId,
}

impl NoIommu {
    /// Creates the engine.
    pub fn new(mem: Arc<PhysMemory>, dev: DeviceId) -> Self {
        NoIommu { mem, dev }
    }
}

impl DmaEngine for NoIommu {
    fn name(&self) -> &'static str {
        "no iommu"
    }

    fn device(&self) -> DeviceId {
        self.dev
    }

    fn profile(&self) -> ProtectionProfile {
        ProtectionProfile {
            name: "no iommu",
            uses_iommu: false,
            sub_page: false,
            no_vulnerability_window: false,
        }
    }

    fn map(
        &self,
        _ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError> {
        Ok(DmaMapping {
            iova: Iova::new(buf.pa.get()),
            len: buf.len,
            dir,
            os_pa: buf.pa,
        })
    }

    fn unmap(&self, _ctx: &mut CoreCtx, _mapping: DmaMapping) -> Result<(), DmaError> {
        Ok(())
    }

    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError> {
        assert!(len > 0, "zero-length coherent allocation");
        let pages = (len as u64).div_ceil(PAGE_SIZE as u64);
        let domain = self.mem.topology().domain_of_core(ctx.core);
        let pfn = self.mem.alloc_frames(domain, pages)?;
        Ok(CoherentBuffer {
            iova: Iova::new(pfn.base().get()),
            pa: pfn.base(),
            len,
            pages,
        })
    }

    fn free_coherent(&self, _ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError> {
        self.mem.free_frames(buf.pa.pfn(), buf.pages)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bus;
    use memsim::{NumaDomain, NumaTopology, PhysAddr};
    use simcore::{CoreId, CostModel, Cycles};

    fn setup() -> (NoIommu, Arc<PhysMemory>, CoreCtx) {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(32)));
        let ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
        (NoIommu::new(mem.clone(), DeviceId(0)), mem, ctx)
    }

    #[test]
    fn map_is_identity_and_free() {
        let (eng, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base().add(10), 100);
        let m = eng.map(&mut ctx, buf, DmaDirection::FromDevice).unwrap();
        assert_eq!(m.iova.get(), buf.pa.get());
        eng.unmap(&mut ctx, m).unwrap();
        assert_eq!(ctx.now(), Cycles::ZERO, "no-iommu map/unmap cost nothing");
    }

    #[test]
    fn device_dma_lands_in_os_buffer_directly() {
        let (eng, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base(), 64);
        let m = eng.map(&mut ctx, buf, DmaDirection::FromDevice).unwrap();
        let bus = Bus::Direct(mem.clone());
        bus.write(DeviceId(0), m.iova.get(), b"device data")
            .unwrap();
        eng.unmap(&mut ctx, m).unwrap();
        assert_eq!(mem.read_vec(buf.pa, 11).unwrap(), b"device data");
    }

    #[test]
    fn coherent_roundtrip() {
        let (eng, mem, mut ctx) = setup();
        let c = eng.alloc_coherent(&mut ctx, 6000).unwrap();
        assert_eq!(c.pages, 2);
        assert_eq!(c.iova.get(), c.pa.get());
        mem.write(c.pa, b"ring").unwrap();
        eng.free_coherent(&mut ctx, c).unwrap();
        assert!(!mem.is_allocated(c.pa.pfn()));
    }

    #[test]
    fn profile_is_unprotected() {
        let (eng, _, _) = setup();
        let p = eng.profile();
        assert!(!p.uses_iommu && !p.sub_page && !p.no_vulnerability_window);
        let _ = PhysAddr(0);
    }
}
