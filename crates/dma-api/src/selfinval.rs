//! A self-invalidating-IOMMU engine, modeling Basu et al.'s hardware
//! proposal (\[10\], the paper's §7 "Hardware solutions"): IOMMU mappings
//! that *self-destruct* after a bounded number of DMAs or a time
//! threshold, so software never posts invalidation commands at all.
//!
//! The model here is the proposal's **best case**: the entry destroys
//! itself the moment `dma_unmap` runs (the hardware's DMA-count threshold
//! is exactly the number of authorized DMAs), charging no CPU cycles for
//! it. This gives an upper bound on what such hardware could achieve —
//! used by the `ablate_selfinval` bench to compare against DMA shadowing,
//! which needs no new hardware. Protection remains page-granular: the
//! paper's sub-page argument applies to this design too.

use crate::{
    CoherentBuffer, CoherentHelper, DmaBuf, DmaDirection, DmaEngine, DmaError, DmaMapping,
    ProtectionProfile,
};
use iommu::{DeviceId, Iommu, Iova, IovaPage, Perms};
use memsim::PhysMemory;
use simcore::sync::Mutex;
use simcore::CoreCtx;
use simcore::FxHashMap;
use std::sync::Arc;

/// The self-invalidating-hardware engine (identity placement, like \[42\],
/// but unmap costs only the page-table update — the IOTLB entry
/// self-destructs in hardware).
#[derive(Debug)]
pub struct SelfInvalidatingDma {
    mmu: Arc<Iommu>,
    dev: DeviceId,
    refs: Mutex<FxHashMap<u64, u32>>,
    coherent: CoherentHelper,
}

impl SelfInvalidatingDma {
    /// Creates the engine.
    pub fn new(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        SelfInvalidatingDma {
            coherent: CoherentHelper::new(mem, mmu.clone(), dev),
            mmu,
            dev,
            refs: Mutex::new(FxHashMap::default()),
        }
    }
}

impl DmaEngine for SelfInvalidatingDma {
    fn name(&self) -> &'static str {
        "self-inval hw"
    }

    fn device(&self) -> DeviceId {
        self.dev
    }

    fn profile(&self) -> ProtectionProfile {
        ProtectionProfile {
            name: "self-inval hw",
            uses_iommu: true,
            sub_page: false,
            // Best-case model: the self-destruct fires exactly at unmap.
            no_vulnerability_window: true,
        }
    }

    fn map(
        &self,
        ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError> {
        let first = buf.pa.pfn();
        for i in 0..buf.pages() {
            let pfn = first.add(i);
            let fresh = {
                let mut refs = self.refs.lock();
                let count = refs.entry(pfn.get()).or_insert(0);
                *count += 1;
                *count == 1
            };
            if fresh {
                self.mmu
                    .map_page(ctx, self.dev, IovaPage(pfn.get()), pfn, Perms::ReadWrite)?;
            }
        }
        Ok(DmaMapping {
            iova: Iova::new(buf.pa.get()),
            len: buf.len,
            dir,
            os_pa: buf.pa,
        })
    }

    fn unmap(&self, ctx: &mut CoreCtx, mapping: DmaMapping) -> Result<(), DmaError> {
        let buf = DmaBuf::new(mapping.os_pa, mapping.len);
        let first = buf.pa.pfn();
        for i in 0..buf.pages() {
            let pfn = first.add(i);
            let dead = {
                let mut refs = self.refs.lock();
                let count = refs
                    .get_mut(&pfn.get())
                    .ok_or(DmaError::BadUnmap(mapping.iova))?;
                *count -= 1;
                let dead = *count == 0;
                if dead {
                    refs.remove(&pfn.get());
                }
                dead
            };
            if dead {
                let page = IovaPage(pfn.get());
                self.mmu.unmap_page_nosync(ctx, self.dev, page)?;
                // The hardware entry self-destructs: no queue, no wait,
                // no CPU cost.
                self.mmu.invalidate_page_hw(self.dev, page);
            }
        }
        Ok(())
    }

    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError> {
        self.coherent
            .alloc(ctx, len, |_, _, pfn| Ok(IovaPage(pfn.get())))
    }

    fn free_coherent(&self, ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError> {
        self.coherent.free(ctx, buf, |_, _, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bus;
    use memsim::{NumaDomain, NumaTopology};
    use simcore::{CoreId, CostModel, Cycles, Phase};

    const DEV: DeviceId = DeviceId(0);

    #[test]
    fn strict_semantics_with_zero_invalidation_cost() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(32)));
        let mmu = Arc::new(Iommu::new());
        let eng = SelfInvalidatingDma::new(mem.clone(), mmu.clone(), DEV);
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
        let bus = Bus::Iommu {
            mmu: mmu.clone(),
            mem: mem.clone(),
        };
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let m = eng
            .map(
                &mut ctx,
                DmaBuf::new(pfn.base(), 1500),
                DmaDirection::FromDevice,
            )
            .unwrap();
        bus.write(DEV, m.iova.get(), b"warm the iotlb").unwrap();
        eng.unmap(&mut ctx, m).unwrap();
        // Strict: blocked immediately...
        assert!(bus.write(DEV, m.iova.get(), b"late").is_err());
        // ...yet the CPU never waited on an invalidation.
        assert_eq!(ctx.breakdown.get(Phase::InvalidateIotlb), Cycles::ZERO);
        assert_eq!(mmu.invalq().stats().page_commands, 0);
    }

    #[test]
    fn still_page_granular() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(32)));
        let mmu = Arc::new(Iommu::new());
        let eng = SelfInvalidatingDma::new(mem.clone(), mmu.clone(), DEV);
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        let bus = Bus::Iommu {
            mmu: mmu.clone(),
            mem: mem.clone(),
        };
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mem.write(pfn.base().add(3000), b"SECRET").unwrap();
        let m = eng
            .map(
                &mut ctx,
                DmaBuf::new(pfn.base(), 512),
                DmaDirection::ToDevice,
            )
            .unwrap();
        // Hardware self-invalidation does not fix the sub-page hole.
        let mut stolen = [0u8; 6];
        bus.read(DEV, pfn.base().add(3000).get(), &mut stolen)
            .unwrap();
        assert_eq!(&stolen, b"SECRET");
        eng.unmap(&mut ctx, m).unwrap();
    }
}
