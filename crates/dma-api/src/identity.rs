//! The *identity±* engines: Peleg et al.'s (ATC'15 \[42\]) identity-mapping
//! design, with strict (*identity+*) or deferred (*identity−*) protection.
//!
//! IOVAs equal physical addresses, eliminating the IOVA-allocator
//! bottleneck of stock Linux: `dma_map` only installs the identity
//! page-table entry (refcounted, since kmalloc can co-locate several DMA
//! buffers on one page) and `dma_unmap` removes it. Strict mode pays a
//! synchronous IOTLB invalidation per unmap; deferred mode batches
//! per-core (the scalable variant of \[42\]).
//!
//! Identity mappings are installed read-write: a page can host buffers
//! mapped in both directions simultaneously, and \[42\]'s design shares one
//! entry among them. This is part of why identity protection is page-
//! granular at best — the paper's Table 1 denies it the "sub-page protect"
//! mark.

// lint: allow(panic) — refcount invariants are engine bugs, not runtime errors

use crate::flush::PendingUnmap;
use crate::{
    CoherentBuffer, CoherentHelper, DeferPolicy, DeferredFlusher, DmaBuf, DmaDirection, DmaEngine,
    DmaError, DmaMapping, FlushScope, ProtectionProfile, Strictness,
};
use iommu::{DeviceId, Iommu, Iova, IovaPage, Perms};
use memsim::PhysMemory;
use simcore::sync::Mutex;
use simcore::CoreCtx;
use simcore::FxHashMap;
use std::sync::Arc;

/// The identity-mapping DMA engine (*identity+* / *identity−*).
#[derive(Debug)]
pub struct IdentityDma {
    mmu: Arc<Iommu>,
    dev: DeviceId,
    strictness: Strictness,
    /// Refcount per mapped (identity) IOVA page.
    refs: Mutex<FxHashMap<u64, u32>>,
    flusher: Option<DeferredFlusher>,
    coherent: CoherentHelper,
}

impl IdentityDma {
    /// Creates the strict variant (*identity+*): every unmap synchronously
    /// invalidates the IOTLB.
    pub fn strict(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        Self::new(mem, mmu, dev, Strictness::Strict, 1)
    }

    /// Creates the deferred variant (*identity−*): invalidations batch
    /// per-core (250 unmaps / 10 ms).
    pub fn deferred(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId, cores: usize) -> Self {
        Self::with_scope(
            mem,
            mmu,
            dev,
            Strictness::Deferred,
            cores,
            FlushScope::PerCore,
        )
    }

    /// Creates a deferred variant with an explicit batching scope — the
    /// §2.2.1 ablation: [`FlushScope::Global`] is stock Linux's single
    /// lock-protected list, [`FlushScope::PerCore`] is ATC'15's scalable
    /// variant (with a correspondingly longer vulnerability window).
    pub fn deferred_with_scope(
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        dev: DeviceId,
        cores: usize,
        scope: FlushScope,
    ) -> Self {
        Self::with_scope(mem, mmu, dev, Strictness::Deferred, cores, scope)
    }

    fn new(
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        dev: DeviceId,
        strictness: Strictness,
        cores: usize,
    ) -> Self {
        Self::with_scope(mem, mmu, dev, strictness, cores, FlushScope::PerCore)
    }

    fn with_scope(
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        dev: DeviceId,
        strictness: Strictness,
        cores: usize,
        scope: FlushScope,
    ) -> Self {
        let flusher = match strictness {
            Strictness::Strict => None,
            Strictness::Deferred => Some(DeferredFlusher::with_obs(
                DeferPolicy::linux_default(),
                scope,
                cores,
                mmu.obs().clone(),
            )),
        };
        IdentityDma {
            coherent: CoherentHelper::new(mem, mmu.clone(), dev),
            mmu,
            dev,
            strictness,
            refs: Mutex::new(FxHashMap::default()),
            flusher,
        }
    }

    /// The strictness this instance was built with.
    pub fn strictness(&self) -> Strictness {
        self.strictness
    }

    /// The deferred flusher, if deferred (for window observability).
    pub fn flusher(&self) -> Option<&DeferredFlusher> {
        self.flusher.as_ref()
    }

    fn drain(mmu: &Iommu, dev: DeviceId, ctx: &mut CoreCtx, _batch: &[PendingUnmap]) {
        // One domain-selective flush retires the whole batch.
        mmu.flush_device_sync(ctx, dev);
    }
}

impl DmaEngine for IdentityDma {
    fn name(&self) -> &'static str {
        match self.strictness {
            Strictness::Strict => "identity+",
            Strictness::Deferred => "identity-",
        }
    }

    fn device(&self) -> DeviceId {
        self.dev
    }

    fn profile(&self) -> ProtectionProfile {
        ProtectionProfile {
            name: self.name(),
            uses_iommu: true,
            sub_page: false,
            no_vulnerability_window: self.strictness == Strictness::Strict,
        }
    }

    fn map(
        &self,
        ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError> {
        let first = buf.pa.pfn();
        for i in 0..buf.pages() {
            let pfn = first.add(i);
            let mut refs = self.refs.lock();
            let count = refs.entry(pfn.get()).or_insert(0);
            *count += 1;
            let fresh = *count == 1;
            drop(refs);
            if fresh {
                self.mmu
                    .map_page(ctx, self.dev, IovaPage(pfn.get()), pfn, Perms::ReadWrite)?;
            }
        }
        Ok(DmaMapping {
            iova: Iova::new(buf.pa.get()),
            len: buf.len,
            dir,
            os_pa: buf.pa,
        })
    }

    fn unmap(&self, ctx: &mut CoreCtx, mapping: DmaMapping) -> Result<(), DmaError> {
        let buf = DmaBuf::new(mapping.os_pa, mapping.len);
        let first = buf.pa.pfn();
        let mut to_invalidate = Vec::new();
        for i in 0..buf.pages() {
            let pfn = first.add(i);
            let mut refs = self.refs.lock();
            let count = refs
                .get_mut(&pfn.get())
                .ok_or(DmaError::BadUnmap(mapping.iova))?;
            *count -= 1;
            let dead = *count == 0;
            if dead {
                refs.remove(&pfn.get());
            }
            drop(refs);
            if dead {
                let page = IovaPage(pfn.get());
                self.mmu.unmap_page_nosync(ctx, self.dev, page)?;
                to_invalidate.push(page);
            }
        }
        match self.strictness {
            Strictness::Strict => {
                self.mmu
                    .invalidate_pages_sync(ctx, self.dev, &to_invalidate);
            }
            Strictness::Deferred => {
                let flusher = self.flusher.as_ref().expect("deferred mode has a flusher");
                for page in to_invalidate {
                    flusher.defer(ctx, PendingUnmap { page, pages: 1 }, |ctx, batch| {
                        Self::drain(&self.mmu, self.dev, ctx, batch)
                    });
                }
            }
        }
        Ok(())
    }

    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError> {
        // Identity placement: the coherent buffer's IOVA is its PA.
        self.coherent
            .alloc(ctx, len, |_, _, pfn| Ok(IovaPage(pfn.get())))
    }

    fn free_coherent(&self, ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError> {
        self.coherent.free(ctx, buf, |_, _, _| {})
    }

    fn flush_deferred(&self, ctx: &mut CoreCtx) {
        if let Some(flusher) = &self.flusher {
            flusher.force_flush(ctx, |ctx, batch| {
                Self::drain(&self.mmu, self.dev, ctx, batch)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bus;
    use memsim::{NumaDomain, NumaTopology};
    use simcore::{CoreId, CostModel, Phase};

    const DEV: DeviceId = DeviceId(0);

    struct Rig {
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        bus: Bus,
        ctx: CoreCtx,
    }

    fn rig() -> Rig {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(64)));
        let mmu = Arc::new(Iommu::new());
        let bus = Bus::Iommu {
            mmu: mmu.clone(),
            mem: mem.clone(),
        };
        Rig {
            mem,
            mmu,
            bus,
            ctx: CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz())),
        }
    }

    #[test]
    fn strict_map_dma_unmap_roundtrip() {
        let mut r = rig();
        let eng = IdentityDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base().add(64), 1500);
        let m = eng.map(&mut r.ctx, buf, DmaDirection::FromDevice).unwrap();
        assert_eq!(m.iova.get(), buf.pa.get(), "identity IOVA");

        r.bus.write(DEV, m.iova.get(), &vec![0xabu8; 1500]).unwrap();
        eng.unmap(&mut r.ctx, m).unwrap();
        assert_eq!(r.mem.read_vec(buf.pa, 1500).unwrap(), vec![0xab; 1500]);

        // Strictly blocked after unmap.
        assert!(r.bus.write(DEV, m.iova.get(), b"late").is_err());
    }

    #[test]
    fn strict_unmap_pays_invalidation() {
        let mut r = rig();
        let eng = IdentityDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let m = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base(), 100),
                DmaDirection::ToDevice,
            )
            .unwrap();
        eng.unmap(&mut r.ctx, m).unwrap();
        assert!(r.ctx.breakdown.get(Phase::InvalidateIotlb) >= r.ctx.cost.iotlb_inval_wait);
    }

    #[test]
    fn deferred_unmap_skips_invalidation_leaving_window() {
        let mut r = rig();
        let eng = IdentityDma::deferred(r.mem.clone(), r.mmu.clone(), DEV, 1);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let m = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base(), 1500),
                DmaDirection::FromDevice,
            )
            .unwrap();
        // Device touches the buffer: IOTLB warm.
        r.bus.write(DEV, m.iova.get(), b"packet").unwrap();
        eng.unmap(&mut r.ctx, m).unwrap();
        assert_eq!(
            r.ctx.breakdown.get(Phase::InvalidateIotlb),
            simcore::Cycles::ZERO
        );

        // VULNERABILITY WINDOW: the device can still write the buffer.
        assert!(r.bus.write(DEV, m.iova.get(), b"attack").is_ok());
        assert_eq!(eng.flusher().unwrap().pending(), 1);

        // After the deferred flush the window closes.
        eng.flush_deferred(&mut r.ctx);
        assert!(r.bus.write(DEV, m.iova.get(), b"late").is_err());
        assert_eq!(eng.flusher().unwrap().pending(), 0);
    }

    #[test]
    fn deferred_drains_at_batch_limit() {
        let mut r = rig();
        let eng = IdentityDma::deferred(r.mem.clone(), r.mmu.clone(), DEV, 1);
        let pfn = r.mem.alloc_frames(NumaDomain(0), 1).unwrap();
        // 250 map/unmap cycles of the same page: each unmap defers one
        // entry; the 250th triggers the drain.
        for i in 0..250 {
            let m = eng
                .map(
                    &mut r.ctx,
                    DmaBuf::new(pfn.base(), 64),
                    DmaDirection::ToDevice,
                )
                .unwrap();
            eng.unmap(&mut r.ctx, m).unwrap();
            if i < 249 {
                assert_eq!(eng.flusher().unwrap().drains(), 0);
            }
        }
        assert_eq!(eng.flusher().unwrap().drains(), 1);
        assert_eq!(r.mmu.invalq().stats().flush_commands, 1);
    }

    #[test]
    fn colocated_buffers_share_refcounted_mapping() {
        let mut r = rig();
        let eng = IdentityDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        // Two kmalloc-style buffers on the same page.
        let a = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base(), 512),
                DmaDirection::ToDevice,
            )
            .unwrap();
        let b = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base().add(2048), 512),
                DmaDirection::FromDevice,
            )
            .unwrap();
        assert_eq!(r.mmu.mapped_pages(DEV), 1, "one shared identity entry");
        eng.unmap(&mut r.ctx, a).unwrap();
        // Page must stay mapped while b lives.
        assert_eq!(r.mmu.mapped_pages(DEV), 1);
        assert!(r.bus.write(DEV, b.iova.get(), b"ok").is_ok());
        eng.unmap(&mut r.ctx, b).unwrap();
        assert_eq!(r.mmu.mapped_pages(DEV), 0);
    }

    #[test]
    fn page_granularity_exposes_colocated_data() {
        // The sub-page weakness (§4): mapping a 512-byte buffer exposes the
        // WHOLE page, including a neighbor secret, read-write.
        let mut r = rig();
        let eng = IdentityDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        r.mem.write(pfn.base().add(3000), b"SECRET").unwrap();
        let m = eng
            .map(
                &mut r.ctx,
                DmaBuf::new(pfn.base(), 512),
                DmaDirection::ToDevice,
            )
            .unwrap();
        // The device reads the neighbor's secret through the same page.
        let mut stolen = [0u8; 6];
        r.bus
            .read(DEV, pfn.base().add(3000).get(), &mut stolen)
            .unwrap();
        assert_eq!(&stolen, b"SECRET");
        eng.unmap(&mut r.ctx, m).unwrap();
    }

    #[test]
    fn multipage_buffer_maps_all_pages() {
        let mut r = rig();
        let eng = IdentityDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frames(NumaDomain(0), 16).unwrap();
        let buf = DmaBuf::new(pfn.base(), 16 * 4096);
        let m = eng.map(&mut r.ctx, buf, DmaDirection::ToDevice).unwrap();
        assert_eq!(r.mmu.mapped_pages(DEV), 16);
        let mut out = vec![0u8; 16 * 4096];
        r.bus.read(DEV, m.iova.get(), &mut out).unwrap();
        eng.unmap(&mut r.ctx, m).unwrap();
        assert_eq!(r.mmu.mapped_pages(DEV), 0);
    }

    #[test]
    fn unmap_of_unknown_mapping_fails() {
        let mut r = rig();
        let eng = IdentityDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let bogus = DmaMapping {
            iova: Iova::new(pfn.base().get()),
            len: 64,
            dir: DmaDirection::ToDevice,
            os_pa: pfn.base(),
        };
        assert!(matches!(
            eng.unmap(&mut r.ctx, bogus),
            Err(DmaError::BadUnmap(_))
        ));
    }

    #[test]
    fn coherent_is_identity_mapped_and_strict() {
        let mut r = rig();
        let eng = IdentityDma::deferred(r.mem.clone(), r.mmu.clone(), DEV, 1);
        let c = eng.alloc_coherent(&mut r.ctx, 8192).unwrap();
        assert_eq!(c.iova.get(), c.pa.get());
        r.bus.write(DEV, c.iova.get(), b"descriptor").unwrap();
        eng.free_coherent(&mut r.ctx, c).unwrap();
        // Even under the deferred engine, coherent free is strict.
        assert!(r.bus.write(DEV, c.iova.get(), b"x").is_err());
    }

    #[test]
    fn names_and_profiles() {
        let r = rig();
        let plus = IdentityDma::strict(r.mem.clone(), r.mmu.clone(), DEV);
        let minus = IdentityDma::deferred(r.mem.clone(), r.mmu.clone(), DEV, 4);
        assert_eq!(plus.name(), "identity+");
        assert_eq!(minus.name(), "identity-");
        assert!(plus.profile().no_vulnerability_window);
        assert!(!minus.profile().no_vulnerability_window);
        assert!(!plus.profile().sub_page);
    }
}
