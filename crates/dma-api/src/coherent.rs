//! Shared implementation of `dma_alloc_coherent`/`dma_free_coherent` for
//! the IOMMU-backed engines.
//!
//! Coherent buffers are allocated in page quantities (so their pages are
//! never shared with other data — §5.2 notes this already gives byte-level
//! protection) and mapped read-write with strict unmap semantics.

use crate::{CoherentBuffer, DmaError};
use iommu::{DeviceId, Iommu, IovaPage, Perms};
use memsim::{PhysMemory, PAGE_SIZE};
use simcore::CoreCtx;
use std::sync::Arc;

/// Coherent-buffer helper shared by the IOMMU-backed engines; the engine
/// supplies the IOVA placement policy.
#[derive(Debug, Clone)]
pub struct CoherentHelper {
    mem: Arc<PhysMemory>,
    mmu: Arc<Iommu>,
    dev: DeviceId,
}

impl CoherentHelper {
    /// Creates a helper for `dev`.
    pub fn new(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        CoherentHelper { mem, mmu, dev }
    }

    /// Allocates `len` bytes of coherent memory on the calling core's NUMA
    /// domain and maps it read-write at the IOVA chosen by `place`
    /// (called with the number of pages and the first allocated frame).
    pub fn alloc(
        &self,
        ctx: &mut CoreCtx,
        len: usize,
        place: impl FnOnce(&mut CoreCtx, u64, memsim::Pfn) -> Result<IovaPage, DmaError>,
    ) -> Result<CoherentBuffer, DmaError> {
        assert!(len > 0, "zero-length coherent allocation");
        let pages = (len as u64).div_ceil(PAGE_SIZE as u64);
        let domain = self.mem.topology().domain_of_core(ctx.core);
        let pfn = self.mem.alloc_frames(domain, pages)?;
        let iova_page = place(ctx, pages, pfn)?;
        self.mmu
            .map_range(ctx, self.dev, iova_page, pfn, pages, Perms::ReadWrite)?;
        Ok(CoherentBuffer {
            iova: iova_page.base(),
            pa: pfn.base(),
            len,
            pages,
        })
    }

    /// Unmaps (with strict, synchronous invalidation) and frees a coherent
    /// buffer; `unplace` releases the IOVA range if the engine allocated
    /// one.
    pub fn free(
        &self,
        ctx: &mut CoreCtx,
        buf: CoherentBuffer,
        unplace: impl FnOnce(&mut CoreCtx, IovaPage, u64),
    ) -> Result<(), DmaError> {
        let first = buf.iova.page();
        let pages: Vec<IovaPage> = (0..buf.pages).map(|i| first.add(i)).collect();
        for &p in &pages {
            self.mmu.unmap_page_nosync(ctx, self.dev, p)?;
        }
        self.mmu.invalidate_pages_sync(ctx, self.dev, &pages);
        self.mem.free_frames(buf.pa.pfn(), buf.pages)?;
        unplace(ctx, first, buf.pages);
        Ok(())
    }
}
