//! IOVA (I/O virtual address) allocators for the zero-copy engines.
//!
//! Stock Linux allocates IOVAs from a global red-black tree protected by a
//! single lock; the long tree walks and the lock are the bottleneck EiovaR
//! (FAST'15 \[38\]) identified. Peleg et al. (ATC'15 \[42\]) replaced it with
//! per-core magazine caches. Both are modeled here, sharing the run-based
//! interval bookkeeping.

use crate::DmaError;
use iommu::IovaPage;
use obs::{Counter, EventKind, Obs};
use simcore::sync::Mutex;
use simcore::{CoreCtx, Cycles, Phase, SimLock};
use std::collections::BTreeMap;

/// Emits a `LockContention` trace event for an acquisition that spun.
///
/// `spin` must be the acquisition's *own* spin, as reported by
/// [`SimLock::lock`] / [`SimLock::with_spin`]. Diffing the lock's global
/// `total_spin` counter around an acquisition is wrong: that counter also
/// accumulates other cores' concurrent spins, so an uncontended
/// acquisition could be blamed for a neighbor's wait.
fn trace_contention(obs: &Obs, ctx: &CoreCtx, lock: &SimLock, spin: Cycles) {
    if spin > Cycles::ZERO {
        obs.set_now_hint(ctx.now());
        obs.trace(
            ctx.now(),
            ctx.core.0,
            None,
            EventKind::LockContention {
                lock: lock.name().into(),
                spin_cycles: spin.get(),
            },
        );
    }
}

/// The page range allocators hand out from: `[1, 2^35)` IOVA pages — the
/// half of the 48-bit IOVA space with the MSB clear. The MSB-set half is
/// reserved for shadow-buffer metadata encodings (§5.3, Figure 2), so
/// zero-copy mappings and shadow mappings can coexist on one device. Page 0
/// is never allocated so that IOVA 0 can serve as a null value.
const IOVA_PAGE_LO: u64 = 1;
const IOVA_PAGE_HI: u64 = 1 << 35;

/// An IOVA range allocator.
pub trait IovaAllocator {
    /// Allocates `n` consecutive IOVA pages, charging allocation costs to
    /// `ctx`.
    fn alloc(&self, ctx: &mut CoreCtx, n: u64) -> Result<IovaPage, DmaError>;
    /// Returns `n` consecutive IOVA pages starting at `page`.
    fn free(&self, ctx: &mut CoreCtx, page: IovaPage, n: u64);
    /// The allocator's contention-visible lock, if it has one: its name
    /// and a statistics snapshot. The scaling sweep uses this to break
    /// `Phase::Spinlock` down by lock.
    fn lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        None
    }
    /// Returns any ranges cached outside the shared structure (per-core
    /// magazines) to it; the teardown/idle path. Returns the number of
    /// ranges drained; allocators without caches drain nothing.
    fn drain(&self, _ctx: &mut CoreCtx) -> usize {
        0
    }
}

#[derive(Debug)]
struct Runs {
    /// start page -> run length, coalesced.
    map: BTreeMap<u64, u64>,
}

impl Runs {
    fn full() -> Self {
        let mut map = BTreeMap::new();
        map.insert(IOVA_PAGE_LO, IOVA_PAGE_HI - IOVA_PAGE_LO);
        Runs { map }
    }

    fn alloc(&mut self, n: u64) -> Option<u64> {
        let (&start, &len) = self.map.iter().find(|(_, &len)| len >= n)?;
        self.map.remove(&start);
        if len > n {
            self.map.insert(start + n, len - n);
        }
        Some(start)
    }

    fn free(&mut self, start: u64, n: u64) {
        let end = start + n;
        let mut new_start = start;
        let mut new_len = n;
        if let Some((&ps, &pl)) = self.map.range(..=start).next_back() {
            assert!(ps + pl <= start, "double free of IOVA range");
            if ps + pl == start {
                self.map.remove(&ps);
                new_start = ps;
                new_len += pl;
            }
        }
        if let Some((&ss, &sl)) = self.map.range(start..).next() {
            assert!(ss >= end, "freed IOVA range overlaps a free run");
            if ss == end {
                self.map.remove(&ss);
                new_len += sl;
            }
        }
        self.map.insert(new_start, new_len);
    }
}

/// The stock Linux IOVA allocator: one interval tree, one global lock.
///
/// Every `alloc_iova`/`free_iova` takes the lock and pays a tree-walk cost;
/// at 16 cores the lock serializes and throughput collapses (Figure 1's
/// *strict*/*defer* curves).
#[derive(Debug)]
pub struct GlobalTreeIovaAllocator {
    lock: SimLock,
    runs: Mutex<Runs>,
    obs: Obs,
    allocs: Counter,
    frees: Counter,
}

impl GlobalTreeIovaAllocator {
    /// Creates the allocator over the full zero-copy IOVA range.
    pub fn new() -> Self {
        Self::with_obs(Obs::isolated())
    }

    /// Creates the allocator reporting into `obs` (`iova.tree_*` metrics,
    /// `LockContention` events on contended lock acquisitions).
    pub fn with_obs(obs: Obs) -> Self {
        GlobalTreeIovaAllocator {
            lock: SimLock::new("linux-iova-rbtree"),
            runs: Mutex::new(Runs::full()),
            allocs: obs.counter("iova", "tree_allocs", None),
            frees: obs.counter("iova", "tree_frees", None),
            obs,
        }
    }

    /// The allocator's global lock (for contention stats).
    pub fn lock(&self) -> &SimLock {
        &self.lock
    }
}

impl Default for GlobalTreeIovaAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl IovaAllocator for GlobalTreeIovaAllocator {
    fn alloc(&self, ctx: &mut CoreCtx, n: u64) -> Result<IovaPage, DmaError> {
        assert!(n > 0);
        let (r, spin) = self.lock.with_spin(ctx, |ctx| {
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_tree_alloc);
            self.runs
                .lock()
                .alloc(n)
                .map(IovaPage)
                .ok_or(DmaError::IovaExhausted)
        });
        self.allocs.inc();
        trace_contention(&self.obs, ctx, &self.lock, spin);
        r
    }

    fn free(&self, ctx: &mut CoreCtx, page: IovaPage, n: u64) {
        let ((), spin) = self.lock.with_spin(ctx, |ctx| {
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_tree_free);
            self.runs.lock().free(page.0, n);
        });
        self.frees.inc();
        trace_contention(&self.obs, ctx, &self.lock, spin);
    }

    fn lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        Some((self.lock.name(), self.lock.stats()))
    }
}

/// How many freed ranges a per-core magazine holds per size before spilling
/// to the shared tree, and how many it grabs on refill.
const MAGAZINE_CAP: usize = 128;
const MAGAZINE_REFILL: usize = 32;

/// The scalable per-core ("magazine") IOVA allocator of ATC'15 \[42\]:
/// each core caches freed ranges locally and only touches the shared tree
/// (under its lock) to refill or spill.
#[derive(Debug)]
pub struct PerCoreIovaAllocator {
    shared_lock: SimLock,
    shared: Mutex<Runs>,
    /// magazines[core] maps range-size -> cached range starts.
    magazines: Vec<Mutex<BTreeMap<u64, Vec<u64>>>>,
    obs: Obs,
    allocs: Counter,
    frees: Counter,
    refills: Counter,
    spills: Counter,
}

impl PerCoreIovaAllocator {
    /// Creates the allocator with one magazine per core.
    pub fn new(cores: usize) -> Self {
        Self::with_obs(cores, Obs::isolated())
    }

    /// Creates the allocator reporting into `obs` (`iova.magazine_*`
    /// metrics, dmasan lockset events on the shared pool, `LockContention`
    /// events on contended shared-lock acquisitions).
    pub fn with_obs(cores: usize, obs: Obs) -> Self {
        assert!(cores > 0);
        PerCoreIovaAllocator {
            shared_lock: SimLock::new("scalable-iova-shared"),
            shared: Mutex::new(Runs::full()),
            magazines: (0..cores).map(|_| Mutex::new(BTreeMap::new())).collect(),
            allocs: obs.counter("iova", "magazine_allocs", None),
            frees: obs.counter("iova", "magazine_frees", None),
            refills: obs.counter("iova", "magazine_refills", None),
            spills: obs.counter("iova", "magazine_spills", None),
            obs,
        }
    }

    /// The shared-pool lock (for contention stats; should stay cold).
    pub fn shared_lock(&self) -> &SimLock {
        &self.shared_lock
    }

    fn magazine(&self, ctx: &CoreCtx) -> &Mutex<BTreeMap<u64, Vec<u64>>> {
        &self.magazines[ctx.core.index() % self.magazines.len()]
    }

    /// Runs `f` under the shared-pool lock with dmasan lockset
    /// instrumentation (detail-gated `LockAcquire` / `SharedAccess` /
    /// `LockRelease`, the same triple every other instrumented lock site
    /// emits) and per-acquisition contention tracing.
    fn with_shared<R>(&self, ctx: &mut CoreCtx, f: impl FnOnce(&mut CoreCtx) -> R) -> R {
        let detail = self.obs.detail_enabled();
        if detail {
            self.obs.trace(
                ctx.now(),
                ctx.core.0,
                None,
                EventKind::LockAcquire {
                    lock: self.shared_lock.name().into(),
                },
            );
        }
        let (r, spin) = self.shared_lock.with_spin(ctx, |ctx| {
            if detail {
                self.obs.trace(
                    ctx.now(),
                    ctx.core.0,
                    None,
                    EventKind::SharedAccess {
                        var: "iova.shared_pool".into(),
                        write: true,
                    },
                );
            }
            f(ctx)
        });
        if detail {
            self.obs.trace(
                ctx.now(),
                ctx.core.0,
                None,
                EventKind::LockRelease {
                    lock: self.shared_lock.name().into(),
                },
            );
        }
        trace_contention(&self.obs, ctx, &self.shared_lock, spin);
        r
    }

    /// Returns every range cached in the calling core's magazine to the
    /// shared pool (one batched shared-lock hold). The teardown drain
    /// path: cached ranges must go home before the allocator's owner is
    /// dropped so nothing stays checked out of the global structure.
    pub fn drain_magazine(&self, ctx: &mut CoreCtx) -> usize {
        let cached: Vec<(u64, Vec<u64>)> = {
            let mut mag = self.magazine(ctx).lock();
            std::mem::take(&mut *mag).into_iter().collect()
        };
        let drained: usize = cached.iter().map(|(_, v)| v.len()).sum();
        if drained == 0 {
            return 0;
        }
        self.with_shared(ctx, |ctx| {
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_tree_free);
            let mut shared = self.shared.lock();
            for (n, starts) in cached {
                for s in starts {
                    shared.free(s, n);
                }
            }
        });
        drained
    }
}

impl IovaAllocator for PerCoreIovaAllocator {
    fn alloc(&self, ctx: &mut CoreCtx, n: u64) -> Result<IovaPage, DmaError> {
        assert!(n > 0);
        ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_magazine_alloc);
        self.allocs.inc();
        if let Some(start) = self.magazine(ctx).lock().get_mut(&n).and_then(|v| v.pop()) {
            return Ok(IovaPage(start));
        }
        self.refills.inc();
        // Refill from the shared tree.
        let refill = self.with_shared(ctx, |ctx| {
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_tree_alloc);
            let mut shared = self.shared.lock();
            let mut got = Vec::with_capacity(MAGAZINE_REFILL);
            for _ in 0..MAGAZINE_REFILL {
                match shared.alloc(n) {
                    Some(s) => got.push(s),
                    None => break,
                }
            }
            got
        });
        if refill.is_empty() {
            return Err(DmaError::IovaExhausted);
        }
        let mut mag = self.magazine(ctx).lock();
        let slot = mag.entry(n).or_default();
        slot.extend(&refill[1..]);
        Ok(IovaPage(refill[0]))
    }

    fn free(&self, ctx: &mut CoreCtx, page: IovaPage, n: u64) {
        ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_magazine_free);
        self.frees.inc();
        let spill: Option<Vec<u64>> = {
            let mut mag = self.magazine(ctx).lock();
            let slot = mag.entry(n).or_default();
            slot.push(page.0);
            if slot.len() > MAGAZINE_CAP {
                Some(slot.split_off(MAGAZINE_CAP / 2))
            } else {
                None
            }
        };
        if let Some(spill) = spill {
            self.spills.inc();
            self.with_shared(ctx, |ctx| {
                ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_tree_free);
                let mut shared = self.shared.lock();
                for s in spill {
                    shared.free(s, n);
                }
            });
        }
    }

    fn lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        Some((self.shared_lock.name(), self.shared_lock.stats()))
    }

    fn drain(&self, ctx: &mut CoreCtx) -> usize {
        self.drain_magazine(ctx)
    }
}

/// EiovaR's allocator (FAST'15 \[38\]): the stock global tree *plus a
/// free-range cache* exploiting the ring-buffer allocation pattern of NIC
/// drivers — repeated same-size alloc/free cycles hit the cache and skip
/// the long tree walk. The single lock remains, so multi-core contention
/// persists (which is why \[42\] went per-core).
#[derive(Debug)]
pub struct GlobalCachedIovaAllocator {
    lock: SimLock,
    runs: Mutex<Runs>,
    /// size (pages) -> cached range starts, shared by all cores.
    cache: Mutex<BTreeMap<u64, Vec<u64>>>,
    obs: Obs,
    allocs: Counter,
    frees: Counter,
}

impl GlobalCachedIovaAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self::with_obs(Obs::isolated())
    }

    /// Creates the allocator reporting into `obs` (`iova.cached_*`).
    pub fn with_obs(obs: Obs) -> Self {
        GlobalCachedIovaAllocator {
            lock: SimLock::new("eiovar-iova-cache"),
            runs: Mutex::new(Runs::full()),
            cache: Mutex::new(BTreeMap::new()),
            allocs: obs.counter("iova", "cached_allocs", None),
            frees: obs.counter("iova", "cached_frees", None),
            obs,
        }
    }

    /// The allocator's global lock (for contention stats).
    pub fn lock(&self) -> &SimLock {
        &self.lock
    }
}

impl Default for GlobalCachedIovaAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl IovaAllocator for GlobalCachedIovaAllocator {
    fn alloc(&self, ctx: &mut CoreCtx, n: u64) -> Result<IovaPage, DmaError> {
        assert!(n > 0);
        let (r, spin) = self.lock.with_spin(ctx, |ctx| {
            if let Some(start) = self.cache.lock().get_mut(&n).and_then(|v| v.pop()) {
                // Cache hit: cheap, like a magazine op.
                ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_magazine_alloc);
                return Ok(IovaPage(start));
            }
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_tree_alloc);
            self.runs
                .lock()
                .alloc(n)
                .map(IovaPage)
                .ok_or(DmaError::IovaExhausted)
        });
        self.allocs.inc();
        trace_contention(&self.obs, ctx, &self.lock, spin);
        r
    }

    fn free(&self, ctx: &mut CoreCtx, page: IovaPage, n: u64) {
        let ((), spin) = self.lock.with_spin(ctx, |ctx| {
            // Frees go to the cache, matching EiovaR's observation that the
            // ring pattern re-allocates the same sizes immediately.
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.iova_magazine_free);
            self.cache.lock().entry(n).or_default().push(page.0);
        });
        self.frees.inc();
        trace_contention(&self.obs, ctx, &self.lock, spin);
    }

    fn lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        Some((self.lock.name(), self.lock.stats()))
    }
}

/// A trivial bump allocator over the zero-copy range with no reuse; used by
/// tests that need unique IOVAs without allocator costs.
#[derive(Debug)]
pub struct BumpIova {
    next: Mutex<u64>,
}

impl BumpIova {
    /// Creates the bump allocator.
    pub fn new() -> Self {
        BumpIova {
            next: Mutex::new(IOVA_PAGE_LO),
        }
    }
}

impl Default for BumpIova {
    fn default() -> Self {
        Self::new()
    }
}

impl IovaAllocator for BumpIova {
    fn alloc(&self, _ctx: &mut CoreCtx, n: u64) -> Result<IovaPage, DmaError> {
        let mut next = self.next.lock();
        let start = *next;
        if start + n > IOVA_PAGE_HI {
            return Err(DmaError::IovaExhausted);
        }
        *next = start + n;
        Ok(IovaPage(start))
    }

    fn free(&self, _ctx: &mut CoreCtx, _page: IovaPage, _n: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{CoreId, CostModel};
    use std::sync::Arc;

    fn ctx(core: u16) -> CoreCtx {
        CoreCtx::new(CoreId(core), Arc::new(CostModel::haswell_2_4ghz()))
    }

    #[test]
    fn tree_alloc_unique_and_reusable() {
        let a = GlobalTreeIovaAllocator::new();
        let mut c = ctx(0);
        let p1 = a.alloc(&mut c, 1).unwrap();
        let p2 = a.alloc(&mut c, 1).unwrap();
        assert_ne!(p1, p2);
        a.free(&mut c, p1, 1);
        let p3 = a.alloc(&mut c, 1).unwrap();
        assert_eq!(p3, p1, "freed range is reused");
    }

    #[test]
    fn tree_alloc_ranges_do_not_overlap() {
        let a = GlobalTreeIovaAllocator::new();
        let mut c = ctx(0);
        let mut got: Vec<(u64, u64)> = Vec::new();
        for n in [1u64, 16, 2, 7, 16, 1] {
            let p = a.alloc(&mut c, n).unwrap();
            got.push((p.0, n));
        }
        got.sort();
        for w in got.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn tree_never_hands_out_page_zero_or_msb_half() {
        let a = GlobalTreeIovaAllocator::new();
        let mut c = ctx(0);
        for _ in 0..100 {
            let p = a.alloc(&mut c, 3).unwrap();
            assert!(p.0 >= 1);
            assert!(p.0 + 3 <= IOVA_PAGE_HI);
        }
    }

    #[test]
    fn tree_charges_cost_under_lock() {
        let a = GlobalTreeIovaAllocator::new();
        let mut c = ctx(0);
        a.alloc(&mut c, 1).unwrap();
        assert!(c.breakdown.get(Phase::IommuPageTableMgmt) >= c.cost.iova_tree_alloc);
        assert_eq!(a.lock().stats().acquisitions, 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn tree_double_free_panics() {
        let a = GlobalTreeIovaAllocator::new();
        let mut c = ctx(0);
        let p = a.alloc(&mut c, 4).unwrap();
        a.free(&mut c, p, 4);
        a.free(&mut c, p, 4);
    }

    #[test]
    fn magazine_hits_avoid_shared_lock() {
        let a = PerCoreIovaAllocator::new(2);
        let mut c = ctx(0);
        // First alloc refills the magazine (1 shared-lock hit)...
        let p = a.alloc(&mut c, 1).unwrap();
        let before = a.shared_lock().stats().acquisitions;
        // ...then free/alloc cycles run entirely core-locally.
        for _ in 0..100 {
            a.free(&mut c, p, 1);
            let q = a.alloc(&mut c, 1).unwrap();
            assert_eq!(q, p);
        }
        assert_eq!(a.shared_lock().stats().acquisitions, before);
    }

    #[test]
    fn magazine_ranges_unique_across_cores() {
        let a = PerCoreIovaAllocator::new(4);
        let mut seen = std::collections::HashSet::new();
        for core in 0..4u16 {
            let mut c = ctx(core);
            for _ in 0..200 {
                let p = a.alloc(&mut c, 1).unwrap();
                assert!(seen.insert(p.0), "duplicate IOVA {p}");
            }
        }
    }

    #[test]
    fn magazine_spills_when_overfull() {
        let a = PerCoreIovaAllocator::new(1);
        let mut c = ctx(0);
        let pages: Vec<_> = (0..(MAGAZINE_CAP + 8))
            .map(|_| a.alloc(&mut c, 1).unwrap())
            .collect();
        for p in pages {
            a.free(&mut c, p, 1);
        }
        // The spill path returned excess ranges to the shared pool and the
        // allocator still works.
        assert!(a.alloc(&mut c, 1).is_ok());
    }

    #[test]
    fn magazine_is_cheaper_than_tree_in_steady_state() {
        let tree = GlobalTreeIovaAllocator::new();
        let mag = PerCoreIovaAllocator::new(1);
        let mut ct = ctx(0);
        let mut cm = ctx(0);
        // Warm the magazine.
        let p = mag.alloc(&mut cm, 1).unwrap();
        mag.free(&mut cm, p, 1);
        cm.reset_stats();
        ct.reset_stats();
        for _ in 0..100 {
            let p = tree.alloc(&mut ct, 1).unwrap();
            tree.free(&mut ct, p, 1);
            let q = mag.alloc(&mut cm, 1).unwrap();
            mag.free(&mut cm, q, 1);
        }
        assert!(
            cm.busy() * 3 < ct.busy(),
            "magazine {} vs tree {}",
            cm.busy(),
            ct.busy()
        );
    }

    fn zero_ctx(core: u16) -> CoreCtx {
        CoreCtx::new(CoreId(core), Arc::new(CostModel::zero()))
    }

    #[test]
    fn contention_event_attributed_to_the_spinning_acquisition_only() {
        // Two-thread attribution regression: core 1 spins behind core 0's
        // critical section, core 2 then acquires uncontended. Exactly one
        // LockContention event must appear — core 1's, carrying its own
        // spin — even though the lock's global total_spin counter is
        // nonzero when core 2 reads it (the old code diffed that counter
        // and could blame core 2).
        let obs = Obs::isolated();
        let a = GlobalTreeIovaAllocator::with_obs(obs.clone());

        // Core 0 holds the allocator lock for cycles [0, 10_000).
        let mut c0 = zero_ctx(0);
        a.lock().lock(&mut c0);
        c0.charge(Phase::Other, Cycles(10_000));
        a.lock().unlock(&mut c0);

        // Core 1 arrives at t=0 and spins the full 10_000 cycles.
        let mut c1 = zero_ctx(1);
        a.alloc(&mut c1, 1).unwrap();

        // Core 2 arrives long after the lock is free: no spin, no event.
        let mut c2 = zero_ctx(2);
        c2.seek(Cycles(50_000));
        a.alloc(&mut c2, 1).unwrap();

        let spins: Vec<(u16, u64)> = obs
            .tracer()
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::LockContention { spin_cycles, .. } => Some((e.core, *spin_cycles)),
                _ => None,
            })
            .collect();
        assert_eq!(spins, vec![(1, 10_000)], "one event, core 1's own spin");
    }

    #[test]
    fn magazine_drain_returns_cached_ranges_to_shared_pool() {
        let a = PerCoreIovaAllocator::new(2);
        let mut c = ctx(0);
        // Populate the magazine: the refill pulls MAGAZINE_REFILL ranges.
        let p = a.alloc(&mut c, 1).unwrap();
        a.free(&mut c, p, 1);
        let drained = a.drain_magazine(&mut c);
        assert_eq!(drained, MAGAZINE_REFILL, "refill batch went home");
        // An empty magazine drains to nothing (and takes no shared lock).
        let before = a.shared_lock().stats().acquisitions;
        assert_eq!(a.drain_magazine(&mut c), 0);
        assert_eq!(a.shared_lock().stats().acquisitions, before);
        // After a full drain the shared pool is whole again: a fresh
        // same-size alloc starts from the lowest page, as on a new
        // allocator.
        let fresh = PerCoreIovaAllocator::new(2);
        let mut cf = ctx(0);
        assert_eq!(
            a.alloc(&mut c, 1).unwrap(),
            fresh.alloc(&mut cf, 1).unwrap()
        );
    }

    #[test]
    fn bump_is_monotone() {
        let b = BumpIova::new();
        let mut c = ctx(0);
        let p1 = b.alloc(&mut c, 5).unwrap();
        let p2 = b.alloc(&mut c, 1).unwrap();
        assert_eq!(p2.0, p1.0 + 5);
    }
}
