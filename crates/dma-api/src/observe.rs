//! Observer hooks for correctness tooling.
//!
//! The sanitizer crate (`dmasan`) sits *above* `dma-api` in the dependency
//! graph, so the DMA layer cannot call it directly. Instead it exposes two
//! small trait hooks — [`DmaObserver`] for the OS-side map/unmap lifecycle
//! and [`BusObserver`] for device-side bus traffic — that `dmasan`
//! implements and the stack wires in at construction time. With no
//! observer installed the hooks cost one `Option` check.

use crate::{CoherentBuffer, DmaMapping};
use iommu::DeviceId;
use simcore::CoreCtx;
use std::fmt::Debug;

/// OS-side DMA-API lifecycle hooks.
///
/// [`crate::TracedDma`] invokes these around the inner engine:
///
/// - `on_map` fires *after* a successful inner map, with the trace `seq`
///   of the `DmaMap` event (so violations can chain back to it);
/// - `on_unmap` fires *before* the inner unmap, so misuse (double unmap,
///   wrong size) is observed even when the inner engine then errors;
/// - the coherent-buffer hooks register long-lived device windows (e.g.
///   descriptor rings) that are legal targets outside any streaming
///   mapping.
pub trait DmaObserver: Debug + Send + Sync {
    /// A streaming mapping was created.
    fn on_map(&self, ctx: &CoreCtx, dev: DeviceId, mapping: &DmaMapping, map_seq: u64);
    /// A streaming mapping is about to be destroyed.
    fn on_unmap(&self, ctx: &CoreCtx, dev: DeviceId, mapping: &DmaMapping, unmap_seq: u64);
    /// A coherent buffer (descriptor ring, status block) was allocated.
    fn on_alloc_coherent(&self, ctx: &CoreCtx, dev: DeviceId, buf: &CoherentBuffer);
    /// A coherent buffer was freed.
    fn on_free_coherent(&self, ctx: &CoreCtx, dev: DeviceId, buf: &CoherentBuffer);
}

/// Device-side bus traffic hook.
///
/// [`crate::Bus::Observed`] invokes this for every device read/write,
/// *after* the underlying bus (IOMMU or direct memory) has decided the
/// access. `granted` reports that hardware decision; the observer layers
/// the DMA-API-contract check (is there a live mapping covering exactly
/// these bytes?) on top.
pub trait BusObserver: Debug + Send + Sync {
    /// A device touched `len` bytes at `addr` (IOVA when protected).
    fn on_device_access(&self, dev: DeviceId, addr: u64, len: usize, is_write: bool, granted: bool);
}
