//! # dma-api — the OS DMA layer
//!
//! The Linux-style DMA API (§2.2): drivers authorize every DMA by mapping
//! the target buffer before programming the device and unmapping it after
//! the DMA completes. The API is a trait, [`DmaEngine`], with one
//! implementation per protection scheme the paper compares:
//!
//! | engine | paper name | protection |
//! |---|---|---|
//! | [`NoIommu`] | *no-iommu* | none (IOMMU disabled) |
//! | [`IdentityDma`] (strict) | *identity+* | strict, page granularity |
//! | [`IdentityDma`] (deferred) | *identity−* | deferred, page granularity |
//! | [`LinuxDma`] (strict) | *strict* (stock Linux) | strict, page granularity, slow IOVA allocator |
//! | [`LinuxDma`] (deferred) | *defer* (stock Linux) | deferred, page granularity, global batching lock |
//! | `ShadowDma` (crate `shadow-core`) | *copy* | **strict, byte granularity** |
//!
//! Also here: IOVA allocators (the stock global-lock red-black-tree
//! allocator whose contention EiovaR/FAST'15 identified, and the per-core
//! magazine allocator of ATC'15 \[42\]), the deferred-invalidation batching
//! machinery (global-list and per-core variants), and the device-side
//! [`Bus`] through which device models issue DMAs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod coherent;
mod engine;
mod flush;
mod identity;
mod iova_alloc;
mod linux;
mod noiommu;
mod observe;
mod selfinval;
mod traced;
mod types;

pub use bus::{Bus, BusError};
pub use coherent::CoherentHelper;
pub use engine::DmaEngine;
pub use flush::{DeferPolicy, DeferredFlusher, FlushScope, PendingUnmap, FLUSH_LOCK};
pub use identity::IdentityDma;
pub use iova_alloc::{
    BumpIova, GlobalCachedIovaAllocator, GlobalTreeIovaAllocator, IovaAllocator,
    PerCoreIovaAllocator,
};
pub use linux::LinuxDma;
pub use noiommu::NoIommu;
pub use observe::{BusObserver, DmaObserver};
pub use selfinval::SelfInvalidatingDma;
pub use traced::TracedDma;
pub use types::{
    CoherentBuffer, DmaBuf, DmaDirection, DmaError, DmaMapping, ProtectionProfile, Strictness,
};
