//! `TracedDma` — wraps any [`DmaEngine`] with telemetry.
//!
//! Every `dma_map` / `dma_unmap` is recorded as a structured trace event
//! and counted in the registry, regardless of which protection scheme the
//! inner engine implements. The unmap event opens a cause span, so the
//! IOTLB-invalidation (and lock-contention) events the unmap triggers are
//! attributed back to it — this is how a single `dma_unmap` in a report
//! can be broken into its invalidation wait.

use crate::{
    CoherentBuffer, DmaBuf, DmaDirection, DmaEngine, DmaError, DmaMapping, DmaObserver,
    ProtectionProfile,
};
use iommu::DeviceId;
use obs::{Counter, EventKind, Histogram, Obs};
use simcore::CoreCtx;
use std::borrow::Cow;
use std::sync::Arc;

fn dir_str(dir: DmaDirection) -> Cow<'static, str> {
    Cow::Borrowed(match dir {
        DmaDirection::ToDevice => "to_device",
        DmaDirection::FromDevice => "from_device",
        DmaDirection::Bidirectional => "bidirectional",
    })
}

/// A [`DmaEngine`] decorator adding trace events and `dma.*{dev}` metrics.
///
/// # Examples
///
/// ```
/// use dma_api::{DmaBuf, DmaDirection, DmaEngine, NoIommu, TracedDma};
/// use memsim::{NumaDomain, NumaTopology, PhysMemory};
/// use obs::Obs;
/// use simcore::{CoreCtx, CoreId, CostModel};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(16)));
/// let obs = Obs::isolated();
/// let eng = TracedDma::new(NoIommu::new(mem.clone(), iommu::DeviceId(0)), obs.clone());
/// let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
/// let buf = DmaBuf::new(mem.alloc_frame(NumaDomain(0))?.base(), 1500);
/// let m = eng.map(&mut ctx, buf, DmaDirection::FromDevice)?;
/// eng.unmap(&mut ctx, m)?;
/// let names: Vec<_> = obs.tracer().events().iter().map(|e| e.kind.name()).collect();
/// assert_eq!(names, ["DmaMap", "DmaUnmap"]);
/// # Ok(())
/// # }
/// ```
pub struct TracedDma<E> {
    inner: E,
    obs: Obs,
    observer: Option<Arc<dyn DmaObserver>>,
    maps: Counter,
    unmaps: Counter,
    map_bytes: Histogram,
}

impl<E: DmaEngine> TracedDma<E> {
    /// Wraps `inner`, reporting into `obs`.
    pub fn new(inner: E, obs: Obs) -> Self {
        let d = Some(inner.device().0);
        TracedDma {
            maps: obs.counter("dma", "maps", d),
            unmaps: obs.counter("dma", "unmaps", d),
            map_bytes: obs.histogram("dma", "map_bytes", d),
            inner,
            obs,
            observer: None,
        }
    }

    /// Wraps `inner`, reporting into `obs` and notifying `observer` (the
    /// DMA sanitizer) of every lifecycle event.
    pub fn with_observer(inner: E, obs: Obs, observer: Arc<dyn DmaObserver>) -> Self {
        let mut t = TracedDma::new(inner, obs);
        t.observer = Some(observer);
        t
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The telemetry handle events are recorded into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

impl<E: DmaEngine> DmaEngine for TracedDma<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn device(&self) -> DeviceId {
        self.inner.device()
    }

    fn profile(&self) -> ProtectionProfile {
        self.inner.profile()
    }

    fn map(
        &self,
        ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError> {
        let m = obs::profile::scope(ctx, "dma_map", |ctx| self.inner.map(ctx, buf, dir))?;
        self.maps.inc();
        self.map_bytes.record(m.len as u64);
        self.obs.set_now_hint(ctx.now());
        let seq = self.obs.trace(
            ctx.now(),
            ctx.core.0,
            Some(self.inner.device().0),
            EventKind::DmaMap {
                iova: m.iova.get(),
                len: m.len as u64,
                dir: dir_str(dir),
            },
        );
        if let Some(o) = &self.observer {
            o.on_map(ctx, self.inner.device(), &m, seq);
        }
        Ok(m)
    }

    fn unmap(&self, ctx: &mut CoreCtx, mapping: DmaMapping) -> Result<(), DmaError> {
        // Record the unmap first and open a cause span: the invalidation
        // (and contention) events the inner engine emits while tearing the
        // mapping down chain back to this event.
        self.obs.set_now_hint(ctx.now());
        let seq = self.obs.trace(
            ctx.now(),
            ctx.core.0,
            Some(self.inner.device().0),
            EventKind::DmaUnmap {
                iova: mapping.iova.get(),
                len: mapping.len as u64,
            },
        );
        let _span = obs::span(seq);
        // Notify the observer *before* the inner unmap so misuse (double
        // unmap, size mismatch) is seen even if the inner engine rejects
        // the call.
        if let Some(o) = &self.observer {
            o.on_unmap(ctx, self.inner.device(), &mapping, seq);
        }
        obs::profile::scope(ctx, "dma_unmap", |ctx| self.inner.unmap(ctx, mapping))?;
        self.unmaps.inc();
        Ok(())
    }

    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError> {
        let buf = obs::profile::scope(ctx, "dma_alloc_coherent", |ctx| {
            self.inner.alloc_coherent(ctx, len)
        })?;
        if let Some(o) = &self.observer {
            o.on_alloc_coherent(ctx, self.inner.device(), &buf);
        }
        Ok(buf)
    }

    fn free_coherent(&self, ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError> {
        if let Some(o) = &self.observer {
            o.on_free_coherent(ctx, self.inner.device(), &buf);
        }
        obs::profile::scope(ctx, "dma_free_coherent", |ctx| {
            self.inner.free_coherent(ctx, buf)
        })
    }

    fn sync_for_cpu(&self, ctx: &mut CoreCtx, mapping: &DmaMapping) {
        self.inner.sync_for_cpu(ctx, mapping);
    }

    fn sync_for_device(&self, ctx: &mut CoreCtx, mapping: &DmaMapping) {
        self.inner.sync_for_device(ctx, mapping);
    }

    fn flush_deferred(&self, ctx: &mut CoreCtx) {
        self.inner.flush_deferred(ctx);
    }

    fn iova_lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        self.inner.iova_lock_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoIommu;
    use memsim::{NumaDomain, NumaTopology, PhysMemory};
    use simcore::{CoreId, CostModel, Cycles};
    use std::sync::Arc;

    fn rig() -> (Arc<PhysMemory>, Obs, TracedDma<NoIommu>, CoreCtx) {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(32)));
        let obs = Obs::isolated();
        let eng = TracedDma::new(NoIommu::new(mem.clone(), DeviceId(3)), obs.clone());
        let ctx = CoreCtx::new(CoreId(1), Arc::new(CostModel::zero()));
        (mem, obs, eng, ctx)
    }

    #[test]
    fn map_unmap_pair_traced_and_counted() {
        let (mem, obs, eng, mut ctx) = rig();
        let buf = DmaBuf::new(mem.alloc_frame(NumaDomain(0)).unwrap().base(), 999);
        let m = eng.map(&mut ctx, buf, DmaDirection::ToDevice).unwrap();
        eng.unmap(&mut ctx, m).unwrap();
        let evs = obs.tracer().events();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0].kind,
            EventKind::DmaMap {
                iova: m.iova.get(),
                len: 999,
                dir: "to_device".into(),
            }
        );
        assert_eq!(
            evs[1].kind,
            EventKind::DmaUnmap {
                iova: m.iova.get(),
                len: 999,
            }
        );
        assert_eq!(evs[1].device, Some(3));
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("dma", "maps", Some(3)), Some(1));
        assert_eq!(snap.counter("dma", "unmaps", Some(3)), Some(1));
    }

    #[test]
    fn sg_maps_trace_each_element() {
        let (mem, obs, eng, mut ctx) = rig();
        let bufs: Vec<DmaBuf> = (0..3)
            .map(|_| DmaBuf::new(mem.alloc_frame(NumaDomain(0)).unwrap().base(), 2048))
            .collect();
        let ms = eng
            .map_sg(&mut ctx, &bufs, DmaDirection::FromDevice)
            .unwrap();
        eng.unmap_sg(&mut ctx, ms).unwrap();
        let names: Vec<_> = obs
            .tracer()
            .events()
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert_eq!(
            names,
            ["DmaMap", "DmaMap", "DmaMap", "DmaUnmap", "DmaUnmap", "DmaUnmap"]
        );
    }

    #[test]
    fn events_during_unmap_chain_to_it() {
        let (mem, obs, eng, mut ctx) = rig();
        let buf = DmaBuf::new(mem.alloc_frame(NumaDomain(0)).unwrap().base(), 64);
        let m = eng.map(&mut ctx, buf, DmaDirection::ToDevice).unwrap();
        eng.unmap(&mut ctx, m).unwrap();
        // Simulate a child event recorded while no span is open: no cause.
        let orphan = obs.trace(Cycles(9), 0, None, EventKind::PoolShrink { bytes: 1 });
        let evs = obs.tracer().events();
        assert_eq!(evs[0].cause, None, "map has no enclosing span");
        assert!(evs.iter().any(|e| e.seq == orphan && e.cause.is_none()));
    }
}
