//! The `DmaEngine` trait: the DMA API every protection scheme implements.

use crate::{CoherentBuffer, DmaBuf, DmaDirection, DmaError, DmaMapping, ProtectionProfile};
use iommu::DeviceId;
use simcore::CoreCtx;

/// The OS DMA API (§2.2), one implementation per protection scheme.
///
/// Drivers use it in the canonical map → DMA → unmap pattern:
///
/// 1. `map` authorizes an upcoming DMA to `buf` and returns the
///    device-visible address. After `map`, the buffer belongs to the
///    device: the OS must not touch it.
/// 2. The device DMAs through [`crate::Bus`] using the returned IOVA.
/// 3. `unmap` revokes device access and returns buffer ownership to the
///    OS.
///
/// All operations charge their modeled cost to `ctx`. Simulated multi-core
/// contention is expressed in virtual time via `ctx.core`; engines are
/// additionally `Send + Sync` so the `modelcheck` bounded model checker can
/// drive one engine instance from several schedule-controlled host threads.
pub trait DmaEngine: Send + Sync {
    /// The engine's name as used in the paper's figures
    /// (`no iommu`, `copy`, `identity+`, `identity-`, `strict`, `defer`).
    fn name(&self) -> &'static str;

    /// The device this engine instance manages DMA for.
    fn device(&self) -> DeviceId;

    /// Qualitative protection properties (the paper's Table 1 row).
    fn profile(&self) -> ProtectionProfile;

    /// `dma_map`: authorizes a DMA to `buf` with direction `dir`; returns
    /// the mapping whose IOVA the driver programs into the device.
    fn map(
        &self,
        ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError>;

    /// `dma_unmap`: revokes the mapping. For device-write directions,
    /// engines that copy (DMA shadowing) transfer the DMAed data back into
    /// the OS buffer here.
    fn unmap(&self, ctx: &mut CoreCtx, mapping: DmaMapping) -> Result<(), DmaError>;

    /// `dma_map_sg`: maps a scatter/gather list. The default maps each
    /// element independently, which is how the paper's design treats SG
    /// elements (§5.2).
    fn map_sg(
        &self,
        ctx: &mut CoreCtx,
        bufs: &[DmaBuf],
        dir: DmaDirection,
    ) -> Result<Vec<DmaMapping>, DmaError> {
        let mut out = Vec::with_capacity(bufs.len());
        for &b in bufs {
            match self.map(ctx, b, dir) {
                Ok(m) => out.push(m),
                Err(e) => {
                    // Roll back already-established mappings.
                    for m in out {
                        let _ = self.unmap(ctx, m);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// `dma_unmap_sg`: unmaps a scatter/gather list.
    fn unmap_sg(&self, ctx: &mut CoreCtx, mappings: Vec<DmaMapping>) -> Result<(), DmaError> {
        for m in mappings {
            self.unmap(ctx, m)?;
        }
        Ok(())
    }

    /// `dma_alloc_coherent`: allocates page-quantity memory permanently
    /// mapped for both driver and device (§2.2). Infrequent and not
    /// performance-critical; every engine uses strict semantics here.
    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError>;

    /// `dma_free_coherent`: releases a coherent buffer, strictly
    /// invalidating its translations.
    fn free_coherent(&self, ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError>;

    /// `dma_sync_single_for_cpu`: hands a streaming mapping back to the
    /// CPU for inspection without unmapping it (§2.2). The simulated
    /// memory system is cache-coherent, so the default is a no-op; the
    /// method exists so drivers express the CPU handoff explicitly and
    /// the static protocol checker / dmasan can audit it.
    fn sync_for_cpu(&self, _ctx: &mut CoreCtx, _mapping: &DmaMapping) {}

    /// `dma_sync_single_for_device`: returns a CPU-synced streaming
    /// mapping to the device. No-op for the same reason as
    /// [`DmaEngine::sync_for_cpu`].
    fn sync_for_device(&self, _ctx: &mut CoreCtx, _mapping: &DmaMapping) {}

    /// Drains any deferred invalidations (the 10 ms timer / teardown
    /// path). No-op for strict engines.
    fn flush_deferred(&self, _ctx: &mut CoreCtx) {}

    /// The name and a snapshot of the engine's IOVA-allocator lock, if the
    /// engine allocates IOVAs under a contention-visible lock. The scaling
    /// sweep uses this to attribute `Phase::Spinlock` time to the
    /// allocator, separately from the invalidation-queue lock.
    fn iova_lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        None
    }
}

impl<T: DmaEngine + ?Sized> DmaEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn device(&self) -> DeviceId {
        (**self).device()
    }

    fn profile(&self) -> ProtectionProfile {
        (**self).profile()
    }

    fn map(
        &self,
        ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError> {
        (**self).map(ctx, buf, dir)
    }

    fn unmap(&self, ctx: &mut CoreCtx, mapping: DmaMapping) -> Result<(), DmaError> {
        (**self).unmap(ctx, mapping)
    }

    fn map_sg(
        &self,
        ctx: &mut CoreCtx,
        bufs: &[DmaBuf],
        dir: DmaDirection,
    ) -> Result<Vec<DmaMapping>, DmaError> {
        (**self).map_sg(ctx, bufs, dir)
    }

    fn unmap_sg(&self, ctx: &mut CoreCtx, mappings: Vec<DmaMapping>) -> Result<(), DmaError> {
        (**self).unmap_sg(ctx, mappings)
    }

    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError> {
        (**self).alloc_coherent(ctx, len)
    }

    fn free_coherent(&self, ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError> {
        (**self).free_coherent(ctx, buf)
    }

    fn sync_for_cpu(&self, ctx: &mut CoreCtx, mapping: &DmaMapping) {
        (**self).sync_for_cpu(ctx, mapping)
    }

    fn sync_for_device(&self, ctx: &mut CoreCtx, mapping: &DmaMapping) {
        (**self).sync_for_device(ctx, mapping)
    }

    fn flush_deferred(&self, ctx: &mut CoreCtx) {
        (**self).flush_deferred(ctx)
    }

    fn iova_lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        (**self).iova_lock_stats()
    }
}
