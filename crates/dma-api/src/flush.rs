//! Deferred IOTLB-invalidation batching (§2.2.1).
//!
//! Under deferred protection `dma_unmap` does not invalidate; it appends
//! the unmapped range to a pending list. The list is drained — one
//! domain-selective flush plus IOVA recycling — after 250 entries or 10 ms,
//! whichever comes first. Stock Linux keeps **one global list under one
//! lock**, which itself becomes a bottleneck at 16 cores; ATC'15 \[42\]
//! batches **per core** instead, trading a longer vulnerability window for
//! scalability. Both variants are modeled ([`FlushScope`]).

use iommu::IovaPage;
use obs::{Counter, EventKind, Gauge, Obs};
use simcore::sync::Mutex;
use simcore::{ChargeBatch, CoreCtx, Cycles, Phase, SimLock};
use std::borrow::Cow;

/// One deferred unmap: an IOVA range whose IOTLB entries are still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingUnmap {
    /// First IOVA page of the range.
    pub page: IovaPage,
    /// Number of pages.
    pub pages: u64,
}

/// Where the pending list lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushScope {
    /// One global lock-protected list (stock Linux).
    Global,
    /// One list per core, no cross-core synchronization (ATC'15 \[42\]).
    PerCore,
}

/// When to drain the pending list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeferPolicy {
    /// Drain after this many pending unmaps (Linux: 250).
    pub batch: usize,
    /// Drain when the oldest pending unmap is this old (Linux: 10 ms).
    pub timeout: Cycles,
}

impl DeferPolicy {
    /// The Linux defaults: 250 unmaps or 10 ms at 2.4 GHz.
    pub fn linux_default() -> Self {
        DeferPolicy {
            batch: 250,
            timeout: Cycles(24_000_000), // 10 ms at 2.4 GHz
        }
    }
}

#[derive(Debug, Default)]
struct PendingList {
    entries: Vec<PendingUnmap>,
    oldest: Option<Cycles>,
}

/// The deferred-flush machinery shared by the deferred engines.
///
/// The engine supplies a `drain` callback that performs the actual IOTLB
/// flush and recycles the IOVAs; the flusher owns batching, the (optional)
/// global lock, and the vulnerability-window bookkeeping.
#[derive(Debug)]
pub struct DeferredFlusher {
    policy: DeferPolicy,
    scope: FlushScope,
    global_lock: SimLock,
    lists: Vec<Mutex<PendingList>>,
    obs: Obs,
    drains: Counter,
    deferred_total: Counter,
    /// Live vulnerability-window size, mirrored to the registry.
    pending_gauge: Gauge,
    peak_pending: Gauge,
}

/// Lock name reported in lockset events for the global pending list.
pub const FLUSH_LOCK: &str = "deferred-flush-list";

impl DeferredFlusher {
    /// Creates a flusher; `cores` sizes the per-core lists (ignored for
    /// [`FlushScope::Global`], which uses a single list).
    pub fn new(policy: DeferPolicy, scope: FlushScope, cores: usize) -> Self {
        Self::with_obs(policy, scope, cores, Obs::isolated())
    }

    /// Creates a flusher reporting into `obs` (`flush.*` metrics).
    pub fn with_obs(policy: DeferPolicy, scope: FlushScope, cores: usize, obs: Obs) -> Self {
        let n = match scope {
            FlushScope::Global => 1,
            FlushScope::PerCore => cores.max(1),
        };
        DeferredFlusher {
            policy,
            scope,
            global_lock: SimLock::new(FLUSH_LOCK),
            lists: (0..n).map(|_| Mutex::new(PendingList::default())).collect(),
            drains: obs.counter("flush", "drains", None),
            deferred_total: obs.counter("flush", "deferred_total", None),
            pending_gauge: obs.gauge("flush", "pending", None),
            peak_pending: obs.gauge("flush", "peak_pending", None),
            obs,
        }
    }

    /// Emits a detail-gated lockset event (no-op unless
    /// [`Obs::set_detail_enabled`] is on).
    fn lockset(&self, ctx: &CoreCtx, kind: EventKind) {
        if self.obs.detail_enabled() {
            self.obs.trace(ctx.now(), ctx.core.0, None, kind);
        }
    }

    /// Records that this core touched pending list `idx` (a shared-state
    /// access the Eraser-style detector checks against the held lockset).
    fn lockset_access(&self, ctx: &CoreCtx, idx: usize) {
        self.lockset(
            ctx,
            EventKind::SharedAccess {
                var: Cow::Owned(format!("flush.pending_list[{idx}]")),
                write: true,
            },
        );
    }

    /// The global list's lock (contended only in [`FlushScope::Global`]).
    pub fn global_lock(&self) -> &SimLock {
        &self.global_lock
    }

    /// Number of drains performed (a view over `flush.drains`).
    pub fn drains(&self) -> u64 {
        self.drains.get()
    }

    /// Total unmaps that went through the deferred path (a view over
    /// `flush.deferred_total`).
    pub fn deferred_total(&self) -> u64 {
        self.deferred_total.get()
    }

    /// Number of currently pending (unmapped but not yet invalidated)
    /// ranges — the size of the open vulnerability window.
    pub fn pending(&self) -> usize {
        self.lists.iter().map(|l| l.lock().entries.len()).sum()
    }

    fn list_index(&self, ctx: &CoreCtx) -> usize {
        match self.scope {
            FlushScope::Global => 0,
            FlushScope::PerCore => ctx.core.index() % self.lists.len(),
        }
    }

    /// Defers one unmapped range; drains the batch through `drain` if the
    /// policy triggers. `drain` receives the entries being retired and runs
    /// *outside* the list lock (matching Linux, which drops the list lock
    /// around the flush itself... the flush serializes on the invalidation
    /// queue lock anyway).
    pub fn defer(
        &self,
        ctx: &mut CoreCtx,
        entry: PendingUnmap,
        drain: impl FnOnce(&mut CoreCtx, &[PendingUnmap]),
    ) {
        self.deferred_total.inc();
        self.peak_pending.set_max(self.pending_gauge.add(1));
        let idx = self.list_index(ctx);
        let append = |ctx: &mut CoreCtx,
                      acc: &mut ChargeBatch,
                      lists: &Mutex<PendingList>|
         -> Option<Vec<PendingUnmap>> {
            // Burst-charged: the clock advances here (so the append cost is
            // inside the global lock's hold time, exactly as before), the
            // breakdown attribution commits when the burst scope closes.
            ctx.charge_batch(acc, Phase::IommuPageTableMgmt, ctx.cost.defer_list_append);
            let mut list = lists.lock();
            list.entries.push(entry);
            if list.oldest.is_none() {
                list.oldest = Some(ctx.now());
            }
            let over_batch = list.entries.len() >= self.policy.batch;
            let over_time = list
                .oldest
                .is_some_and(|t| ctx.now().saturating_sub(t) >= self.policy.timeout);
            if over_batch || over_time {
                list.oldest = None;
                Some(std::mem::take(&mut list.entries))
            } else {
                None
            }
        };
        let batch = ctx.burst(|ctx, acc| match self.scope {
            FlushScope::Global => {
                self.lockset(
                    ctx,
                    EventKind::LockAcquire {
                        lock: Cow::Borrowed(FLUSH_LOCK),
                    },
                );
                let b = self.global_lock.with(ctx, |ctx| {
                    self.lockset_access(ctx, 0);
                    append(ctx, acc, &self.lists[0])
                });
                self.lockset(
                    ctx,
                    EventKind::LockRelease {
                        lock: Cow::Borrowed(FLUSH_LOCK),
                    },
                );
                b
            }
            FlushScope::PerCore => {
                // Deliberately lock-free: each core owns its own list, so
                // the lockset detector must see per-index variable names.
                self.lockset_access(ctx, idx);
                append(ctx, acc, &self.lists[idx])
            }
        });
        if let Some(batch) = batch {
            self.drains.inc();
            self.pending_gauge.sub(batch.len() as i64);
            drain(ctx, &batch);
        }
    }

    /// Forces a drain of every pending entry (all cores' lists), e.g. at
    /// the 10 ms timer, under memory pressure, or at experiment teardown.
    pub fn force_flush(
        &self,
        ctx: &mut CoreCtx,
        mut drain: impl FnMut(&mut CoreCtx, &[PendingUnmap]),
    ) {
        for (idx, list) in self.lists.iter().enumerate() {
            let batch = match self.scope {
                FlushScope::Global => {
                    self.lockset(
                        ctx,
                        EventKind::LockAcquire {
                            lock: Cow::Borrowed(FLUSH_LOCK),
                        },
                    );
                    let b = self.global_lock.with(ctx, |ctx| {
                        self.lockset_access(ctx, 0);
                        let mut l = list.lock();
                        l.oldest = None;
                        std::mem::take(&mut l.entries)
                    });
                    self.lockset(
                        ctx,
                        EventKind::LockRelease {
                            lock: Cow::Borrowed(FLUSH_LOCK),
                        },
                    );
                    b
                }
                FlushScope::PerCore => {
                    self.lockset_access(ctx, idx);
                    let mut l = list.lock();
                    l.oldest = None;
                    std::mem::take(&mut l.entries)
                }
            };
            if !batch.is_empty() {
                self.drains.inc();
                self.pending_gauge.sub(batch.len() as i64);
                drain(ctx, &batch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{CoreId, CostModel};
    use std::cell::RefCell;
    use std::sync::Arc;

    fn ctx(core: u16) -> CoreCtx {
        CoreCtx::new(CoreId(core), Arc::new(CostModel::haswell_2_4ghz()))
    }

    fn entry(p: u64) -> PendingUnmap {
        PendingUnmap {
            page: IovaPage(p),
            pages: 1,
        }
    }

    #[test]
    fn drains_at_batch_limit() {
        let f = DeferredFlusher::new(
            DeferPolicy {
                batch: 3,
                timeout: Cycles::MAX,
            },
            FlushScope::Global,
            1,
        );
        let mut c = ctx(0);
        let drained = RefCell::new(Vec::new());
        for i in 0..7 {
            f.defer(&mut c, entry(i), |_, batch| {
                drained.borrow_mut().push(batch.to_vec());
            });
        }
        let drained = drained.into_inner();
        assert_eq!(drained.len(), 2, "two full batches of 3");
        assert_eq!(drained[0].len(), 3);
        assert_eq!(drained[1].len(), 3);
        assert_eq!(f.pending(), 1, "seventh entry still pending");
        assert_eq!(f.drains(), 2);
        assert_eq!(f.deferred_total(), 7);
    }

    #[test]
    fn drains_on_timeout() {
        let f = DeferredFlusher::new(
            DeferPolicy {
                batch: 1000,
                timeout: Cycles(1_000),
            },
            FlushScope::Global,
            1,
        );
        let mut c = ctx(0);
        let mut drained = 0usize;
        f.defer(&mut c, entry(0), |_, _| drained += 1);
        assert_eq!(drained, 0);
        c.seek(Cycles(5_000)); // 10 ms timer fires much later
        f.defer(&mut c, entry(1), |_, b| {
            drained += 1;
            assert_eq!(b.len(), 2);
        });
        assert_eq!(drained, 1);
    }

    #[test]
    fn per_core_lists_are_independent() {
        let f = DeferredFlusher::new(
            DeferPolicy {
                batch: 2,
                timeout: Cycles::MAX,
            },
            FlushScope::PerCore,
            2,
        );
        let mut c0 = ctx(0);
        let mut c1 = ctx(1);
        let mut drains = 0usize;
        f.defer(&mut c0, entry(0), |_, _| drains += 1);
        f.defer(&mut c1, entry(1), |_, _| drains += 1);
        assert_eq!(drains, 0, "each core's list holds one entry");
        f.defer(&mut c0, entry(2), |_, b| {
            drains += 1;
            assert_eq!(b.len(), 2);
        });
        assert_eq!(drains, 1);
        assert_eq!(f.pending(), 1, "core 1's entry still pending");
    }

    #[test]
    fn global_scope_takes_lock_per_core_does_not() {
        let fg = DeferredFlusher::new(DeferPolicy::linux_default(), FlushScope::Global, 4);
        let fp = DeferredFlusher::new(DeferPolicy::linux_default(), FlushScope::PerCore, 4);
        let mut c = ctx(0);
        fg.defer(&mut c, entry(0), |_, _| {});
        fp.defer(&mut c, entry(0), |_, _| {});
        assert_eq!(fg.global_lock().stats().acquisitions, 1);
        assert_eq!(fp.global_lock().stats().acquisitions, 0);
    }

    #[test]
    fn force_flush_drains_everything() {
        let f = DeferredFlusher::new(DeferPolicy::linux_default(), FlushScope::PerCore, 3);
        let mut drained = Vec::new();
        for core in 0..3u16 {
            let mut c = ctx(core);
            f.defer(&mut c, entry(core as u64), |_, _| {});
        }
        assert_eq!(f.pending(), 3);
        let mut c = ctx(0);
        f.force_flush(&mut c, |_, b| drained.extend_from_slice(b));
        assert_eq!(drained.len(), 3);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn force_flush_on_empty_is_quiet() {
        let f = DeferredFlusher::new(DeferPolicy::linux_default(), FlushScope::Global, 1);
        let mut c = ctx(0);
        let mut called = false;
        f.force_flush(&mut c, |_, _| called = true);
        assert!(!called);
        assert_eq!(f.drains(), 0);
    }
}
