//! DMA API data types.

use iommu::{Iova, Perms};
use memsim::{MemError, PhysAddr};
use std::fmt;

/// DMA direction from the CPU's point of view, exactly the Linux DMA API
/// directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// CPU → device (the device will *read* the buffer, e.g. TX packets).
    ToDevice,
    /// Device → CPU (the device will *write* the buffer, e.g. RX packets).
    FromDevice,
    /// Both directions.
    Bidirectional,
}

impl DmaDirection {
    /// The device access rights this direction requires.
    pub fn perms(self) -> Perms {
        match self {
            DmaDirection::ToDevice => Perms::Read,
            DmaDirection::FromDevice => Perms::Write,
            DmaDirection::Bidirectional => Perms::ReadWrite,
        }
    }

    /// Whether the device may read the buffer (so `dma_map` must copy
    /// OS → shadow under DMA shadowing).
    pub fn device_reads(self) -> bool {
        matches!(self, DmaDirection::ToDevice | DmaDirection::Bidirectional)
    }

    /// Whether the device may write the buffer (so `dma_unmap` must copy
    /// shadow → OS under DMA shadowing).
    pub fn device_writes(self) -> bool {
        matches!(self, DmaDirection::FromDevice | DmaDirection::Bidirectional)
    }
}

impl fmt::Display for DmaDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaDirection::ToDevice => f.write_str("to-device"),
            DmaDirection::FromDevice => f.write_str("from-device"),
            DmaDirection::Bidirectional => f.write_str("bidirectional"),
        }
    }
}

/// An OS-allocated DMA buffer handed to `dma_map`: a physical address and a
/// byte length. Typically comes from `kmalloc`, so it may share its first
/// and last pages with unrelated data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaBuf {
    /// Start of the buffer in physical memory.
    pub pa: PhysAddr,
    /// Length in bytes.
    pub len: usize,
}

impl DmaBuf {
    /// Creates a buffer descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(pa: PhysAddr, len: usize) -> Self {
        assert!(len > 0, "zero-length DMA buffer");
        DmaBuf { pa, len }
    }

    /// Number of IOVA/physical pages the buffer touches.
    pub fn pages(&self) -> u64 {
        let start = self.pa.get() >> memsim::PAGE_SHIFT;
        let end = (self.pa.get() + self.len as u64 - 1) >> memsim::PAGE_SHIFT;
        end - start + 1
    }
}

/// A live DMA mapping returned by `dma_map`; the token `dma_unmap` takes.
///
/// Mirrors the information a Linux driver passes to `dma_unmap_single`
/// (IOVA, size, direction); `os_pa` additionally records the OS buffer so
/// engines can verify their reverse lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaMapping {
    /// The device-visible address of the buffer.
    pub iova: Iova,
    /// Mapped length in bytes.
    pub len: usize,
    /// Direction the mapping was established with.
    pub dir: DmaDirection,
    /// The OS buffer backing this mapping.
    pub os_pa: PhysAddr,
}

/// A buffer allocated with `dma_alloc_coherent` (§2.2): permanently mapped,
/// page-quantity memory shared between driver and device (descriptor rings,
/// mailboxes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherentBuffer {
    /// Device-visible address.
    pub iova: Iova,
    /// CPU-visible physical address.
    pub pa: PhysAddr,
    /// Usable length in bytes.
    pub len: usize,
    /// Pages backing the buffer.
    pub pages: u64,
}

/// Strict vs deferred IOTLB invalidation (§2.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strictness {
    /// Invalidate on every `dma_unmap`. Secure, slow.
    Strict,
    /// Batch invalidations (250 unmaps or 10 ms). Fast, leaves a
    /// vulnerability window.
    Deferred,
}

impl fmt::Display for Strictness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strictness::Strict => f.write_str("strict"),
            Strictness::Deferred => f.write_str("deferred"),
        }
    }
}

/// The qualitative security/performance properties of an engine — the rows
/// of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionProfile {
    /// Human-readable engine name as used in the paper's figures.
    pub name: &'static str,
    /// Whether the IOMMU restricts the device at all.
    pub uses_iommu: bool,
    /// Whether protection is byte-granular (true only for DMA shadowing).
    pub sub_page: bool,
    /// Whether there is **no** window in which the device can access
    /// unmapped buffers (strict protection).
    pub no_vulnerability_window: bool,
}

impl ProtectionProfile {
    /// Renders the Table 1 check marks: (iommu, sub-page, no-window).
    pub fn marks(&self) -> (char, char, char) {
        let m = |b: bool| if b { '+' } else { '-' };
        (
            m(self.uses_iommu),
            m(self.sub_page),
            m(self.no_vulnerability_window),
        )
    }
}

/// Errors from DMA API operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaError {
    /// Physical memory exhausted or misused.
    Mem(MemError),
    /// An IOMMU management operation failed.
    Iommu(iommu::IommuError),
    /// `dma_unmap` was called with an IOVA that is not mapped.
    BadUnmap(Iova),
    /// The device's IOVA space (or a pool's metadata space) is exhausted.
    IovaExhausted,
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::Mem(e) => write!(f, "memory: {e}"),
            DmaError::Iommu(e) => write!(f, "iommu: {e}"),
            DmaError::BadUnmap(iova) => write!(f, "unmap of unknown mapping {iova}"),
            DmaError::IovaExhausted => f.write_str("IOVA space exhausted"),
        }
    }
}

impl std::error::Error for DmaError {}

impl From<MemError> for DmaError {
    fn from(e: MemError) -> Self {
        DmaError::Mem(e)
    }
}

impl From<iommu::IommuError> for DmaError {
    fn from(e: iommu::IommuError) -> Self {
        DmaError::Iommu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_perms() {
        assert_eq!(DmaDirection::ToDevice.perms(), Perms::Read);
        assert_eq!(DmaDirection::FromDevice.perms(), Perms::Write);
        assert_eq!(DmaDirection::Bidirectional.perms(), Perms::ReadWrite);
    }

    #[test]
    fn direction_copy_requirements() {
        assert!(DmaDirection::ToDevice.device_reads());
        assert!(!DmaDirection::ToDevice.device_writes());
        assert!(!DmaDirection::FromDevice.device_reads());
        assert!(DmaDirection::FromDevice.device_writes());
        assert!(DmaDirection::Bidirectional.device_reads());
        assert!(DmaDirection::Bidirectional.device_writes());
    }

    #[test]
    fn dmabuf_page_count() {
        assert_eq!(DmaBuf::new(PhysAddr(0), 1).pages(), 1);
        assert_eq!(DmaBuf::new(PhysAddr(0), 4096).pages(), 1);
        assert_eq!(DmaBuf::new(PhysAddr(0), 4097).pages(), 2);
        // Unaligned 1500-byte buffer near a page end spans two pages.
        assert_eq!(DmaBuf::new(PhysAddr(4000), 1500).pages(), 2);
        assert_eq!(DmaBuf::new(PhysAddr(4096), 65536).pages(), 16);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_len_buf_panics() {
        DmaBuf::new(PhysAddr(0), 0);
    }

    #[test]
    fn profile_marks() {
        let p = ProtectionProfile {
            name: "copy",
            uses_iommu: true,
            sub_page: true,
            no_vulnerability_window: true,
        };
        assert_eq!(p.marks(), ('+', '+', '+'));
    }

    #[test]
    fn error_display() {
        let e = DmaError::BadUnmap(Iova(0x1000));
        assert!(e.to_string().contains("0x1000"));
        assert_eq!(DmaError::IovaExhausted.to_string(), "IOVA space exhausted");
    }
}
