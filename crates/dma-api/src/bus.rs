//! The device-side view of memory: how device models issue DMAs.

use crate::observe::BusObserver;
use iommu::{DeviceId, DmaFault, Iommu, Iova};
use memsim::{MemError, PhysAddr, PhysMemory};
use std::fmt;
use std::sync::Arc;

/// Errors a device sees on a DMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusError {
    /// The IOMMU blocked the access.
    Fault(DmaFault),
    /// The access reached memory but the target is not backed (possible
    /// only with the IOMMU disabled, when devices reach raw physical
    /// addresses).
    Mem(MemError),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Fault(e) => write!(f, "{e}"),
            BusError::Mem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BusError {}

/// The path from a device to memory.
///
/// With the IOMMU enabled, every device access is translated and checked;
/// with it disabled (the paper's *no-iommu* baseline) devices reach raw
/// physical memory — any allocated frame, including other processes' data.
#[derive(Debug, Clone)]
pub enum Bus {
    /// IOMMU disabled: device addresses are physical addresses.
    Direct(Arc<PhysMemory>),
    /// IOMMU enabled: device addresses are IOVAs.
    Iommu {
        /// The IOMMU performing translation.
        mmu: Arc<Iommu>,
        /// The memory behind it.
        mem: Arc<PhysMemory>,
    },
    /// A bus whose traffic is reported to a [`BusObserver`] (the DMA
    /// sanitizer). The observer sees every access *after* the inner bus
    /// decided it, so it can layer the DMA-API-contract check on top of
    /// the hardware verdict.
    Observed {
        /// The bus actually performing the access.
        inner: Box<Bus>,
        /// Receives every access with the inner bus's verdict.
        observer: Arc<dyn BusObserver>,
    },
}

impl Bus {
    /// Wraps this bus so every device access is reported to `observer`.
    pub fn observed(self, observer: Arc<dyn BusObserver>) -> Bus {
        Bus::Observed {
            inner: Box::new(self),
            observer,
        }
    }

    /// The underlying physical memory.
    pub fn mem(&self) -> &Arc<PhysMemory> {
        match self {
            Bus::Direct(mem) => mem,
            Bus::Iommu { mem, .. } => mem,
            Bus::Observed { inner, .. } => inner.mem(),
        }
    }

    /// Whether an IOMMU sits between devices and memory.
    pub fn protected(&self) -> bool {
        match self {
            Bus::Direct(_) => false,
            Bus::Iommu { .. } => true,
            Bus::Observed { inner, .. } => inner.protected(),
        }
    }

    /// Device read (`addr` is an IOVA when protected, else physical).
    pub fn read(&self, dev: DeviceId, addr: u64, buf: &mut [u8]) -> Result<(), BusError> {
        match self {
            Bus::Direct(mem) => mem.read(PhysAddr(addr), buf).map_err(BusError::Mem),
            Bus::Iommu { mmu, mem } => mmu
                .dma_read(mem, dev, Iova::new(addr), buf)
                .map_err(BusError::Fault),
            Bus::Observed { inner, observer } => {
                let r = inner.read(dev, addr, buf);
                observer.on_device_access(dev, addr, buf.len(), false, r.is_ok());
                r
            }
        }
    }

    /// Device write (`addr` is an IOVA when protected, else physical).
    pub fn write(&self, dev: DeviceId, addr: u64, data: &[u8]) -> Result<(), BusError> {
        match self {
            Bus::Direct(mem) => mem.write(PhysAddr(addr), data).map_err(BusError::Mem),
            Bus::Iommu { mmu, mem } => mmu
                .dma_write(mem, dev, Iova::new(addr), data)
                .map_err(BusError::Fault),
            Bus::Observed { inner, observer } => {
                let r = inner.write(dev, addr, data);
                observer.on_device_access(dev, addr, data.len(), true, r.is_ok());
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iommu::{IovaPage, Perms};
    use memsim::{NumaDomain, NumaTopology};
    use simcore::{CoreCtx, CoreId, CostModel};

    const DEV: DeviceId = DeviceId(0);

    #[test]
    fn direct_bus_reaches_any_allocated_frame() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(8)));
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mem.write(pfn.base(), b"secrets").unwrap();
        let bus = Bus::Direct(mem);
        assert!(!bus.protected());
        let mut buf = [0u8; 7];
        bus.read(DEV, pfn.base().get(), &mut buf).unwrap();
        assert_eq!(&buf, b"secrets");
    }

    #[test]
    fn direct_bus_unallocated_errors() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(8)));
        let bus = Bus::Direct(mem);
        let mut buf = [0u8; 4];
        assert!(matches!(
            bus.read(DEV, 0, &mut buf),
            Err(BusError::Mem(MemError::Unallocated(_)))
        ));
    }

    #[test]
    fn iommu_bus_translates_and_blocks() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(8)));
        let mmu = Arc::new(Iommu::new());
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mmu.map_page(&mut ctx, DEV, IovaPage(0x10), pfn, Perms::ReadWrite)
            .unwrap();
        let bus = Bus::Iommu {
            mmu,
            mem: mem.clone(),
        };
        assert!(bus.protected());
        bus.write(DEV, IovaPage(0x10).base().get(), b"via iommu")
            .unwrap();
        assert_eq!(mem.read_vec(pfn.base(), 9).unwrap(), b"via iommu");
        // Unmapped IOVA faults.
        assert!(matches!(
            bus.write(DEV, 0x9999_0000, b"x"),
            Err(BusError::Fault(_))
        ));
        // Raw physical address of the frame is NOT reachable as an IOVA.
        assert!(bus.write(DEV, pfn.base().get(), b"x").is_err());
    }
}
