//! The acceptance-criteria proofs: DMA shadowing survives exhaustive
//! bounded exploration; strict engines show no vulnerability window;
//! deferred engines produce the window counterexample.

use modelcheck::{explore, Config, Strategy};

#[test]
fn copy_is_proved_safe_within_bounds() {
    // 2 mappers × 1 device, preemption bound 3: the acceptance floor.
    let cfg = Config::new(Strategy::Copy);
    assert!(cfg.mappers >= 2 && cfg.preemption_bound >= 3);
    let r = explore(&cfg);
    assert!(r.panics.is_empty(), "worker panics: {:?}", r.panics);
    assert!(
        r.exhausted,
        "bounded space not fully explored ({} runs, {} choice points)",
        r.runs, r.choice_points
    );
    assert!(
        !r.found_window && !r.found_subpage,
        "DMA shadowing violated the protection invariant: {:?} {:?}",
        r.window_example.as_ref().map(|c| &c.detail),
        r.subpage_example.as_ref().map(|c| &c.detail),
    );
    assert!(
        r.runs > 100,
        "exploration suspiciously small ({} runs) — yield points lost?",
        r.runs
    );
}

#[test]
fn strict_engines_have_no_window_within_bounds() {
    for strategy in [Strategy::LinuxStrict, Strategy::IdentityStrict] {
        let r = explore(&Config::new(strategy));
        assert!(r.panics.is_empty(), "{strategy}: panics: {:?}", r.panics);
        assert!(r.exhausted, "{strategy}: space not fully explored");
        assert!(
            !r.found_window,
            "{strategy}: strict invalidation left a window: {:?}",
            r.window_example.as_ref().map(|c| &c.detail)
        );
        // Page-granularity exposure is expected — and must be witnessed,
        // otherwise the oracle's probes have regressed.
        assert!(r.found_subpage, "{strategy}: sub-page exposure not found");
        assert!(
            r.unexpected.is_none(),
            "{strategy}: violation contradicts the engine's profile"
        );
    }
}

#[test]
fn deferred_engine_yields_window_counterexample() {
    let mut cfg = Config::new(Strategy::LinuxDeferred);
    cfg.stop_at_first_window = true;
    let r = explore(&cfg);
    assert!(r.panics.is_empty(), "panics: {:?}", r.panics);
    assert!(r.found_window, "deferred invalidation window not found");
    let cx = r.window_example.expect("counterexample recorded");
    assert_eq!(cx.kind, "window");
    assert_eq!(cx.strategy, "linux-deferred");
    assert!(!cx.schedule.is_empty(), "counterexample has a schedule");
    assert!(!cx.trace.is_empty(), "counterexample carries its trace");
}

#[test]
fn preemption_bound_zero_serializes_threads() {
    // Bound 0 admits only thread-completion orders: with 3 threads that
    // is at most 3! = 6 schedules (fewer when a thread has already
    // finished before a switch point).
    let mut cfg = Config::new(Strategy::LinuxStrict);
    cfg.preemption_bound = 0;
    cfg.dpor = false;
    let r = explore(&cfg);
    assert!(r.exhausted);
    assert!(r.runs <= 6, "bound 0 exploded: {} runs", r.runs);
    assert!(!r.found_window);
}

#[test]
fn dpor_prunes_without_changing_verdicts() {
    let mut plain = Config::new(Strategy::LinuxDeferred);
    plain.dpor = false;
    let mut pruned = Config::new(Strategy::LinuxDeferred);
    pruned.dpor = true;
    let rp = explore(&plain);
    let rq = explore(&pruned);
    assert_eq!(rp.found_window, rq.found_window);
    assert_eq!(rp.found_subpage, rq.found_subpage);
    assert!(
        rq.runs <= rp.runs,
        "sleep sets must not enlarge the explored space ({} vs {})",
        rq.runs,
        rp.runs
    );
}
