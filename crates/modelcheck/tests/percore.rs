//! Model-checking the per-core (magazine) configuration.
//!
//! The scaling sweep buys its throughput by sharding hot allocation state:
//! pool magazines, a per-core IOVA allocator, and per-core pending rings
//! in front of the invalidation queue. These tests pin down what that does
//! to the *protection* story:
//!
//! - DMA shadowing (`copy`) stays provably safe — magazines repartition
//!   permanently-mapped shadow slots, they never change what the device
//!   can reach;
//! - batching the invalidation queue reopens a **bounded** §2.2.1 window
//!   for engines whose no-window claim rests on synchronous page
//!   invalidation, and the checker exhibits it as a concrete schedule.

use modelcheck::{explore, Config, Strategy};

fn percore_cfg(strategy: Strategy) -> Config {
    let mut cfg = Config::new(strategy);
    cfg.percore = true;
    cfg
}

#[test]
fn percore_copy_is_still_provably_safe() {
    // The copy proof must survive the magazine layer: same bounded space,
    // zero violations, despite the extra magazine-lock preemption points.
    let r = explore(&percore_cfg(Strategy::Copy));
    assert!(r.exhausted, "bounded space not fully explored");
    assert!(!r.found_window, "copy+magazines must have no window");
    assert!(!r.found_subpage, "copy+magazines must protect sub-page");
    assert!(r.unexpected.is_none(), "{:?}", r.unexpected);
    assert!(r.panics.is_empty(), "worker panics: {:?}", r.panics);
}

#[test]
fn percore_batching_reopens_a_bounded_window_for_strict() {
    // Under batching, a "strict" unmap parks its invalidation in the
    // calling core's pending ring — until the drain the stale IOTLB entry
    // is live. The checker must find that window as a concrete schedule,
    // and the rig must expect it (no `unexpected` checker failure).
    let mut cfg = percore_cfg(Strategy::LinuxStrict);
    cfg.stop_at_first_window = true;
    let r = explore(&cfg);
    assert!(
        r.found_window,
        "per-core batching must open the bounded deferred window"
    );
    assert!(
        r.window_example.is_some(),
        "window violation needs a counterexample schedule"
    );
    assert!(
        r.unexpected.is_none(),
        "the bounded window is expected under batching: {:?}",
        r.unexpected
    );
}

#[test]
fn global_strict_remains_window_free_under_the_same_bounds() {
    // The control: the exact configuration that shows the window above,
    // minus `percore`, proves no window exists. The regression is the
    // batching, not the checker.
    let r = explore(&Config::new(Strategy::LinuxStrict));
    assert!(r.exhausted, "bounded space not fully explored");
    assert!(!r.found_window, "global strict must stay window-free");
    assert!(r.unexpected.is_none(), "{:?}", r.unexpected);
}
