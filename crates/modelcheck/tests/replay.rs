//! The committed deferred-invalidation counterexample must keep
//! reproducing: CI replays the fixture schedule step by step and checks
//! the window violation re-occurs — and that divergence (code drift under
//! an unchanged fixture) is detected, not silently ignored.

// lint: allow(ambient-io) — reads the committed counterexample fixture

use modelcheck::{replay, Config, Counterexample, Step, Strategy, ViolationClass};
use obs::Json;

fn load_fixture() -> Counterexample {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/deferred_counterexample.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} (regenerate with mc-suite --write-fixture): {e}",
            path.display()
        )
    });
    Counterexample::from_json(&Json::parse(&text).expect("fixture parses")).expect("fixture layout")
}

#[test]
fn committed_counterexample_reproduces_window_violation() {
    let cx = load_fixture();
    assert_eq!(cx.kind, "window", "fixture must witness the window");
    let strategy = Strategy::from_name(&cx.strategy).expect("fixture strategy exists");
    assert!(
        strategy.is_deferred(),
        "the window belongs to deferred engines"
    );
    let cfg = Config::new(strategy);
    let out = replay(&cfg, &cx.schedule).expect("fixture schedule replays without divergence");
    assert!(
        out.violations
            .iter()
            .any(|v| v.class == ViolationClass::Window),
        "fixture schedule no longer reproduces the stale-IOTLB window: {:?}",
        out.violations
    );
    assert!(out.panics.is_empty(), "replay panics: {:?}", out.panics);
}

#[test]
fn replay_detects_schedule_divergence() {
    let cx = load_fixture();
    let strategy = Strategy::from_name(&cx.strategy).expect("fixture strategy exists");
    let cfg = Config::new(strategy);
    // Corrupt one recorded label: replay must refuse, not misattribute.
    let mut bad: Vec<Step> = cx.schedule.clone();
    let step = bad.last_mut().expect("fixture has steps");
    step.label = "op:not-a-real-yield-point".into();
    let err = replay(&cfg, &bad).expect_err("diverged schedule must be rejected");
    assert!(
        err.contains("diverged"),
        "error should name the divergence: {err}"
    );
}
