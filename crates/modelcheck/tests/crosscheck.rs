//! Cross-check: on every single-threaded (preemption bound 0) trace the
//! explorer enumerates, the dmasan runtime sanitizer's verdicts must agree
//! with the model checker's effect-based oracle:
//!
//! - dmasan `StaleAccess` fires **iff** the oracle saw a granted device
//!   access outside any open window that actually reached OS bytes;
//! - dmasan `OobAccess` fires **iff** the oracle saw an open-window access
//!   escape the mapped byte range (never happens at bound 0, where the
//!   device only runs between complete mapper lifecycles — asserted).
//!
//! The one *designed* divergence is the copy engine: dmasan reasons about
//! addresses (a granted access to an unmapped IOVA is always stale), so it
//! flags the device's harmless hit on a recycled shadow slot — while the
//! effect oracle proves no OS byte was reached. The test pins that
//! over-approximation down: oracle clean, dmasan reports only
//! `StaleAccess`, and at least one such report exists (the gap is real).

use modelcheck::{explore, Config, Strategy};

fn crosscheck_config(strategy: Strategy) -> Config {
    let mut cfg = Config::new(strategy);
    cfg.preemption_bound = 0; // single-threaded traces only
    cfg.dpor = false; // enumerate every completion order
    cfg.with_san = true;
    cfg.collect_runs = true;
    cfg
}

#[test]
fn dmasan_agrees_with_oracle_on_serial_traces_of_zero_copy_engines() {
    for strategy in [
        Strategy::NoProtection,
        Strategy::LinuxStrict,
        Strategy::IdentityStrict,
        Strategy::LinuxDeferred,
        Strategy::IdentityDeferred,
    ] {
        let r = explore(&crosscheck_config(strategy));
        assert!(r.exhausted, "{strategy}: serial space not covered");
        assert!(r.panics.is_empty(), "{strategy}: panics: {:?}", r.panics);
        assert!(!r.run_summaries.is_empty(), "{strategy}: no runs collected");
        for (i, run) in r.run_summaries.iter().enumerate() {
            let closed_effect = run
                .accesses
                .iter()
                .any(|a| a.granted && !a.window_open && a.violation.is_some());
            let open_effect = run
                .accesses
                .iter()
                .any(|a| a.granted && a.window_open && a.violation.is_some());
            let san_stale = run.san_violations.iter().any(|k| k == "StaleAccess");
            let san_oob = run.san_violations.iter().any(|k| k == "OobAccess");
            assert_eq!(
                san_stale, closed_effect,
                "{strategy} run {i}: dmasan StaleAccess={san_stale} but oracle \
                 closed-window effect={closed_effect}\n  schedule: {:?}\n  accesses: {:?}\n  san: {:?}",
                run.schedule, run.accesses, run.san_violations
            );
            // At bound 0 the device only runs between complete mapper
            // lifecycles, so no open-window access can exist — and
            // therefore neither verdict may claim one.
            assert!(
                !open_effect && !san_oob,
                "{strategy} run {i}: open-window access on a serial trace \
                 (oracle={open_effect}, dmasan OobAccess={san_oob})"
            );
        }
        // The agreement must be exercised positively somewhere: the
        // no-IOMMU baseline grants stale accesses on serial traces.
        if strategy == Strategy::NoProtection {
            assert!(
                r.run_summaries
                    .iter()
                    .any(|run| run.san_violations.iter().any(|k| k == "StaleAccess")),
                "no-iommu serial traces produced no stale access — probes regressed"
            );
        }
    }
}

#[test]
fn dmasan_overapproximates_copy_and_oracle_refines_it() {
    let r = explore(&crosscheck_config(Strategy::Copy));
    assert!(r.exhausted && r.panics.is_empty());
    // Effect oracle: shadowing is clean on every serial trace.
    assert!(
        !r.found_window && !r.found_subpage,
        "copy violated the invariant on a serial trace"
    );
    let mut saw_stale = false;
    for run in &r.run_summaries {
        for kind in &run.san_violations {
            assert_eq!(
                kind, "StaleAccess",
                "copy: dmasan may only over-approximate via StaleAccess, got {kind}"
            );
            saw_stale = true;
        }
    }
    // The precision gap is real: the device's granted hit on a recycled
    // (still permanently-mapped) shadow slot is address-stale for dmasan
    // but effect-free for the oracle — the paper's §5.2 argument.
    assert!(
        saw_stale,
        "expected dmasan to flag the harmless stale shadow-slot access"
    );
}
