//! The schedule-controlled executor: one logical thread runs at a time.
//!
//! Worker threads (mappers, the device) hand control back to the explorer
//! at *yield points*: explicit operation boundaries in their scripts, and
//! every instrumented `LockAcquire` event (delivered through the [`obs`]
//! yield hook). Because all instrumented lock sites emit `LockAcquire`
//! *before* taking the underlying lock — and nothing in the stack yields
//! while holding a host lock — a parked worker never blocks another
//! worker, so the handoff can never deadlock.
//!
//! The executor is rebuilt for every run: bounded model checking here is
//! *stateless* (loom/Shuttle style) — each schedule is replayed against a
//! fresh stack, so no state snapshotting is needed.

use obs::{EventKind, Obs};
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Logical thread id: `0..mappers` are mapper threads, `mappers` is the
/// device thread.
pub type Tid = usize;

/// What a parked worker is about to do next — the information the
/// explorer's sleep-set pruning reasons about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YieldInfo {
    /// An explicit operation boundary in a harness script.
    Op(String),
    /// An instrumented lock-acquisition site (the lock's registered name),
    /// reached through the `obs` yield hook.
    Lock(String),
}

impl YieldInfo {
    /// Compact label used in schedules and counterexample fixtures.
    pub fn label(&self) -> String {
        match self {
            YieldInfo::Op(l) => format!("op:{l}"),
            YieldInfo::Lock(l) => format!("lock:{l}"),
        }
    }
}

/// A worker's scheduling state, as seen by the explorer at quiescence.
#[derive(Debug, Clone)]
pub enum ThreadView {
    /// Parked at a yield point, waiting for a grant.
    Parked(YieldInfo),
    /// Script ran to completion.
    Finished,
    /// Script panicked (message captured).
    Panicked(String),
}

#[derive(Debug, Clone)]
enum Status {
    Running,
    Parked(YieldInfo),
    Finished,
    Panicked(String),
}

#[derive(Debug)]
struct ExecState {
    granted: Option<Tid>,
    status: Vec<Status>,
}

/// The condvar-handoff scheduler shared by the explorer and its workers.
#[derive(Debug)]
pub struct Executor {
    state: Mutex<ExecState>,
    worker_cv: Condvar,
    explorer_cv: Condvar,
}

thread_local! {
    /// The executor + tid of the worker running on this host thread, if
    /// any. The `obs` yield hook consults this so lock events on
    /// non-worker threads (rig setup, other tests) are ignored.
    static CURRENT: RefCell<Option<(Arc<Executor>, Tid)>> = const { RefCell::new(None) };
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Executor {
    /// Creates an executor for `threads` workers, all initially unparked.
    pub fn new(threads: usize) -> Arc<Self> {
        Arc::new(Executor {
            state: Mutex::new(ExecState {
                granted: None,
                status: vec![Status::Running; threads],
            }),
            worker_cv: Condvar::new(),
            explorer_cv: Condvar::new(),
        })
    }

    /// Installs the schedule-interception hook on `obs`: every instrumented
    /// `LockAcquire` recorded from a registered worker thread becomes a
    /// preemption point. Also enables detail events, which gate the lockset
    /// instrumentation the hook feeds on.
    pub fn install_hook(obs: &Obs) {
        obs.set_detail_enabled(true);
        obs.set_yield_hook(Some(Arc::new(|kind: &EventKind| {
            if let EventKind::LockAcquire { lock } = kind {
                let cur = CURRENT.with(|c| c.borrow().clone());
                if let Some((exec, tid)) = cur {
                    exec.yield_now(tid, YieldInfo::Lock(lock.to_string()));
                }
            }
        })));
    }

    /// Runs `body` as worker `tid`: registers the thread, parks at the
    /// initial `op:start` yield point, and reports completion or panic.
    pub fn run_worker(self: &Arc<Self>, tid: Tid, body: impl FnOnce()) {
        CURRENT.with(|c| *c.borrow_mut() = Some((self.clone(), tid)));
        self.yield_now(tid, YieldInfo::Op("start".into()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        CURRENT.with(|c| *c.borrow_mut() = None);
        match result {
            Ok(()) => self.finish(tid),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "worker panicked".into());
                self.panicked(tid, msg);
            }
        }
    }

    /// Worker-side explicit operation-boundary yield (between script ops).
    /// A no-op when called from a thread that is not a registered worker.
    pub fn op_yield(label: &str) {
        let cur = CURRENT.with(|c| c.borrow().clone());
        if let Some((exec, tid)) = cur {
            exec.yield_now(tid, YieldInfo::Op(label.to_string()));
        }
    }

    /// Parks the calling worker at a yield point until granted.
    fn yield_now(&self, tid: Tid, info: YieldInfo) {
        let mut st = lock_ignore_poison(&self.state);
        st.status[tid] = Status::Parked(info);
        if st.granted == Some(tid) {
            st.granted = None;
        }
        self.explorer_cv.notify_all();
        while st.granted != Some(tid) {
            st = self.worker_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.status[tid] = Status::Running;
    }

    fn finish(&self, tid: Tid) {
        let mut st = lock_ignore_poison(&self.state);
        st.status[tid] = Status::Finished;
        if st.granted == Some(tid) {
            st.granted = None;
        }
        self.explorer_cv.notify_all();
    }

    fn panicked(&self, tid: Tid, msg: String) {
        let mut st = lock_ignore_poison(&self.state);
        st.status[tid] = Status::Panicked(msg);
        if st.granted == Some(tid) {
            st.granted = None;
        }
        self.explorer_cv.notify_all();
    }

    /// Explorer-side: waits until no worker is running and none holds a
    /// grant, then returns every worker's state.
    pub fn wait_quiescent(&self) -> Vec<ThreadView> {
        let mut st = lock_ignore_poison(&self.state);
        loop {
            let quiet =
                st.granted.is_none() && !st.status.iter().any(|s| matches!(s, Status::Running));
            if quiet {
                return st
                    .status
                    .iter()
                    .map(|s| match s {
                        Status::Parked(i) => ThreadView::Parked(i.clone()),
                        Status::Finished => ThreadView::Finished,
                        Status::Panicked(m) => ThreadView::Panicked(m.clone()),
                        Status::Running => unreachable!("running at quiescence"),
                    })
                    .collect();
            }
            st = self.explorer_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Explorer-side: grants the next step to `tid` (which must be parked)
    /// and waits for the system to go quiescent again.
    pub fn step(&self, tid: Tid) -> Vec<ThreadView> {
        {
            let mut st = lock_ignore_poison(&self.state);
            assert!(
                matches!(st.status[tid], Status::Parked(_)),
                "granted thread {tid} is not parked"
            );
            st.granted = Some(tid);
            self.worker_cv.notify_all();
        }
        self.wait_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handoff_serializes_two_workers() {
        let exec = Executor::new(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for tid in 0..2usize {
            let exec = exec.clone();
            let log = log.clone();
            handles.push(thread::spawn(move || {
                exec.run_worker(tid, || {
                    log.lock().unwrap().push((tid, 0));
                    Executor::op_yield("mid");
                    log.lock().unwrap().push((tid, 1));
                });
            }));
        }
        let view = exec.wait_quiescent();
        assert!(matches!(view[0], ThreadView::Parked(YieldInfo::Op(ref l)) if l == "start"));
        // Run thread 1 fully, then thread 0 fully.
        exec.step(1);
        exec.step(1);
        exec.step(0);
        let view = exec.step(0);
        assert!(matches!(view[0], ThreadView::Finished));
        assert!(matches!(view[1], ThreadView::Finished));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*log.lock().unwrap(), vec![(1, 0), (1, 1), (0, 0), (0, 1)]);
    }

    #[test]
    fn worker_panic_is_captured() {
        let exec = Executor::new(1);
        let exec2 = exec.clone();
        let h = thread::spawn(move || {
            exec2.run_worker(0, || panic!("boom"));
        });
        exec.wait_quiescent();
        let view = exec.step(0);
        assert!(matches!(view[0], ThreadView::Panicked(ref m) if m.contains("boom")));
        h.join().unwrap();
    }
}
