//! Bounded model checker for the DMA protection invariants.
//!
//! Explores **all interleavings** (within bounds) of N mapper threads and
//! one device thread driving a real `dma-api` engine instance, checking
//! every schedule against the paper's Table 1 invariant: *a device access
//! may affect or observe an OS byte B only while B is inside a currently
//! mapped window for that device*.
//!
//! The moving parts:
//!
//! - [`exec`]: a schedule-controlled executor. Worker threads yield at
//!   explicit operation boundaries and at every instrumented
//!   `LockAcquire` (the same sites the dmasan lockset detector feeds on,
//!   intercepted via the [`obs`] yield hook), so the explorer decides
//!   every context switch.
//! - [`rig`]: the checked configuration — memory, IOMMU, one engine, one
//!   window lifecycle per mapper, a probing device.
//! - [`oracle`]: the sentinel-based invariant checker (pre-fill, page-tail
//!   secret, post-unmap reuse magic).
//! - [`explore`]: stateless DFS over schedules with a preemption bound,
//!   sleep-set (conservative DPOR) pruning, and deterministic caps.
//! - [`counterexample`]: machine-readable violating schedules, committed
//!   as fixtures and replayed by CI.
//!
//! Within its bounds the checker *proves* DMA shadowing (`copy`) safe —
//! zero violations across the exhaustively-explored space — and *finds*
//! the deferred-invalidation vulnerability window (§2.2.1) as a concrete,
//! replayable schedule.
#![forbid(unsafe_code)]

pub mod counterexample;
pub mod exec;
pub mod explore;
pub mod oracle;
pub mod rig;

pub use counterexample::{Counterexample, Step};
pub use exec::{Executor, ThreadView, Tid, YieldInfo};
pub use explore::{explore, replay, Config, Report, RunOutcome, RunSummary};
pub use oracle::{Board, ViolationClass, ViolationReport, WinState};
pub use rig::{Rig, Strategy, MC_DEV, MC_PERCORE_BATCH};
