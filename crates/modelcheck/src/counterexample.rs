//! Machine-readable counterexamples: a schedule that reproduces an
//! invariant violation, plus the formatted cause-chain trace of the run
//! that found it.
//!
//! Counterexamples serialize to JSON (via the in-tree [`obs::Json`]) so
//! the deferred-invalidation witness can be committed as a fixture and
//! replayed by tests and CI.

use crate::oracle::{ViolationClass, ViolationReport};
use obs::{Event, Json};

/// One scheduling decision: grant `tid`, which was parked at `label`
/// (a [`crate::exec::YieldInfo::label`] string). Labels are stored so a
/// replay can detect when the code under test diverged from the fixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The logical thread granted the step.
    pub tid: usize,
    /// The yield-point label the thread was parked at when granted.
    pub label: String,
}

/// A violating schedule with its evidence.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Strategy name ([`crate::Strategy::name`]).
    pub strategy: String,
    /// `"window"` or `"subpage"`.
    pub kind: String,
    /// The scheduling decisions, in order.
    pub schedule: Vec<Step>,
    /// The oracle's description of the violation.
    pub detail: String,
    /// Formatted telemetry trace of the violating run (cause chains
    /// included via event seq back-references).
    pub trace: Vec<String>,
}

impl Counterexample {
    /// Builds a counterexample from a finished run's evidence.
    pub fn new(
        strategy: &str,
        violation: &ViolationReport,
        schedule: &[Step],
        events: &[Event],
    ) -> Counterexample {
        Counterexample {
            strategy: strategy.to_string(),
            kind: match violation.class {
                ViolationClass::Window => "window".to_string(),
                ViolationClass::Subpage => "subpage".to_string(),
            },
            schedule: schedule.to_vec(),
            detail: violation.detail.clone(),
            trace: format_trace(events),
        }
    }

    /// Serializes to the fixture JSON layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("strategy".into(), Json::Str(self.strategy.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            (
                "schedule".into(),
                Json::Arr(
                    self.schedule
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("tid".into(), Json::UInt(s.tid as u64)),
                                ("label".into(), Json::Str(s.label.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("detail".into(), Json::Str(self.detail.clone())),
            (
                "trace".into(),
                Json::Arr(self.trace.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
        ])
    }

    /// Parses the fixture JSON layout.
    pub fn from_json(j: &Json) -> Result<Counterexample, String> {
        let strategy = j
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or("missing strategy")?
            .to_string();
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing kind")?
            .to_string();
        let Some(Json::Arr(steps)) = j.get("schedule") else {
            return Err("missing schedule".into());
        };
        let mut schedule = Vec::new();
        for s in steps {
            let tid = s
                .get("tid")
                .and_then(Json::as_u64)
                .ok_or("step missing tid")? as usize;
            let label = s
                .get("label")
                .and_then(Json::as_str)
                .ok_or("step missing label")?
                .to_string();
            schedule.push(Step { tid, label });
        }
        let detail = j
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let trace = match j.get("trace") {
            Some(Json::Arr(lines)) => lines
                .iter()
                .filter_map(|l| l.as_str().map(str::to_string))
                .collect(),
            _ => Vec::new(),
        };
        Ok(Counterexample {
            strategy,
            kind,
            schedule,
            detail,
            trace,
        })
    }

    /// Renders the counterexample for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "counterexample [{}]: {} violation\n  {}\n  schedule ({} steps):\n",
            self.strategy,
            self.kind,
            self.detail,
            self.schedule.len()
        ));
        for (i, s) in self.schedule.iter().enumerate() {
            out.push_str(&format!("    {i:>3}. t{} @ {}\n", s.tid, s.label));
        }
        out.push_str(&format!("  trace ({} events):\n", self.trace.len()));
        for l in &self.trace {
            out.push_str(&format!("    {l}\n"));
        }
        out
    }
}

/// Formats telemetry events as `#seq [cycles] coreN kind (cause #seq)`
/// lines — the cause back-references let a reader walk the chain from the
/// stale device access back to the `DmaUnmap` that should have fenced it.
pub fn format_trace(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| format!("#{} {} :: {:?}", e.seq, e, e.kind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ViolationClass;

    #[test]
    fn json_roundtrip_preserves_schedule() {
        let cx = Counterexample {
            strategy: "linux-deferred".into(),
            kind: "window".into(),
            schedule: vec![
                Step {
                    tid: 0,
                    label: "op:start".into(),
                },
                Step {
                    tid: 2,
                    label: "lock:iommu-invalidation-queue".into(),
                },
            ],
            detail: "stale write".into(),
            trace: vec!["#1 ...".into()],
        };
        let j = cx.to_json();
        let back = Counterexample::from_json(&Json::parse(&j.encode()).unwrap()).unwrap();
        assert_eq!(back.schedule, cx.schedule);
        assert_eq!(back.kind, "window");
        assert_eq!(back.strategy, "linux-deferred");
        assert_eq!(back.trace.len(), 1);
    }

    #[test]
    fn violation_class_maps_to_kind() {
        let v = ViolationReport {
            class: ViolationClass::Window,
            mapper: 0,
            probe: "p".into(),
            window_open: false,
            detail: "d".into(),
        };
        let cx = Counterexample::new("defer", &v, &[], &[]);
        assert_eq!(cx.kind, "window");
    }
}
