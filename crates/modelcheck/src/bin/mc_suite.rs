//! The CI model-checking suite: runs the bounded explorer over every
//! protection strategy and asserts the paper's Table 1 verdicts.
//!
//! - `copy` (DMA shadowing) must survive **exhaustive** bounded
//!   exploration with zero violations — the "proved safe within bounds"
//!   claim.
//! - The strict zero-copy engines must show **no window** violations
//!   (their sub-page exposure is expected: page-granularity mapping).
//! - The deferred engines must **produce the window counterexample** —
//!   the §2.2.1 vulnerability window as a concrete schedule.
//!
//! The time budget is deterministic (run/choice-point caps, never wall
//! clock), so CI verdicts are reproducible on any machine.
//!
//! Exit codes: 0 = all verdicts hold, 1 = a verdict failed,
//! 2 = usage/IO error.

// lint: allow(ambient-io) — reads/writes the committed counterexample fixture and prints the report

use modelcheck::{explore, Config, Counterexample, Report, Strategy};
use obs::Json;
use std::process::ExitCode;

/// The committed deferred-invalidation witness.
fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/deferred_counterexample.json")
}

/// Deterministic exploration budget shared by every strategy.
fn budget(cfg: &mut Config) {
    cfg.max_runs = 60_000;
    cfg.max_choice_points = 120_000;
}

fn line(report: &Report) {
    println!(
        "  {:<18} runs={:<6} choice_points={:<7} pruned={:<5} exhausted={} window={} subpage={}",
        report.strategy.name(),
        report.runs,
        report.choice_points,
        report.sleep_skips,
        report.exhausted,
        report.found_window,
        report.found_subpage,
    );
}

fn check(failures: &mut Vec<String>, ok: bool, what: &str) {
    if !ok {
        failures.push(what.to_string());
        println!("  FAIL: {what}");
    }
}

fn common_checks(failures: &mut Vec<String>, r: &Report) {
    let s = r.strategy.name();
    check(
        failures,
        r.panics.is_empty(),
        &format!(
            "{s}: worker panic under exploration: {}",
            r.panics.first().map(|(_, m)| m.as_str()).unwrap_or("")
        ),
    );
    check(
        failures,
        r.unexpected.is_none(),
        &format!(
            "{s}: violation contradicts the engine's protection profile: {}",
            r.unexpected
                .as_ref()
                .map(|c| c.detail.as_str())
                .unwrap_or("")
        ),
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write_fixture = false;
    for a in &args {
        match a.as_str() {
            "--write-fixture" => write_fixture = true,
            "--help" | "-h" => {
                println!(
                    "mc-suite: bounded model-checking CI gate\n\
                     \n\
                     USAGE: mc-suite [--write-fixture]\n\
                     \n\
                     --write-fixture  regenerate fixtures/deferred_counterexample.json\n\
                     \n\
                     exit 0 = all Table 1 verdicts hold; 1 = verdict failed; 2 = usage/IO"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mc-suite: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut failures = Vec::new();

    // 1. The tentpole proof: DMA shadowing survives exhaustive bounded
    //    exploration with zero violations.
    println!("[1/4] copy (DMA shadowing): exhaustive bounded exploration");
    let mut cfg = Config::new(Strategy::Copy);
    budget(&mut cfg);
    let r = explore(&cfg);
    line(&r);
    common_checks(&mut failures, &r);
    check(
        &mut failures,
        r.exhausted,
        "copy: budget exhausted before the bounded space was covered (raise caps)",
    );
    check(
        &mut failures,
        !r.found_window && !r.found_subpage,
        "copy: protection violation found — shadowing must be byte-granular and window-free",
    );

    // 2. Strict zero-copy engines: no window, sub-page exposure expected.
    println!("[2/4] strict engines: no vulnerability window within bounds");
    for strategy in [
        Strategy::IdentityStrict,
        Strategy::LinuxStrict,
        Strategy::EiovarStrict,
        Strategy::SelfInval,
    ] {
        let mut cfg = Config::new(strategy);
        budget(&mut cfg);
        let r = explore(&cfg);
        line(&r);
        common_checks(&mut failures, &r);
        check(
            &mut failures,
            !r.found_window,
            &format!("{strategy}: window violation — strict invalidation must close it"),
        );
        check(
            &mut failures,
            r.exhausted,
            &format!("{strategy}: budget exhausted before the bounded space was covered"),
        );
        check(
            &mut failures,
            r.found_subpage,
            &format!(
                "{strategy}: page-granularity sub-page exposure not demonstrated \
                 (oracle or probes regressed)"
            ),
        );
    }

    // 3. Deferred engines: the §2.2.1 window must be found as a concrete
    //    counterexample schedule.
    println!("[3/4] deferred engines: vulnerability window counterexample");
    let mut linux_deferred_cx: Option<Counterexample> = None;
    for strategy in [
        Strategy::IdentityDeferred,
        Strategy::LinuxDeferred,
        Strategy::EiovarDeferred,
        Strategy::NoProtection,
    ] {
        let mut cfg = Config::new(strategy);
        budget(&mut cfg);
        cfg.stop_at_first_window = true;
        let r = explore(&cfg);
        line(&r);
        common_checks(&mut failures, &r);
        check(
            &mut failures,
            r.found_window,
            &format!("{strategy}: deferred invalidation window not found"),
        );
        if strategy == Strategy::LinuxDeferred {
            linux_deferred_cx = r.window_example;
        }
    }
    if let Some(cx) = &linux_deferred_cx {
        println!("{}", cx.render());
    }

    // 4. The committed fixture: regenerate or replay.
    let path = fixture_path();
    if write_fixture {
        println!("[4/4] writing {}", path.display());
        let Some(cx) = &linux_deferred_cx else {
            eprintln!("mc-suite: no linux-deferred counterexample to write");
            return ExitCode::from(2);
        };
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("mc-suite: create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, cx.to_json().encode() + "\n") {
            eprintln!("mc-suite: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    } else {
        println!("[4/4] replaying {}", path.display());
        match std::fs::read_to_string(&path) {
            Ok(text) => match Json::parse(&text).and_then(|j| Counterexample::from_json(&j)) {
                Ok(cx) => {
                    let strategy = Strategy::from_name(&cx.strategy);
                    match strategy {
                        Some(strategy) => {
                            let cfg = Config::new(strategy);
                            match modelcheck::replay(&cfg, &cx.schedule) {
                                Ok(out) => check(
                                    &mut failures,
                                    out.violations
                                        .iter()
                                        .any(|v| v.class == modelcheck::ViolationClass::Window),
                                    "fixture replay: window violation did not reproduce",
                                ),
                                Err(why) => {
                                    check(&mut failures, false, &format!("fixture replay: {why}"))
                                }
                            }
                        }
                        None => check(
                            &mut failures,
                            false,
                            &format!("fixture names unknown strategy `{}`", cx.strategy),
                        ),
                    }
                }
                Err(e) => {
                    eprintln!("mc-suite: parse {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "mc-suite: read {}: {e} (generate it with --write-fixture)",
                    path.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    if failures.is_empty() {
        println!("mc-suite: all Table 1 verdicts hold");
        ExitCode::SUCCESS
    } else {
        println!("mc-suite: {} verdict(s) failed", failures.len());
        ExitCode::FAILURE
    }
}
