//! The model-checked configuration: N mapper threads × 1 device thread
//! driving one DMA engine instance.
//!
//! Every mapper performs one `dma_map` → publish → `dma_unmap` → OS-reuse
//! cycle over its own page; the device thread probes each mapper's window
//! twice (the first probe warms the IOTLB — stale-entry attacks need the
//! translation cached — the second is the one that lands stale under
//! deferred invalidation). The [`crate::oracle`] classifies every device
//! effect against the published window lifecycle.

// lint: allow(panic) — harness scripts assert rig invariants; a panic is a checker bug surfaced to the explorer

use crate::exec::Executor;
use crate::oracle::{self, AccessRecord, Board, WinState, BUF_LEN, TAIL_OFF};
use dma_api::{
    Bus, BusObserver, DmaBuf, DmaDirection, DmaEngine, DmaObserver, IdentityDma, LinuxDma, NoIommu,
    ProtectionProfile, SelfInvalidatingDma, TracedDma,
};
use dmasan::DmaSan;
use iommu::{DeviceId, Iommu};
use memsim::{NumaTopology, PhysMemory};
use obs::Obs;
use shadow_core::{MagazineConfig, PoolConfig, ShadowDma};
use simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::fmt;
use std::sync::Arc;

/// The device id every model-checked engine instance manages.
pub const MC_DEV: DeviceId = DeviceId(7);

/// Bytes the device reads per probe: covers the mapped buffer *and* the
/// page-tail secret at [`TAIL_OFF`], so a single read can demonstrate both
/// the sub-page and the stale-window exposure.
pub const PROBE_READ_LEN: usize = TAIL_OFF + 16;

/// Pending-ring batch threshold for per-core rigs. Deliberately larger
/// than the page count any bounded script posts (one page per mapper), so
/// nothing drains mid-schedule and the bounded §2.2.1 window that per-core
/// batching opens stays visible to the probing device.
pub const MC_PERCORE_BATCH: usize = 4;

/// The protection strategies the checker explores — the paper's Table 1
/// set plus the no-IOMMU baseline and the self-invalidating ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// IOMMU bypassed entirely (worst case; window + sub-page exposure).
    NoProtection,
    /// DMA shadowing via the permanently-mapped shadow pool (*copy*).
    Copy,
    /// Strict identity mappings (*identity+*).
    IdentityStrict,
    /// Deferred identity mappings (*identity−*).
    IdentityDeferred,
    /// Stock Linux IOVA allocator, strict invalidation (*strict*).
    LinuxStrict,
    /// Stock Linux IOVA allocator, deferred invalidation (*defer*).
    LinuxDeferred,
    /// EiovaR range-cached allocator, strict (*eiovar+*).
    EiovarStrict,
    /// EiovaR range-cached allocator, deferred (*eiovar−*).
    EiovarDeferred,
    /// Self-invalidating IOMMU hardware ablation.
    SelfInval,
}

impl Strategy {
    /// Every strategy, in checking order.
    pub const ALL: [Strategy; 9] = [
        Strategy::Copy,
        Strategy::IdentityStrict,
        Strategy::LinuxStrict,
        Strategy::EiovarStrict,
        Strategy::SelfInval,
        Strategy::IdentityDeferred,
        Strategy::LinuxDeferred,
        Strategy::EiovarDeferred,
        Strategy::NoProtection,
    ];

    /// Short machine-readable name (used in fixtures and reports).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::NoProtection => "no-iommu",
            Strategy::Copy => "copy",
            Strategy::IdentityStrict => "identity-strict",
            Strategy::IdentityDeferred => "identity-deferred",
            Strategy::LinuxStrict => "linux-strict",
            Strategy::LinuxDeferred => "linux-deferred",
            Strategy::EiovarStrict => "eiovar-strict",
            Strategy::EiovarDeferred => "eiovar-deferred",
            Strategy::SelfInval => "selfinval",
        }
    }

    /// Parses [`Strategy::name`] back (for fixtures and the CLI).
    pub fn from_name(s: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether the engine defers IOTLB invalidation (and therefore needs
    /// the extra `flush` script step and is *expected* to show the
    /// vulnerability window).
    pub fn is_deferred(self) -> bool {
        matches!(
            self,
            Strategy::IdentityDeferred | Strategy::LinuxDeferred | Strategy::EiovarDeferred
        )
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully-built model-checking configuration, fresh per run.
///
/// Deliberately leaner than `netsim::SimStack` (no NIC, no wire, no RNG):
/// the stack's `RefCell` RNG is not `Sync`, and the checker needs engines
/// shared across real host threads.
pub struct Rig {
    /// Telemetry (detail events on, sampling 1 — the executor's yield hook
    /// and the counterexample trace both feed on it).
    pub obs: Obs,
    /// Physical memory (tiny single-socket topology).
    pub mem: Arc<PhysMemory>,
    /// The IOMMU.
    pub mmu: Arc<Iommu>,
    /// The engine under test, shared by all worker threads.
    pub engine: Arc<dyn DmaEngine>,
    /// The device-side access path.
    pub bus: Arc<Bus>,
    /// The shared window/violation board.
    pub board: Arc<Board>,
    /// The DMA-API sanitizer, when cross-checking (always lenient — worker
    /// panics would abort schedules mid-flight).
    pub san: Option<Arc<DmaSan>>,
    /// The engine's Table 1 row, used to classify expected vs unexpected
    /// violations.
    pub profile: ProtectionProfile,
    /// Mapper thread count (thread ids `0..mappers`; the device is
    /// `mappers`).
    pub mappers: usize,
    /// Strategy this rig was built for.
    pub strategy: Strategy,
    /// Whether the rig was built with per-core allocation state (shadow
    /// pool magazines, per-core IOVA allocator, batched invalidation
    /// rings).
    pub percore: bool,
}

fn zero_ctx(core: u16) -> CoreCtx {
    let mut ctx = CoreCtx::new(CoreId(core), Arc::new(CostModel::zero()));
    ctx.seek(Cycles(1)); // distinguish from setup time zero
    ctx
}

impl Rig {
    /// Builds a fresh rig: memory, engine, one pre-filled page per mapper
    /// (pattern + page-tail secret), and the yield hook installed on the
    /// rig's private telemetry handle.
    ///
    /// With `percore`, the hot allocation state is sharded per simulated
    /// core the way `netsim`'s `percore` configs shard it: the shadow pool
    /// gets per-core magazines, the Linux engines the per-core IOVA
    /// allocator, and the IOMMU per-core pending-invalidation rings
    /// (batch threshold [`MC_PERCORE_BATCH`]). Batching parks synchronous
    /// page invalidations, so strict engines that stake their no-window
    /// claim on them reopen a *bounded* §2.2.1 window — the rig records
    /// that in the expected profile, and the explorer proves it exists.
    pub fn build(strategy: Strategy, mappers: usize, with_san: bool, percore: bool) -> Rig {
        assert!(mappers >= 1, "need at least one mapper");
        let obs = Obs::with_trace_capacity(4096);
        obs.set_trace_sampling(1);
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(256)));
        let mmu = if percore {
            Arc::new(Iommu::with_obs_batched(
                obs.clone(),
                mappers,
                MC_PERCORE_BATCH,
            ))
        } else {
            Arc::new(Iommu::with_obs(obs.clone()))
        };
        let engine: Box<dyn DmaEngine> = match strategy {
            Strategy::NoProtection => Box::new(NoIommu::new(mem.clone(), MC_DEV)),
            Strategy::Copy => Box::new(ShadowDma::new(
                mem.clone(),
                mmu.clone(),
                MC_DEV,
                PoolConfig {
                    magazines: percore.then(MagazineConfig::default),
                    ..PoolConfig::default()
                },
            )),
            Strategy::IdentityStrict => {
                Box::new(IdentityDma::strict(mem.clone(), mmu.clone(), MC_DEV))
            }
            Strategy::IdentityDeferred => Box::new(IdentityDma::deferred(
                mem.clone(),
                mmu.clone(),
                MC_DEV,
                mappers,
            )),
            Strategy::LinuxStrict if percore => Box::new(LinuxDma::percore_strict(
                mem.clone(),
                mmu.clone(),
                MC_DEV,
                mappers,
            )),
            Strategy::LinuxStrict => Box::new(LinuxDma::strict(mem.clone(), mmu.clone(), MC_DEV)),
            Strategy::LinuxDeferred if percore => Box::new(LinuxDma::percore_deferred(
                mem.clone(),
                mmu.clone(),
                MC_DEV,
                mappers,
            )),
            Strategy::LinuxDeferred => {
                Box::new(LinuxDma::deferred(mem.clone(), mmu.clone(), MC_DEV))
            }
            Strategy::EiovarStrict => {
                Box::new(LinuxDma::eiovar_strict(mem.clone(), mmu.clone(), MC_DEV))
            }
            Strategy::EiovarDeferred => {
                Box::new(LinuxDma::eiovar_deferred(mem.clone(), mmu.clone(), MC_DEV))
            }
            Strategy::SelfInval => {
                Box::new(SelfInvalidatingDma::new(mem.clone(), mmu.clone(), MC_DEV))
            }
        };
        // Always wrap in TracedDma so counterexample traces show the
        // map/unmap lifecycle; attach the sanitizer when cross-checking.
        let san = with_san.then(|| Arc::new(DmaSan::lenient(obs.clone())));
        let engine: Arc<dyn DmaEngine> = match &san {
            Some(san) => Arc::from(Box::new(TracedDma::with_observer(
                engine,
                obs.clone(),
                san.clone() as Arc<dyn DmaObserver>,
            )) as Box<dyn DmaEngine>),
            None => Arc::from(Box::new(TracedDma::new(engine, obs.clone())) as Box<dyn DmaEngine>),
        };
        let mut profile = engine.profile();
        // Per-core batching parks page invalidations in the calling core's
        // pending ring until the batch threshold, so a strict engine whose
        // no-window claim rests on *synchronous* page invalidation opens a
        // bounded window under it. Expect that window, so the explorer
        // reports it as found (not as a checker failure). Copy (permanent
        // shadow mappings, no unmap invalidations) and the self-
        // invalidating ablation (hardware path, no queue) keep their
        // claims.
        if percore
            && matches!(
                strategy,
                Strategy::IdentityStrict | Strategy::LinuxStrict | Strategy::EiovarStrict
            )
        {
            profile.no_vulnerability_window = false;
        }
        let bus = match strategy {
            Strategy::NoProtection => Bus::Direct(mem.clone()),
            _ => Bus::Iommu {
                mmu: mmu.clone(),
                mem: mem.clone(),
            },
        };
        let bus = match &san {
            Some(san) => bus.observed(san.clone() as Arc<dyn BusObserver>),
            None => bus,
        };

        // One page per mapper: pre-fill pattern over the buffer, secret in
        // the page tail (beyond the mapped length, §2.2.2's bait).
        let domain = mem.topology().domain_of_core(CoreId(0));
        let mut frames = Vec::new();
        for m in 0..mappers {
            let pfn = mem.alloc_frame(domain).expect("rig frame");
            let base = pfn.base();
            mem.fill(base, oracle::pre_fill(m), BUF_LEN)
                .expect("pre-fill");
            mem.write(base.add(TAIL_OFF as u64), &oracle::secret_magic(m))
                .expect("secret");
            let device_writes = m % 2 == 0;
            frames.push((m, base, device_writes));
        }
        let board = Arc::new(Board::new(&frames));
        // Yield hook last: rig setup above must not be schedule-controlled.
        Executor::install_hook(&obs);
        Rig {
            obs,
            mem,
            mmu,
            engine,
            bus: Arc::new(bus),
            board,
            san,
            profile,
            mappers,
            strategy,
            percore,
        }
    }

    /// Spawns the rig's worker threads (mappers `0..mappers`, device
    /// `mappers`) onto `exec` and returns their join handles. The caller
    /// then drives the schedule via [`Executor::step`].
    pub fn spawn_workers(&self, exec: &Arc<Executor>) -> Vec<std::thread::JoinHandle<()>> {
        let mut handles = Vec::new();
        for m in 0..self.mappers {
            let exec = exec.clone();
            let engine = self.engine.clone();
            let mem = self.mem.clone();
            let board = self.board.clone();
            let deferred = self.strategy.is_deferred();
            handles.push(std::thread::spawn(move || {
                exec.run_worker(m, move || mapper_script(m, &engine, &mem, &board, deferred));
            }));
        }
        let exec2 = exec.clone();
        let tid = self.mappers;
        let bus = self.bus.clone();
        let mem = self.mem.clone();
        let board = self.board.clone();
        let mappers = self.mappers;
        handles.push(std::thread::spawn(move || {
            exec2.run_worker(tid, move || device_script(mappers, &bus, &mem, &board));
        }));
        handles
    }
}

impl fmt::Debug for Rig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rig")
            .field("strategy", &self.strategy)
            .field("mappers", &self.mappers)
            .field("percore", &self.percore)
            .finish()
    }
}

/// One mapper's lifecycle: map → publish open → unmap → publish closed →
/// OS reuses the buffer (post magic) → flush deferred invalidations.
fn mapper_script(
    m: usize,
    engine: &Arc<dyn DmaEngine>,
    mem: &Arc<PhysMemory>,
    board: &Arc<Board>,
    deferred: bool,
) {
    let mut ctx = zero_ctx(m as u16);
    let win = board.window(m);
    let dir = if win.device_writes {
        DmaDirection::FromDevice
    } else {
        DmaDirection::ToDevice
    };
    let mapping = engine
        .map(&mut ctx, DmaBuf::new(win.os_base, BUF_LEN), dir)
        .expect("dma_map");
    board.set_open(m, mapping.iova.get());
    Executor::op_yield("unmap");
    engine.unmap(&mut ctx, mapping).expect("dma_unmap");
    board.set_closed(m);
    // The OS reclaims the buffer for private data the instant unmap
    // returns — the deferred engines' vulnerability window is exactly
    // that this data is still device-reachable until the batched flush.
    let magic = oracle::post_magic(m);
    let mut reused = vec![0u8; BUF_LEN];
    for chunk in reused.chunks_mut(magic.len()) {
        chunk.copy_from_slice(&magic[..chunk.len()]);
    }
    mem.write(win.os_base, &reused).expect("OS reuse write");
    if deferred {
        Executor::op_yield("flush");
        engine.flush_deferred(&mut ctx);
    }
}

/// The device thread: two probes per mapper window, yielding between all
/// of them so the explorer can interleave each probe anywhere in the
/// mappers' lifecycles. Probe #1 typically lands in-window (warming the
/// IOTLB); probe #2 is the stale one when scheduled after that mapper's
/// unmap.
fn device_script(mappers: usize, bus: &Arc<Bus>, mem: &Arc<PhysMemory>, board: &Arc<Board>) {
    for m in 0..mappers {
        for probe_no in 0..2 {
            Executor::op_yield(&format!("probe{probe_no}-m{m}"));
            probe(m, probe_no, bus, mem, board);
        }
    }
}

/// One device access against mapper `m`'s window, classified by the
/// oracle. Writes (FromDevice windows) are diffed against before/after
/// snapshots of every mapper page; reads are scanned for leaked sentinels.
fn probe(m: usize, probe_no: usize, bus: &Arc<Bus>, mem: &Arc<PhysMemory>, board: &Arc<Board>) {
    let win = board.window(m);
    let Some(iova) = win.iova else {
        return; // mapper has not mapped yet; nothing to aim at
    };
    let label = format!("probe{probe_no}-m{m}");
    let window_open = win.state == WinState::Open;
    let violation;
    let granted;
    if win.device_writes {
        let payload = if window_open {
            [0xAAu8; 16]
        } else {
            [0xEEu8; 16]
        };
        let before = oracle::snapshot_pages(mem, board);
        granted = bus.write(MC_DEV, iova, &payload).is_ok();
        let after = oracle::snapshot_pages(mem, board);
        violation = oracle::classify_write_effects(board, &label, &before, &after);
    } else {
        let mut data = vec![0u8; PROBE_READ_LEN];
        granted = bus.read(MC_DEV, iova, &mut data).is_ok();
        violation = if granted {
            oracle::classify_read_leak(board, &label, m, &data)
        } else {
            None
        };
    }
    board.record_access(AccessRecord {
        probe: label,
        granted,
        window_open,
        violation: violation.as_ref().map(|v| v.class),
    });
    if let Some(v) = violation {
        board.record_violation(v);
    }
}
