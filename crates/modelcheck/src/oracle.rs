//! The protection-invariant oracle.
//!
//! The paper's Table 1 invariant, stated *effectfully* so it applies to
//! copying and zero-copy engines alike: **a device access may observe or
//! mutate an OS-buffer byte B only while B lies inside a window that is
//! currently mapped for that device.** The effect formulation is what
//! exonerates DMA shadowing — a stale device access after `dma_unmap`
//! physically succeeds (it hits the still-mapped, recycled shadow slot),
//! but never reaches OS-visible bytes, which is exactly the paper's §5.2
//! security argument.
//!
//! Detection is sentinel-based:
//! - each mapper's OS buffer is pre-filled with a per-mapper pattern and a
//!   **secret magic** is planted in the page *tail*, beyond the mapped
//!   length — reads returning it prove the sub-page exposure of §2.2.2;
//! - after `dma_unmap` returns, the mapper overwrites its buffer with a
//!   per-mapper **post magic**, modeling the OS reusing the memory for
//!   private data — reads returning it, or writes landing on it, prove the
//!   deferred-invalidation vulnerability window (§2.2.1, Table 1).

use memsim::{PhysAddr, PhysMemory, PAGE_SIZE};
use std::sync::Mutex;

/// Bytes of each mapper's DMA buffer (sub-page, so the page tail exists).
pub const BUF_LEN: usize = 1024;

/// Page offset of the planted secret (beyond `BUF_LEN`, inside the page).
pub const TAIL_OFF: usize = 3000;

/// The per-mapper secret planted at the page tail (never legally mapped).
pub fn secret_magic(mapper: usize) -> [u8; 8] {
    [0x5E, 0xC4, 0xE7, mapper as u8, 0xA5, 0x17, 0xB2, 0xF0]
}

/// The per-mapper pattern the OS writes into the buffer *after* unmap
/// (private data reusing the memory).
pub fn post_magic(mapper: usize) -> [u8; 8] {
    [0xD0, 0x07, 0x5E, mapper as u8, 0xCA, 0xFE, 0xBA, 0xBE]
}

/// Pre-fill byte of mapper `m`'s buffer while mapped.
pub fn pre_fill(mapper: usize) -> u8 {
    0x20 + mapper as u8
}

/// Lifecycle of one mapper's DMA window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WinState {
    /// `dma_map` has not returned yet.
    NotMapped,
    /// Between `dma_map` and `dma_unmap` returning.
    Open,
    /// `dma_unmap` returned; any device effect on OS bytes is a violation.
    Closed,
}

/// One mapper's window record on the shared board.
#[derive(Debug, Clone)]
pub struct WindowRec {
    /// Owning mapper (also its logical thread id).
    pub mapper: usize,
    /// Device-visible address, known once mapped.
    pub iova: Option<u64>,
    /// OS buffer base (page-aligned here).
    pub os_base: PhysAddr,
    /// Mapped length in bytes.
    pub len: usize,
    /// Current lifecycle state.
    pub state: WinState,
    /// True when the device may write (FromDevice direction).
    pub device_writes: bool,
}

/// Which half of Table 1 a violation falsifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationClass {
    /// Device reached OS bytes of a *closed* window (deferred
    /// invalidation's vulnerability window, §2.2.1).
    Window,
    /// Device reached OS bytes *outside the mapped length* (page
    /// granularity's sub-page exposure, §2.2.2).
    Subpage,
}

/// One invariant violation observed during a run.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// Window or sub-page.
    pub class: ViolationClass,
    /// The mapper whose OS bytes were reached.
    pub mapper: usize,
    /// The device-script probe that triggered it.
    pub probe: String,
    /// Whether the target window was open at probe time.
    pub window_open: bool,
    /// Human-readable description.
    pub detail: String,
}

/// One device access, recorded for the dmasan cross-check.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Probe label.
    pub probe: String,
    /// Whether the bus granted the access.
    pub granted: bool,
    /// Target window state at access time.
    pub window_open: bool,
    /// Violation classified for this access, if any.
    pub violation: Option<ViolationClass>,
}

/// Shared run state: window lifecycle published by mappers, violations and
/// access records produced by the device-side oracle. All accesses happen
/// inside a single scheduled step (the executor serializes threads), so a
/// plain host mutex suffices and is never held across a yield point.
#[derive(Debug, Default)]
pub struct Board {
    windows: Mutex<Vec<WindowRec>>,
    violations: Mutex<Vec<ViolationReport>>,
    accesses: Mutex<Vec<AccessRecord>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Board {
    /// Creates a board with one `NotMapped` window per mapper.
    pub fn new(frames: &[(usize, PhysAddr, bool)]) -> Self {
        let windows = frames
            .iter()
            .map(|&(mapper, os_base, device_writes)| WindowRec {
                mapper,
                iova: None,
                os_base,
                len: BUF_LEN,
                state: WinState::NotMapped,
                device_writes,
            })
            .collect();
        Board {
            windows: Mutex::new(windows),
            violations: Mutex::new(Vec::new()),
            accesses: Mutex::new(Vec::new()),
        }
    }

    /// Mapper `m` published its mapping.
    pub fn set_open(&self, mapper: usize, iova: u64) {
        let mut w = lock(&self.windows);
        w[mapper].iova = Some(iova);
        w[mapper].state = WinState::Open;
    }

    /// Mapper `m`'s `dma_unmap` returned.
    pub fn set_closed(&self, mapper: usize) {
        lock(&self.windows)[mapper].state = WinState::Closed;
    }

    /// Snapshot of mapper `m`'s window.
    pub fn window(&self, mapper: usize) -> WindowRec {
        lock(&self.windows)[mapper].clone()
    }

    /// Snapshot of every window.
    pub fn windows(&self) -> Vec<WindowRec> {
        lock(&self.windows).clone()
    }

    /// All violations recorded this run.
    pub fn violations(&self) -> Vec<ViolationReport> {
        lock(&self.violations).clone()
    }

    /// All device accesses recorded this run.
    pub fn accesses(&self) -> Vec<AccessRecord> {
        lock(&self.accesses).clone()
    }

    pub(crate) fn record_access(&self, rec: AccessRecord) {
        lock(&self.accesses).push(rec);
    }

    pub(crate) fn record_violation(&self, v: ViolationReport) {
        lock(&self.violations).push(v);
    }
}

/// Snapshots every mapper's full OS page (buffer + tail sentinels).
pub fn snapshot_pages(mem: &PhysMemory, board: &Board) -> Vec<(usize, PhysAddr, Vec<u8>)> {
    board
        .windows()
        .iter()
        .map(|w| {
            let page = mem.read_vec(w.os_base, PAGE_SIZE).unwrap_or_default();
            (w.mapper, w.os_base, page)
        })
        .collect()
}

/// Compares before/after page snapshots around a device **write** and
/// classifies every changed OS byte against the board's open windows.
/// Returns the first violation found, if any.
pub fn classify_write_effects(
    board: &Board,
    probe: &str,
    before: &[(usize, PhysAddr, Vec<u8>)],
    after: &[(usize, PhysAddr, Vec<u8>)],
) -> Option<ViolationReport> {
    let windows = board.windows();
    for ((mapper, _base, old), (_, _, new)) in before.iter().zip(after.iter()) {
        let win = &windows[*mapper];
        for (off, (a, b)) in old.iter().zip(new.iter()).enumerate() {
            if a == b {
                continue;
            }
            let in_buffer = off < win.len;
            if in_buffer && win.state == WinState::Open {
                continue; // device legally owns these bytes right now
            }
            let (class, why) = if in_buffer {
                (
                    ViolationClass::Window,
                    format!(
                        "device write mutated OS byte {off} of mapper {mapper}'s \
                         buffer after dma_unmap returned (stale IOTLB window)"
                    ),
                )
            } else {
                (
                    ViolationClass::Subpage,
                    format!(
                        "device write mutated OS page byte {off} of mapper {mapper}, \
                         beyond the {}-byte mapped buffer (page-granularity exposure)",
                        win.len
                    ),
                )
            };
            return Some(ViolationReport {
                class,
                mapper: *mapper,
                probe: probe.to_string(),
                window_open: win.state == WinState::Open,
                detail: why,
            });
        }
    }
    None
}

/// Scans bytes returned by a device **read** for leaked sentinels.
pub fn classify_read_leak(
    board: &Board,
    probe: &str,
    target_mapper: usize,
    data: &[u8],
) -> Option<ViolationReport> {
    let windows = board.windows();
    for win in &windows {
        let m = win.mapper;
        if contains(data, &secret_magic(m)) {
            return Some(ViolationReport {
                class: ViolationClass::Subpage,
                mapper: m,
                probe: probe.to_string(),
                window_open: windows[target_mapper].state == WinState::Open,
                detail: format!(
                    "device read returned the page-tail secret of mapper {m} \
                     (bytes beyond the mapped length leaked)"
                ),
            });
        }
        if contains(data, &post_magic(m)) {
            return Some(ViolationReport {
                class: ViolationClass::Window,
                mapper: m,
                probe: probe.to_string(),
                window_open: windows[target_mapper].state == WinState::Open,
                detail: format!(
                    "device read returned OS-private data written after mapper \
                     {m}'s dma_unmap returned (stale IOTLB window leak)"
                ),
            });
        }
    }
    None
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_distinct_per_mapper() {
        assert_ne!(secret_magic(0), secret_magic(1));
        assert_ne!(post_magic(0), post_magic(1));
        assert_ne!(secret_magic(0), post_magic(0));
        assert_ne!(pre_fill(0), pre_fill(1));
    }

    #[test]
    fn write_effects_classified_by_window_state() {
        let board = Board::new(&[(0, PhysAddr(0x1000), true)]);
        board.set_open(0, 0x8000);
        let before = vec![(0usize, PhysAddr(0x1000), vec![0u8; PAGE_SIZE])];
        let mut changed = vec![0u8; PAGE_SIZE];
        changed[10] = 0xEE;
        let after = vec![(0usize, PhysAddr(0x1000), changed.clone())];
        // Open window: in-buffer change is legal.
        assert!(classify_write_effects(&board, "p", &before, &after).is_none());
        // Closed window: the same change is a Window violation.
        board.set_closed(0);
        let v = classify_write_effects(&board, "p", &before, &after).unwrap();
        assert_eq!(v.class, ViolationClass::Window);
        // Tail change is Subpage even while open.
        board.set_open(0, 0x8000);
        let mut tail = vec![0u8; PAGE_SIZE];
        tail[TAIL_OFF] = 1;
        let after = vec![(0usize, PhysAddr(0x1000), tail)];
        let v = classify_write_effects(&board, "p", &before, &after).unwrap();
        assert_eq!(v.class, ViolationClass::Subpage);
    }

    #[test]
    fn read_leaks_detected_by_magic() {
        let board = Board::new(&[(0, PhysAddr(0x1000), false)]);
        board.set_open(0, 0x8000);
        let mut data = vec![0u8; 32];
        assert!(classify_read_leak(&board, "r", 0, &data).is_none());
        data[4..12].copy_from_slice(&secret_magic(0));
        let v = classify_read_leak(&board, "r", 0, &data).unwrap();
        assert_eq!(v.class, ViolationClass::Subpage);
        let mut data = vec![0u8; 32];
        data[0..8].copy_from_slice(&post_magic(0));
        let v = classify_read_leak(&board, "r", 0, &data).unwrap();
        assert_eq!(v.class, ViolationClass::Window);
    }
}
