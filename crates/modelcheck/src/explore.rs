//! The bounded DFS explorer.
//!
//! Stateless (loom/Shuttle style): every schedule runs against a fresh
//! [`Rig`], replaying the stack's prefix of decisions and extending it at
//! the frontier. Exploration is bounded three ways:
//!
//! 1. a **preemption bound** — switching away from a thread that could
//!    still run consumes budget (switches after a thread finishes are
//!    free), following Musuvathi & Qadeer's iterative context bounding;
//! 2. **sleep sets** — after a choice is fully explored at a frame it is
//!    put to sleep there; a sleeping thread is skipped until a dependent
//!    step wakes it (conservative DPOR: only mapper lock steps on
//!    *different* locks commute);
//! 3. hard caps on runs and choice points — the deterministic time budget
//!    CI relies on (wall-clock independent).

// lint: allow(panic) — explorer invariant breaks are checker bugs, not runtime errors

use crate::counterexample::{Counterexample, Step};
use crate::exec::{Executor, ThreadView, Tid, YieldInfo};
use crate::oracle::{AccessRecord, ViolationClass, ViolationReport};
use crate::rig::{Rig, Strategy};
use dma_api::ProtectionProfile;
use std::collections::BTreeSet;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// The engine strategy to check.
    pub strategy: Strategy,
    /// Mapper thread count (the device thread is added on top).
    pub mappers: usize,
    /// Maximum preemptive context switches per schedule.
    pub preemption_bound: usize,
    /// Hard cap on complete schedules executed.
    pub max_runs: usize,
    /// Hard cap on choice points (frontier frames) created — the
    /// deterministic "explored states" budget.
    pub max_choice_points: usize,
    /// Enable sleep-set (partial-order) pruning.
    pub dpor: bool,
    /// Stop as soon as a window violation has a counterexample.
    pub stop_at_first_window: bool,
    /// Attach a lenient [`dmasan::DmaSan`] to every rig (cross-check).
    pub with_san: bool,
    /// Keep a per-run summary (schedules, violations, accesses).
    pub collect_runs: bool,
    /// Lock names the static lock-order pass inventoried; any yield point
    /// naming a lock outside this set is reported in
    /// [`Report::unknown_locks`]. `None` disables the check.
    pub known_locks: Option<Vec<String>>,
    /// Build every rig with per-core allocation state (pool magazines,
    /// per-core IOVA allocator, batched invalidation rings) — the
    /// `netsim` `percore` configuration, under the checker.
    pub percore: bool,
}

impl Config {
    /// Defaults from the acceptance criteria: 2 mappers × 1 device,
    /// preemption bound 3, DPOR on.
    pub fn new(strategy: Strategy) -> Config {
        Config {
            strategy,
            mappers: 2,
            preemption_bound: 3,
            max_runs: 100_000,
            max_choice_points: 200_000,
            dpor: true,
            stop_at_first_window: false,
            with_san: false,
            collect_runs: false,
            known_locks: None,
            percore: false,
        }
    }
}

/// Everything one completed schedule produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The decisions taken, in order.
    pub schedule: Vec<Step>,
    /// True when the run was cut short by sleep-set/budget pruning (its
    /// oracle evidence is not evaluated).
    pub pruned: bool,
    /// The engine's Table 1 row.
    pub profile: ProtectionProfile,
    /// Oracle violations recorded on the board.
    pub violations: Vec<ViolationReport>,
    /// Sanitizer violations (when [`Config::with_san`]).
    pub san_violations: Vec<dmasan::Violation>,
    /// Device accesses recorded on the board.
    pub accesses: Vec<AccessRecord>,
    /// The run's telemetry trace.
    pub events: Vec<obs::Event>,
    /// Worker panics (tid, message) — always checker bugs.
    pub panics: Vec<(Tid, String)>,
}

/// Per-run summary retained when [`Config::collect_runs`] is set.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The schedule.
    pub schedule: Vec<Step>,
    /// Oracle violations.
    pub violations: Vec<ViolationReport>,
    /// Sanitizer violation kinds (as debug strings).
    pub san_violations: Vec<String>,
    /// Device accesses.
    pub accesses: Vec<AccessRecord>,
}

/// The explorer's verdict over the bounded space.
#[derive(Debug)]
pub struct Report {
    /// Strategy checked.
    pub strategy: Strategy,
    /// Complete schedules executed.
    pub runs: usize,
    /// Choice points created.
    pub choice_points: usize,
    /// Paths cut by sleep-set/budget pruning.
    pub sleep_skips: usize,
    /// True when the whole bounded space was explored (no cap hit, no
    /// early stop) — this is what "proved safe within bounds" means.
    pub exhausted: bool,
    /// A window (stale-IOTLB) violation exists in the bounded space.
    pub found_window: bool,
    /// A sub-page violation exists in the bounded space.
    pub found_subpage: bool,
    /// First violation contradicting the engine's own Table 1 claims
    /// (e.g. *any* window violation for a strict engine) — a checker
    /// failure for strict strategies.
    pub unexpected: Option<Counterexample>,
    /// First window violation witnessed.
    pub window_example: Option<Counterexample>,
    /// First sub-page violation witnessed.
    pub subpage_example: Option<Counterexample>,
    /// Lock yield points whose names the static inventory did not know.
    pub unknown_locks: Vec<String>,
    /// Per-run summaries (when collected).
    pub run_summaries: Vec<RunSummary>,
    /// Worker panics with their schedules.
    pub panics: Vec<(Vec<Step>, String)>,
}

/// One DFS stack frame: the scheduling choices at a frontier state.
#[derive(Debug)]
struct Frame {
    /// Allowed choices, previously-running thread first.
    choices: Vec<Tid>,
    /// Index of the choice currently being explored.
    idx: usize,
    /// Threads put to sleep here (explored, or inherited and still
    /// independent).
    sleep: BTreeSet<Tid>,
    /// Parked yield info per tid at this state (`None` = finished).
    infos: Vec<Option<YieldInfo>>,
    /// Preemptions consumed on the path to this state.
    preemptions: usize,
    /// The thread that ran immediately before this state.
    prev: Option<Tid>,
}

fn view_info(v: &ThreadView) -> Option<YieldInfo> {
    match v {
        ThreadView::Parked(i) => Some(i.clone()),
        _ => None,
    }
}

fn parked(views: &[ThreadView]) -> Vec<Tid> {
    views
        .iter()
        .enumerate()
        .filter(|(_, v)| matches!(v, ThreadView::Parked(_)))
        .map(|(t, _)| t)
        .collect()
}

/// Conservative independence: two *mapper* steps commute when both are
/// instrumented acquisitions of *different* locks. Everything else —
/// device probes, op boundaries, same-lock steps — is treated as
/// dependent, so pruning never hides a violating interleaving of the
/// device with the mappers.
fn independent(
    cfg: &Config,
    a_tid: Tid,
    a: Option<&YieldInfo>,
    b_tid: Tid,
    b: Option<&YieldInfo>,
) -> bool {
    if !cfg.dpor || a_tid >= cfg.mappers || b_tid >= cfg.mappers {
        return false;
    }
    matches!(
        (a, b),
        (Some(YieldInfo::Lock(la)), Some(YieldInfo::Lock(lb))) if la != lb
    )
}

/// Explores the bounded schedule space of `cfg.strategy` and reports.
pub fn explore(cfg: &Config) -> Report {
    let mut report = Report {
        strategy: cfg.strategy,
        runs: 0,
        choice_points: 0,
        sleep_skips: 0,
        exhausted: false,
        found_window: false,
        found_subpage: false,
        unexpected: None,
        window_example: None,
        subpage_example: None,
        unknown_locks: Vec::new(),
        run_summaries: Vec::new(),
        panics: Vec::new(),
    };
    let mut stack: Vec<Frame> = Vec::new();
    loop {
        if report.runs >= cfg.max_runs || report.choice_points >= cfg.max_choice_points {
            break; // budget hit: not exhaustive
        }
        report.runs += 1;
        let outcome = run_schedule(cfg, &mut stack, &mut report);
        if !outcome.pruned {
            evaluate(cfg, &outcome, &mut report);
        }
        if cfg.stop_at_first_window && report.window_example.is_some() {
            break; // early stop: not exhaustive
        }
        if !backtrack(&mut stack) {
            report.exhausted = true;
            break;
        }
    }
    report
}

/// Replays a recorded schedule against a fresh rig, validating that every
/// step finds its thread parked at the recorded label (divergence means
/// the code under test changed — the fixture must be regenerated). The
/// run is drained to completion either way so no worker leaks.
pub fn replay(cfg: &Config, schedule: &[Step]) -> Result<RunOutcome, String> {
    let rig = Rig::build(cfg.strategy, cfg.mappers, cfg.with_san, cfg.percore);
    let exec = Executor::new(cfg.mappers + 1);
    let handles = rig.spawn_workers(&exec);
    let mut views = exec.wait_quiescent();
    let mut taken = Vec::new();
    let mut divergence = None;
    for (i, step) in schedule.iter().enumerate() {
        let parked_label = match views.get(step.tid).map(view_info) {
            Some(Some(info)) => info.label(),
            _ => {
                divergence = Some(format!(
                    "step {i}: thread {} is not parked (schedule diverged)",
                    step.tid
                ));
                break;
            }
        };
        if parked_label != step.label {
            divergence = Some(format!(
                "step {i}: thread {} parked at `{parked_label}`, fixture says `{}` \
                 (schedule diverged; regenerate with mc-suite --write-fixture)",
                step.tid, step.label
            ));
            break;
        }
        taken.push(step.clone());
        views = exec.step(step.tid);
    }
    views = drain(&exec, views);
    for h in handles {
        let _ = h.join();
    }
    if let Some(why) = divergence {
        return Err(why);
    }
    Ok(finish_outcome(&rig, taken, false, views))
}

/// Steps every remaining parked thread to completion.
fn drain(exec: &Executor, mut views: Vec<ThreadView>) -> Vec<ThreadView> {
    while let Some(&t) = parked(&views).first() {
        views = exec.step(t);
    }
    views
}

fn finish_outcome(
    rig: &Rig,
    schedule: Vec<Step>,
    pruned: bool,
    views: Vec<ThreadView>,
) -> RunOutcome {
    let panics = views
        .iter()
        .enumerate()
        .filter_map(|(t, v)| match v {
            ThreadView::Panicked(m) => Some((t, m.clone())),
            _ => None,
        })
        .collect();
    RunOutcome {
        schedule,
        pruned,
        profile: rig.profile,
        violations: rig.board.violations(),
        san_violations: rig.san.as_ref().map(|s| s.violations()).unwrap_or_default(),
        accesses: rig.board.accesses(),
        events: rig.obs.tracer().events(),
        panics,
    }
}

/// Executes one schedule: replays the stack prefix, extends greedily at
/// the frontier (first allowed choice of every new frame).
fn run_schedule(cfg: &Config, stack: &mut Vec<Frame>, report: &mut Report) -> RunOutcome {
    let rig = Rig::build(cfg.strategy, cfg.mappers, cfg.with_san, cfg.percore);
    let exec = Executor::new(cfg.mappers + 1);
    let handles = rig.spawn_workers(&exec);
    let mut views = exec.wait_quiescent();
    let mut schedule = Vec::new();
    let mut depth = 0usize;
    let mut pruned = false;
    loop {
        if let Some(known) = &cfg.known_locks {
            for v in &views {
                if let ThreadView::Parked(YieldInfo::Lock(name)) = v {
                    if !known.iter().any(|k| k == name) && !report.unknown_locks.contains(name) {
                        report.unknown_locks.push(name.clone());
                    }
                }
            }
        }
        let enabled = parked(&views);
        if enabled.is_empty() {
            break; // all workers finished (or panicked): terminal state
        }
        let tid = if depth < stack.len() {
            // Replaying the committed prefix.
            let f = &stack[depth];
            f.choices[f.idx]
        } else {
            // Frontier: open a new choice frame.
            let (prev, preemptions, inherited_sleep) = match stack.last() {
                Some(parent) => {
                    let chosen = parent.choices[parent.idx];
                    let cost = match parent.prev {
                        Some(p) if p != chosen && parent.infos[p].is_some() => 1,
                        _ => 0,
                    };
                    let sleep = parent
                        .sleep
                        .iter()
                        .copied()
                        .filter(|&u| {
                            independent(
                                cfg,
                                chosen,
                                parent.infos[chosen].as_ref(),
                                u,
                                parent.infos[u].as_ref(),
                            )
                        })
                        .collect::<BTreeSet<_>>();
                    (Some(chosen), parent.preemptions + cost, sleep)
                }
                None => (None, 0, BTreeSet::new()),
            };
            let infos: Vec<Option<YieldInfo>> = views.iter().map(view_info).collect();
            let mut choices = Vec::new();
            match prev {
                // The previous thread is still runnable: continuing it is
                // free; anything else preempts.
                Some(p) if infos[p].is_some() => {
                    if !inherited_sleep.contains(&p) {
                        choices.push(p);
                    }
                    if preemptions < cfg.preemption_bound {
                        choices.extend(
                            enabled
                                .iter()
                                .copied()
                                .filter(|&t| t != p && !inherited_sleep.contains(&t)),
                        );
                    }
                }
                // First step, or the previous thread finished: any switch
                // is free.
                _ => choices.extend(
                    enabled
                        .iter()
                        .copied()
                        .filter(|t| !inherited_sleep.contains(t)),
                ),
            }
            report.choice_points += 1;
            if choices.is_empty() {
                // Every enabled move is asleep (or budget-blocked): this
                // whole subtree is covered elsewhere. Prune.
                pruned = true;
                report.sleep_skips += 1;
                break;
            }
            stack.push(Frame {
                choices,
                idx: 0,
                sleep: inherited_sleep,
                infos,
                preemptions,
                prev,
            });
            stack.last().expect("just pushed").choices[0]
        };
        let label = view_info(&views[tid])
            .expect("scheduled thread is parked")
            .label();
        schedule.push(Step { tid, label });
        views = exec.step(tid);
        depth += 1;
    }
    let views = drain(&exec, views);
    for h in handles {
        let _ = h.join();
    }
    finish_outcome(&rig, schedule, pruned, views)
}

/// Advances the DFS to the next unexplored branch; false = space done.
fn backtrack(stack: &mut Vec<Frame>) -> bool {
    loop {
        let Some(top) = stack.last_mut() else {
            return false;
        };
        // The branch just explored goes to sleep at this frame.
        let explored = top.choices[top.idx];
        top.sleep.insert(explored);
        top.idx += 1;
        while top.idx < top.choices.len() && top.sleep.contains(&top.choices[top.idx]) {
            top.idx += 1;
        }
        if top.idx < top.choices.len() {
            return true;
        }
        stack.pop();
    }
}

/// Folds one completed run's evidence into the report.
fn evaluate(cfg: &Config, outcome: &RunOutcome, report: &mut Report) {
    for (_, msg) in &outcome.panics {
        report.panics.push((outcome.schedule.clone(), msg.clone()));
    }
    for v in &outcome.violations {
        let cx = || Counterexample::new(cfg.strategy.name(), v, &outcome.schedule, &outcome.events);
        match v.class {
            ViolationClass::Window => {
                report.found_window = true;
                if report.window_example.is_none() {
                    report.window_example = Some(cx());
                }
                if outcome.profile.no_vulnerability_window && report.unexpected.is_none() {
                    report.unexpected = Some(cx());
                }
            }
            ViolationClass::Subpage => {
                report.found_subpage = true;
                if report.subpage_example.is_none() {
                    report.subpage_example = Some(cx());
                }
                if outcome.profile.sub_page && report.unexpected.is_none() {
                    report.unexpected = Some(cx());
                }
            }
        }
    }
    if cfg.collect_runs {
        report.run_summaries.push(RunSummary {
            schedule: outcome.schedule.clone(),
            violations: outcome.violations.clone(),
            san_violations: outcome
                .san_violations
                .iter()
                .map(|v| format!("{:?}", v.kind))
                .collect(),
            accesses: outcome.accesses.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtrack_walks_the_whole_tree() {
        // Two frames of two choices each: expect 3 advances then done.
        let mut stack = vec![
            Frame {
                choices: vec![0, 1],
                idx: 0,
                sleep: BTreeSet::new(),
                infos: vec![None, None],
                preemptions: 0,
                prev: None,
            },
            Frame {
                choices: vec![0, 1],
                idx: 0,
                sleep: BTreeSet::new(),
                infos: vec![None, None],
                preemptions: 0,
                prev: None,
            },
        ];
        assert!(backtrack(&mut stack)); // inner -> choice 1
        assert_eq!(stack.len(), 2);
        assert!(backtrack(&mut stack)); // inner done, outer -> choice 1
        assert_eq!(stack.len(), 1);
        assert!(!backtrack(&mut stack) || stack.is_empty());
    }

    #[test]
    fn independence_requires_distinct_mapper_locks() {
        let cfg = Config::new(Strategy::Copy);
        let la = YieldInfo::Lock("a".into());
        let lb = YieldInfo::Lock("b".into());
        let op = YieldInfo::Op("x".into());
        assert!(independent(&cfg, 0, Some(&la), 1, Some(&lb)));
        assert!(!independent(&cfg, 0, Some(&la), 1, Some(&la)));
        assert!(!independent(&cfg, 0, Some(&la), 1, Some(&op)));
        // The device (tid == mappers) never commutes with anything.
        assert!(!independent(&cfg, 0, Some(&la), 2, Some(&lb)));
        let nodpor = Config {
            dpor: false,
            ..Config::new(Strategy::Copy)
        };
        assert!(!independent(&nodpor, 0, Some(&la), 1, Some(&lb)));
    }
}
