//! # iommu — the simulated I/O memory management unit
//!
//! Models an Intel VT-d-style IOMMU \[30\] faithfully enough to reproduce
//! both the *protection semantics* and the *costs* that drive the paper:
//!
//! - [`IoPageTable`] — a real 4-level radix page table per device domain,
//!   mapping 48-bit I/O virtual addresses ([`Iova`]) to physical frames at
//!   page granularity with read/write/both access rights ([`Perms`]).
//! - [`Iotlb`] — the translation cache. Entries created by device-side
//!   walks **persist after a page-table unmap until explicitly
//!   invalidated** — this staleness is what makes deferred protection a
//!   real vulnerability window (§2.2.1, §3).
//! - [`InvalQueue`] — the cyclic invalidation queue. Posting an
//!   invalidation and busy-waiting on its wait descriptor costs ≈2000
//!   cycles and is serialized by a single lock, the scalability bottleneck
//!   of strict zero-copy protection (§2.2.1, Figure 8).
//! - [`Iommu`] — ties the above together: OS-side map/unmap/invalidate
//!   operations (charged to a [`simcore::CoreCtx`]) and device-side DMA
//!   translation (uncharged — devices are not CPUs).
//!
//! Blocked DMAs are recorded in a fault log, like the hardware's fault
//! recording registers.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod invalq;
mod iotlb;
mod mmu;
mod pagetable;
mod pending;
mod types;

pub use invalq::{InvalQueue, InvalQueueStats, INVALQ_LOCK};
pub use iotlb::{Iotlb, IotlbStats};
pub use mmu::{Iommu, IommuError, DEVICE_SIDE_CORE};
pub use pagetable::{IoPageTable, PtEntry, PtError};
pub use pending::{PendingRing, INVALQ_PENDING_LOCK};
pub use types::{Access, DeviceId, DmaFault, FaultReason, Iova, IovaPage, Perms};
