//! The invalidation queue: how the OS invalidates the IOTLB.
//!
//! The OS posts invalidation descriptors into a cyclic buffer and busy-waits
//! on a wait descriptor until the hardware completes them (§2.1). Two costs
//! make this the bottleneck of strict zero-copy protection:
//!
//! 1. The hardware is slow: ≈2000 cycles per invalidation \[37\], growing
//!    under multi-core load (Figure 8 shows ≈2.7 µs at 16 cores).
//! 2. The queue is protected by a single lock, so concurrent invalidations
//!    serialize (§2.2.1) — modeled with a [`SimLock`].

use crate::{DeviceId, Iotlb, IovaPage, PendingRing};
use obs::{Counter, EventKind, MetricKey, Obs};
use simcore::sync::Mutex;
use simcore::{CoreCtx, Cycles, Phase, SimLock};

/// Invalidation-queue statistics.
///
/// A thin view over the unified metric registry: the authoritative
/// counts live in `obs` as `invalq.page_commands` / `invalq.flush_commands`
/// / `invalq.waits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvalQueueStats {
    /// Page-selective invalidation commands posted.
    pub page_commands: u64,
    /// Domain/global flush commands posted.
    pub flush_commands: u64,
    /// Wait descriptors completed (one per synchronous operation).
    pub waits: u64,
}

/// Lock name reported in lockset events for the invalidation queue.
pub const INVALQ_LOCK: &str = "iommu-invalidation-queue";

/// The (single, global) IOMMU invalidation queue.
#[derive(Debug)]
pub struct InvalQueue {
    lock: SimLock,
    obs: Obs,
    page_commands: Counter,
    flush_commands: Counter,
    waits: Counter,
    batch: Option<Batch>,
}

/// Opt-in per-core batching state (see [`InvalQueue::with_obs_batched`]).
#[derive(Debug)]
struct Batch {
    rings: Vec<PendingRing>,
    threshold: usize,
    pending_appended: Counter,
    drains: Counter,
}

impl Batch {
    fn ring(&self, ctx: &CoreCtx) -> &PendingRing {
        &self.rings[ctx.core.0 as usize % self.rings.len()]
    }
}

impl Default for InvalQueue {
    fn default() -> Self {
        InvalQueue::new()
    }
}

impl InvalQueue {
    /// Creates the queue with a private, isolated telemetry handle.
    pub fn new() -> Self {
        InvalQueue::with_obs(Obs::isolated())
    }

    /// Creates the queue reporting into a shared telemetry handle.
    pub fn with_obs(obs: Obs) -> Self {
        InvalQueue {
            lock: SimLock::new(INVALQ_LOCK),
            page_commands: obs.counter("invalq", "page_commands", None),
            flush_commands: obs.counter("invalq", "flush_commands", None),
            waits: obs.counter("invalq", "waits", None),
            obs,
            batch: None,
        }
    }

    /// Creates the queue with per-core pending rings in front of the
    /// global lock: page invalidations append to the calling core's ring
    /// and drain into the queue every `threshold` entries (or on device
    /// flush / explicit drain). The drain boundary is the §2.2.1 deferred
    /// window, bounded per core by `threshold`.
    pub fn with_obs_batched(obs: Obs, cores: usize, threshold: usize) -> Self {
        let mut q = InvalQueue::with_obs(obs);
        q.batch = Some(Batch {
            rings: (0..cores.max(1)).map(|_| PendingRing::new()).collect(),
            threshold: threshold.max(1),
            pending_appended: q.obs.counter("invalq", "pending_appended", None),
            drains: q.obs.counter("invalq", "batch_drains", None),
        });
        q
    }

    /// Whether per-core batching is enabled.
    pub fn batching(&self) -> bool {
        self.batch.is_some()
    }

    /// Total entries currently pending across every core's ring.
    pub fn pending_len(&self) -> usize {
        self.batch
            .as_ref()
            .map_or(0, |b| b.rings.iter().map(PendingRing::len).sum())
    }

    /// The calling core's pending ring, if batching is enabled (exposed
    /// for contention statistics and tests).
    pub fn pending_ring(&self, ctx: &CoreCtx) -> Option<&PendingRing> {
        self.batch.as_ref().map(|b| b.ring(ctx))
    }

    /// Re-registers this queue's counters into `obs`'s registry and routes
    /// future events to its tracer. Counts made so far stay visible.
    pub fn rehome(&mut self, obs: Obs) {
        let r = obs.registry();
        r.adopt_counter(
            MetricKey::new("invalq", "page_commands", None),
            &self.page_commands,
        );
        r.adopt_counter(
            MetricKey::new("invalq", "flush_commands", None),
            &self.flush_commands,
        );
        r.adopt_counter(MetricKey::new("invalq", "waits", None), &self.waits);
        if let Some(b) = &self.batch {
            r.adopt_counter(
                MetricKey::new("invalq", "pending_appended", None),
                &b.pending_appended,
            );
            r.adopt_counter(MetricKey::new("invalq", "batch_drains", None), &b.drains);
        }
        self.obs = obs;
    }

    /// The queue's lock (exposed for contention statistics).
    pub fn lock(&self) -> &SimLock {
        &self.lock
    }

    /// Emits a detail-gated lockset event (no-op unless
    /// [`Obs::set_detail_enabled`] is on).
    fn lockset(&self, ctx: &CoreCtx, kind: EventKind) {
        if self.obs.detail_enabled() {
            self.obs.trace(ctx.now(), ctx.core.0, None, kind);
        }
    }

    /// Runs `f` under the queue lock, bracketing it with lockset events
    /// and recording the shared queue access the Eraser-style detector
    /// checks against the held lockset.
    fn with_lockset<R>(&self, ctx: &mut CoreCtx, f: impl FnOnce(&mut CoreCtx) -> R) -> R {
        self.lockset(
            ctx,
            EventKind::LockAcquire {
                lock: INVALQ_LOCK.into(),
            },
        );
        let r = self.lock.with(ctx, |ctx| {
            self.lockset(
                ctx,
                EventKind::SharedAccess {
                    var: "invalq.queue".into(),
                    write: true,
                },
            );
            f(ctx)
        });
        self.lockset(
            ctx,
            EventKind::LockRelease {
                lock: INVALQ_LOCK.into(),
            },
        );
        r
    }

    /// Synchronously invalidates one IOVA page: takes the queue lock, posts
    /// a page-selective invalidation plus a wait descriptor, and busy-waits
    /// for completion. This is what strict protection pays on **every**
    /// `dma_unmap`.
    pub fn invalidate_page_sync(
        &self,
        ctx: &mut CoreCtx,
        iotlb: &Mutex<Iotlb>,
        dev: DeviceId,
        page: IovaPage,
    ) {
        self.invalidate_pages_sync(ctx, iotlb, dev, std::slice::from_ref(&page));
    }

    /// Synchronously invalidates several IOVA pages under one lock
    /// acquisition (e.g. a multi-page buffer or a scatter/gather unmap).
    ///
    /// Like real VT-d page-selective invalidation descriptors, one command
    /// covers a *contiguous* page range (via the address-mask field), so a
    /// 16-page TSO buffer costs one posted command and one completion wait,
    /// while scattered pages cost one each.
    ///
    /// Takes the IOTLB *by its host lock*, acquired only inside the queue's
    /// critical section — the instrumented `LockAcquire` (a model-checker
    /// preemption point) therefore fires while no host lock is held.
    pub fn invalidate_pages_sync(
        &self,
        ctx: &mut CoreCtx,
        iotlb: &Mutex<Iotlb>,
        dev: DeviceId,
        pages: &[IovaPage],
    ) {
        if pages.is_empty() {
            return;
        }
        if let Some(b) = &self.batch {
            let len = b.ring(ctx).append(ctx, &self.obs, dev, pages);
            b.pending_appended.add(pages.len() as u64);
            if len >= b.threshold {
                self.drain_pending_local(ctx, iotlb);
            }
            return;
        }
        obs::profile::scope(ctx, "invalq_drain", |ctx| {
            self.invalidate_pages_sync_inner(ctx, iotlb, dev, pages)
        });
    }

    /// Drains the calling core's pending ring into the global queue:
    /// entries post in append order, grouped into one sync op per
    /// consecutive same-device run. No-op when batching is off or the
    /// ring is empty.
    pub fn drain_pending_local(&self, ctx: &mut CoreCtx, iotlb: &Mutex<Iotlb>) {
        if let Some(b) = &self.batch {
            self.drain_ring(ctx, iotlb, b.ring(ctx));
        }
    }

    /// Drains every core's pending ring (the teardown path — cross-core,
    /// under each ring's lock). After this no invalidation is pending and
    /// every deferred window opened by batching is closed.
    pub fn drain_pending_all(&self, ctx: &mut CoreCtx, iotlb: &Mutex<Iotlb>) {
        if let Some(b) = &self.batch {
            for ring in &b.rings {
                self.drain_ring(ctx, iotlb, ring);
            }
        }
    }

    fn drain_ring(&self, ctx: &mut CoreCtx, iotlb: &Mutex<Iotlb>, ring: &PendingRing) {
        let entries = ring.take(ctx, &self.obs);
        if entries.is_empty() {
            return;
        }
        if let Some(b) = &self.batch {
            b.drains.inc();
        }
        let mut i = 0;
        while i < entries.len() {
            let dev = entries[i].0;
            let mut j = i + 1;
            while j < entries.len() && entries[j].0 == dev {
                j += 1;
            }
            let pages: Vec<IovaPage> = entries[i..j].iter().map(|&(_, p)| p).collect();
            obs::profile::scope(ctx, "invalq_drain", |ctx| {
                self.invalidate_pages_inner(ctx, iotlb, dev, &pages, true)
            });
            i = j;
        }
    }

    fn invalidate_pages_sync_inner(
        &self,
        ctx: &mut CoreCtx,
        iotlb: &Mutex<Iotlb>,
        dev: DeviceId,
        pages: &[IovaPage],
    ) {
        self.invalidate_pages_inner(ctx, iotlb, dev, pages, false);
    }

    /// Posts `pages` as range commands under the queue lock. With
    /// `amortized_wait` (the batched-drain path) the busy-wait on the wait
    /// descriptor is charged once for the whole batch — the §2.2.1
    /// amortization that makes batching worth a lock hold; the per-unmap
    /// path charges it per range command, unchanged.
    fn invalidate_pages_inner(
        &self,
        ctx: &mut CoreCtx,
        iotlb: &Mutex<Iotlb>,
        dev: DeviceId,
        pages: &[IovaPage],
        amortized_wait: bool,
    ) {
        let active = ctx.active_cores;
        let spin_before = self.lock.stats().total_spin;
        let wait_start = ctx.breakdown.get(Phase::InvalidateIotlb);
        self.with_lockset(ctx, |ctx| {
            let mut iotlb = iotlb.lock();
            let mut i = 0;
            while i < pages.len() {
                // Extend over the contiguous run starting at pages[i].
                let mut j = i + 1;
                while j < pages.len() && pages[j].get() == pages[j - 1].get() + 1 {
                    j += 1;
                }
                ctx.charge(Phase::InvalidateIotlb, ctx.cost.inval_queue_post);
                for &page in &pages[i..j] {
                    iotlb.invalidate_page(dev, page);
                }
                self.page_commands.inc();
                if !amortized_wait {
                    ctx.charge(Phase::InvalidateIotlb, ctx.cost.inval_wait(active));
                }
                i = j;
            }
            if amortized_wait {
                ctx.charge(Phase::InvalidateIotlb, ctx.cost.inval_wait(active));
            }
            // Exactly one wait descriptor completes per synchronous
            // operation, regardless of how many range commands it posted.
            self.waits.inc();
        });
        self.trace_op(ctx, dev, pages.len() as u64, wait_start, spin_before);
    }

    /// Emits the `IotlbInvalidate` (and, if the queue lock spun, the
    /// `LockContention`) trace events for one completed sync op.
    fn trace_op(
        &self,
        ctx: &mut CoreCtx,
        dev: DeviceId,
        pages: u64,
        wait_start: Cycles,
        spin_before: Cycles,
    ) {
        self.obs.set_now_hint(ctx.now());
        let wait_cycles = ctx
            .breakdown
            .get(Phase::InvalidateIotlb)
            .saturating_sub(wait_start);
        self.obs.trace(
            ctx.now(),
            ctx.core.0,
            Some(dev.0),
            EventKind::IotlbInvalidate {
                pages,
                wait_cycles: wait_cycles.0,
            },
        );
        let spun = self.lock.stats().total_spin.saturating_sub(spin_before);
        if spun > Cycles::ZERO {
            self.obs.trace(
                ctx.now(),
                ctx.core.0,
                Some(dev.0),
                EventKind::LockContention {
                    lock: "invalq".into(),
                    spin_cycles: spun.0,
                },
            );
        }
    }

    /// Synchronously flushes every cached translation of `dev` with a
    /// single domain-selective flush command. This is what deferred
    /// protection pays once per drained batch (§2.2.1: every 250 unmaps or
    /// 10 ms).
    pub fn flush_device_sync(&self, ctx: &mut CoreCtx, iotlb: &Mutex<Iotlb>, dev: DeviceId) {
        // A domain-selective flush supersedes any pending page
        // invalidations for this device: purge them from every core's
        // ring so they are not re-posted after the flush.
        if let Some(b) = &self.batch {
            for ring in &b.rings {
                ring.purge_device(ctx, &self.obs, dev);
            }
        }
        obs::profile::scope(ctx, "invalq_flush", |ctx| {
            let spin_before = self.lock.stats().total_spin;
            let wait_start = ctx.breakdown.get(Phase::InvalidateIotlb);
            self.with_lockset(ctx, |ctx| {
                ctx.charge(Phase::InvalidateIotlb, ctx.cost.inval_queue_post);
                iotlb.lock().invalidate_device(dev);
                self.flush_commands.inc();
                ctx.charge(Phase::InvalidateIotlb, ctx.cost.global_iotlb_flush);
                self.waits.inc();
            });
            // pages = 0 marks a full device flush.
            self.trace_op(ctx, dev, 0, wait_start, spin_before);
        });
    }

    /// Statistics snapshot (thin view over the registry counters).
    pub fn stats(&self) -> InvalQueueStats {
        InvalQueueStats {
            page_commands: self.page_commands.get(),
            flush_commands: self.flush_commands.get(),
            waits: self.waits.get(),
        }
    }

    /// Clears statistics (lock contention stats included).
    pub fn reset_stats(&self) {
        self.page_commands.reset();
        self.flush_commands.reset();
        self.waits.reset();
        self.lock.reset_stats();
        if let Some(b) = &self.batch {
            b.pending_appended.reset();
            b.drains.reset();
            for ring in &b.rings {
                ring.lock().reset_stats();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Perms, PtEntry};
    use memsim::Pfn;
    use simcore::{CoreId, CostModel, Cycles};
    use std::sync::Arc;

    const DEV: DeviceId = DeviceId(0);

    fn ctx() -> CoreCtx {
        CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()))
    }

    fn entry() -> PtEntry {
        PtEntry {
            pfn: Pfn(1),
            perms: Perms::ReadWrite,
        }
    }

    #[test]
    fn sync_invalidation_removes_entry_and_charges_wait() {
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(8));
        let mut c = ctx();
        tlb.lock().insert(DEV, IovaPage(3), entry());
        q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(3));
        assert!(!tlb.lock().contains(DEV, IovaPage(3)));
        // Cost at least the hardware wait (plus post + lock).
        assert!(c.breakdown.get(Phase::InvalidateIotlb) >= c.cost.iotlb_inval_wait);
        assert_eq!(q.stats().page_commands, 1);
        assert_eq!(q.stats().waits, 1);
    }

    #[test]
    fn wait_scales_with_active_cores() {
        let run = |cores: usize| {
            let q = InvalQueue::new();
            let tlb = Mutex::new(Iotlb::new(8));
            let mut c = ctx();
            c.active_cores = cores;
            q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(1));
            c.breakdown.get(Phase::InvalidateIotlb)
        };
        assert!(run(16) > run(1) * 2);
    }

    #[test]
    fn contiguous_batch_is_one_command() {
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(64));
        let mut c = ctx();
        // A 16-page TSO buffer: one range command, one wait.
        let pages: Vec<IovaPage> = (0..16).map(IovaPage).collect();
        for &p in &pages {
            tlb.lock().insert(DEV, p, entry());
        }
        q.invalidate_pages_sync(&mut c, &tlb, DEV, &pages);
        for &p in &pages {
            assert!(!tlb.lock().contains(DEV, p));
        }
        assert_eq!(q.stats().page_commands, 1);
        assert!(c.breakdown.get(Phase::InvalidateIotlb) < c.cost.iotlb_inval_wait * 2);
    }

    #[test]
    fn scattered_batch_charges_per_run() {
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(64));
        let mut c = ctx();
        let pages: Vec<IovaPage> = [0u64, 1, 5, 9, 10].into_iter().map(IovaPage).collect();
        for &p in &pages {
            tlb.lock().insert(DEV, p, entry());
        }
        q.invalidate_pages_sync(&mut c, &tlb, DEV, &pages);
        for &p in &pages {
            assert!(!tlb.lock().contains(DEV, p));
        }
        assert_eq!(q.stats().page_commands, 3, "runs: [0,1] [5] [9,10]");
        assert_eq!(q.stats().waits, 1, "one lock hold / wait descriptor");
        assert!(c.breakdown.get(Phase::InvalidateIotlb) >= c.cost.iotlb_inval_wait * 3);
    }

    #[test]
    fn empty_batch_is_free() {
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(8));
        let mut c = ctx();
        q.invalidate_pages_sync(&mut c, &tlb, DEV, &[]);
        assert_eq!(c.now(), Cycles::ZERO);
        assert_eq!(q.stats().waits, 0);
    }

    #[test]
    fn device_flush_is_one_command() {
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(1024));
        let mut c = ctx();
        for i in 0..250 {
            tlb.lock().insert(DEV, IovaPage(i), entry());
        }
        q.flush_device_sync(&mut c, &tlb, DEV);
        assert!(tlb.lock().is_empty());
        assert_eq!(q.stats().flush_commands, 1);
        // A single flush is far cheaper than 250 selective invalidations.
        let flush_cost = c.breakdown.get(Phase::InvalidateIotlb);
        assert!(flush_cost < c.cost.iotlb_inval_wait * 10);
    }

    #[test]
    fn waits_counted_exactly_once_per_sync_op() {
        // Regression: a scattered batch posts several range commands but
        // completes exactly ONE wait descriptor; mixing page ops and
        // device flushes never double-counts.
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(64));
        let mut c = ctx();
        let scattered: Vec<IovaPage> = [0u64, 2, 4, 6].into_iter().map(IovaPage).collect();
        q.invalidate_pages_sync(&mut c, &tlb, DEV, &scattered);
        assert_eq!(q.stats().waits, 1);
        q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(100));
        assert_eq!(q.stats().waits, 2);
        q.flush_device_sync(&mut c, &tlb, DEV);
        assert_eq!(q.stats().waits, 3);
        q.invalidate_pages_sync(&mut c, &tlb, DEV, &[]);
        assert_eq!(q.stats().waits, 3, "empty batch posts no wait descriptor");
        assert_eq!(q.stats().page_commands, 4 + 1);
        assert_eq!(q.stats().flush_commands, 1);
    }

    #[test]
    fn sync_ops_emit_iotlb_invalidate_events() {
        let shared = obs::Obs::isolated();
        let q = InvalQueue::with_obs(shared.clone());
        let tlb = Mutex::new(Iotlb::new(8));
        let mut c = ctx();
        q.invalidate_pages_sync(&mut c, &tlb, DEV, &[IovaPage(1), IovaPage(2)]);
        q.flush_device_sync(&mut c, &tlb, DEV);
        let events = shared.tracer().events();
        let invs: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                obs::EventKind::IotlbInvalidate { pages, wait_cycles } => {
                    Some((pages, wait_cycles))
                }
                _ => None,
            })
            .collect();
        assert_eq!(invs.len(), 2);
        assert_eq!(invs[0].0, 2, "page count recorded");
        assert!(invs[0].1 > 0, "wait cycles recorded");
        assert_eq!(invs[1].0, 0, "device flush marked with pages=0");
        // Stats view and registry agree — single source of truth.
        let snap = shared.registry().snapshot();
        assert_eq!(snap.counter("invalq", "waits", None), Some(q.stats().waits));
        assert_eq!(
            snap.counter("invalq", "page_commands", None),
            Some(q.stats().page_commands)
        );
    }

    #[test]
    fn batched_invalidations_defer_until_threshold() {
        let q = InvalQueue::with_obs_batched(Obs::isolated(), 4, 4);
        let tlb = Mutex::new(Iotlb::new(64));
        let mut c = ctx();
        for i in 0..4 {
            tlb.lock().insert(DEV, IovaPage(10 + i), entry());
        }
        // Three unmap invalidations: all pending, window still open.
        for i in 0..3 {
            q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(10 + i));
            assert!(tlb.lock().contains(DEV, IovaPage(10 + i)), "still cached");
        }
        assert_eq!(q.pending_len(), 3);
        assert_eq!(q.stats().page_commands, 0, "nothing posted yet");
        // The fourth append reaches the threshold and drains the ring:
        // one contiguous run, one command, one wait, window closed.
        q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(13));
        assert_eq!(q.pending_len(), 0);
        for i in 0..4 {
            assert!(!tlb.lock().contains(DEV, IovaPage(10 + i)));
        }
        assert_eq!(q.stats().page_commands, 1);
        assert_eq!(q.stats().waits, 1);
    }

    #[test]
    fn batch_drain_posts_per_device_runs_in_append_order() {
        // Concurrent unmaps interleaving two devices on one core: the
        // drain must preserve append order, splitting into one sync op
        // per consecutive same-device run.
        let shared = Obs::isolated();
        let q = InvalQueue::with_obs_batched(shared.clone(), 1, 3);
        let tlb = Mutex::new(Iotlb::new(64));
        let mut c = ctx();
        let d2 = DeviceId(2);
        q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(1));
        q.invalidate_page_sync(&mut c, &tlb, d2, IovaPage(2));
        q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(3));
        let devs: Vec<u16> = shared
            .tracer()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                obs::EventKind::IotlbInvalidate { .. } => e.device,
                _ => None,
            })
            .collect();
        assert_eq!(devs, vec![DEV.0, d2.0, DEV.0], "append order preserved");
        assert_eq!(q.stats().waits, 3, "one wait per device run");
    }

    #[test]
    fn rings_drain_independently_per_core() {
        let q = InvalQueue::with_obs_batched(Obs::isolated(), 2, 2);
        let tlb = Mutex::new(Iotlb::new(64));
        let mut c0 = ctx();
        let mut c1 = CoreCtx::new(CoreId(1), Arc::new(CostModel::haswell_2_4ghz()));
        q.invalidate_page_sync(&mut c0, &tlb, DEV, IovaPage(1));
        q.invalidate_page_sync(&mut c1, &tlb, DEV, IovaPage(2));
        assert_eq!(q.pending_len(), 2, "each core one entry, no drain");
        // Core 0 reaches its threshold; core 1's ring must stay pending.
        q.invalidate_page_sync(&mut c0, &tlb, DEV, IovaPage(3));
        assert_eq!(q.pending_len(), 1);
        assert_eq!(q.stats().page_commands, 2, "runs [1] and [3]");
        // Teardown closes every remaining window, cross-core.
        q.drain_pending_all(&mut c0, &tlb);
        assert_eq!(q.pending_len(), 0);
        assert_eq!(q.stats().waits, 2);
    }

    #[test]
    fn device_flush_supersedes_pending_invalidations() {
        let q = InvalQueue::with_obs_batched(Obs::isolated(), 1, 100);
        let tlb = Mutex::new(Iotlb::new(64));
        let mut c = ctx();
        let d2 = DeviceId(2);
        tlb.lock().insert(DEV, IovaPage(1), entry());
        q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(1));
        q.invalidate_page_sync(&mut c, &tlb, d2, IovaPage(2));
        assert_eq!(q.pending_len(), 2);
        q.flush_device_sync(&mut c, &tlb, DEV);
        assert!(!tlb.lock().contains(DEV, IovaPage(1)), "flush closes it");
        assert_eq!(q.pending_len(), 1, "other device's entry survives");
        q.drain_pending_all(&mut c, &tlb);
        assert_eq!(
            q.stats().page_commands,
            1,
            "the flushed device's pending page is never re-posted"
        );
    }

    #[test]
    fn unbatched_queue_has_no_pending_state() {
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(8));
        let mut c = ctx();
        assert!(!q.batching());
        assert_eq!(q.pending_len(), 0);
        // Drains are no-ops, not panics.
        q.drain_pending_local(&mut c, &tlb);
        q.drain_pending_all(&mut c, &tlb);
        assert_eq!(q.stats(), InvalQueueStats::default());
    }

    #[test]
    fn reset_stats_clears_everything() {
        let q = InvalQueue::new();
        let tlb = Mutex::new(Iotlb::new(8));
        let mut c = ctx();
        q.invalidate_page_sync(&mut c, &tlb, DEV, IovaPage(1));
        q.reset_stats();
        assert_eq!(q.stats(), InvalQueueStats::default());
        assert_eq!(q.lock().stats().acquisitions, 0);
    }
}
