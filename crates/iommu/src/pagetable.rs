//! The per-device 4-level I/O page table.

use crate::{IovaPage, Perms};
use memsim::Pfn;
use std::collections::HashMap;
use std::fmt;

/// Bits of IOVA page number consumed per radix level (like x86-64).
const LEVEL_BITS: u32 = 9;
/// Number of levels: 4 levels × 9 bits + 12-bit page offset = 48 bits.
const LEVELS: u32 = 4;

/// A leaf page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtEntry {
    /// The physical frame the IOVA page maps to.
    pub pfn: Pfn,
    /// Device access rights.
    pub perms: Perms,
}

/// Page-table operation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtError {
    /// `map` targeted an already-mapped IOVA page.
    AlreadyMapped(IovaPage),
    /// `unmap` targeted an unmapped IOVA page.
    NotMapped(IovaPage),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::AlreadyMapped(p) => write!(f, "IOVA page {p} is already mapped"),
            PtError::NotMapped(p) => write!(f, "IOVA page {p} is not mapped"),
        }
    }
}

impl std::error::Error for PtError {}

#[derive(Debug, Default)]
enum Node {
    #[default]
    Empty,
    Table(HashMap<u16, Node>),
    Leaf(PtEntry),
}

/// A 4-level radix page table translating 36-bit IOVA page numbers to
/// physical frames, one per device domain.
///
/// The radix structure is real (walks descend level by level) so the
/// `mapped_pages` accounting, sparseness, and level-granular behavior match
/// genuine hardware tables; the cost of updates is charged by the caller
/// ([`crate::Iommu`]) using the calibrated cost model.
#[derive(Debug, Default)]
pub struct IoPageTable {
    root: HashMap<u16, Node>,
    mapped: u64,
}

fn level_index(page: IovaPage, level: u32) -> u16 {
    // level 0 is the root (most significant 9 bits of the page number).
    let shift = (LEVELS - 1 - level) * LEVEL_BITS;
    ((page.0 >> shift) & ((1 << LEVEL_BITS) - 1)) as u16
}

impl IoPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped IOVA pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Installs a mapping for one IOVA page.
    ///
    /// # Errors
    ///
    /// Fails with [`PtError::AlreadyMapped`] if the page already has a
    /// mapping (the DMA API never overwrites live mappings).
    pub fn map(&mut self, page: IovaPage, pfn: Pfn, perms: Perms) -> Result<(), PtError> {
        let mut table = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = level_index(page, level);
            let node = table
                .entry(idx)
                .or_insert_with(|| Node::Table(HashMap::new()));
            table = match node {
                Node::Table(t) => t,
                _ => unreachable!("interior node must be a table"),
            };
        }
        let idx = level_index(page, LEVELS - 1);
        match table.get(&idx) {
            Some(Node::Leaf(_)) => return Err(PtError::AlreadyMapped(page)),
            Some(_) => unreachable!("leaf level holds only leaves"),
            None => {}
        }
        table.insert(idx, Node::Leaf(PtEntry { pfn, perms }));
        self.mapped += 1;
        Ok(())
    }

    /// Removes the mapping of one IOVA page, returning the removed entry.
    ///
    /// Note: removing the mapping does **not** remove any cached IOTLB
    /// entry — that requires an explicit invalidation (see
    /// [`crate::InvalQueue`]).
    pub fn unmap(&mut self, page: IovaPage) -> Result<PtEntry, PtError> {
        fn go(
            table: &mut HashMap<u16, Node>,
            page: IovaPage,
            level: u32,
        ) -> Result<PtEntry, PtError> {
            let idx = level_index(page, level);
            if level == LEVELS - 1 {
                return match table.remove(&idx) {
                    Some(Node::Leaf(e)) => Ok(e),
                    Some(_) => unreachable!("leaf level holds only leaves"),
                    None => Err(PtError::NotMapped(page)),
                };
            }
            let node = table.get_mut(&idx).ok_or(PtError::NotMapped(page))?;
            let inner = match node {
                Node::Table(t) => t,
                _ => unreachable!("interior node must be a table"),
            };
            let entry = go(inner, page, level + 1)?;
            if inner.is_empty() {
                table.remove(&idx); // prune empty interior tables
            }
            Ok(entry)
        }
        let e = go(&mut self.root, page, 0)?;
        self.mapped -= 1;
        Ok(e)
    }

    /// Walks the table for one IOVA page (the hardware page walk on an
    /// IOTLB miss).
    pub fn translate(&self, page: IovaPage) -> Option<PtEntry> {
        let mut table = &self.root;
        for level in 0..LEVELS - 1 {
            match table.get(&level_index(page, level))? {
                Node::Table(t) => table = t,
                _ => unreachable!("interior node must be a table"),
            }
        }
        match table.get(&level_index(page, LEVELS - 1))? {
            Node::Leaf(e) => Some(*e),
            _ => unreachable!("leaf level holds only leaves"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap_roundtrip() {
        let mut pt = IoPageTable::new();
        let page = IovaPage(0x1234);
        pt.map(page, Pfn(7), Perms::Write).unwrap();
        assert_eq!(
            pt.translate(page),
            Some(PtEntry {
                pfn: Pfn(7),
                perms: Perms::Write
            })
        );
        assert_eq!(pt.mapped_pages(), 1);
        let e = pt.unmap(page).unwrap();
        assert_eq!(e.pfn, Pfn(7));
        assert_eq!(pt.translate(page), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = IoPageTable::new();
        let page = IovaPage(5);
        pt.map(page, Pfn(1), Perms::Read).unwrap();
        assert_eq!(
            pt.map(page, Pfn(2), Perms::Read),
            Err(PtError::AlreadyMapped(page))
        );
        // Original mapping intact.
        assert_eq!(pt.translate(page).unwrap().pfn, Pfn(1));
    }

    #[test]
    fn unmap_missing_rejected() {
        let mut pt = IoPageTable::new();
        assert_eq!(pt.unmap(IovaPage(9)), Err(PtError::NotMapped(IovaPage(9))));
    }

    #[test]
    fn distant_pages_do_not_interfere() {
        let mut pt = IoPageTable::new();
        // Pages that differ only in the top radix level.
        let a = IovaPage(0);
        let b = IovaPage(1 << 27); // top-level bit of the 36-bit page number
        pt.map(a, Pfn(1), Perms::Read).unwrap();
        pt.map(b, Pfn(2), Perms::Write).unwrap();
        assert_eq!(pt.translate(a).unwrap().pfn, Pfn(1));
        assert_eq!(pt.translate(b).unwrap().pfn, Pfn(2));
        pt.unmap(a).unwrap();
        assert_eq!(pt.translate(a), None);
        assert_eq!(pt.translate(b).unwrap().pfn, Pfn(2));
    }

    #[test]
    fn adjacent_pages_in_same_leaf_table() {
        let mut pt = IoPageTable::new();
        for i in 0..512u64 {
            pt.map(IovaPage(i), Pfn(i + 100), Perms::ReadWrite).unwrap();
        }
        assert_eq!(pt.mapped_pages(), 512);
        for i in 0..512u64 {
            assert_eq!(pt.translate(IovaPage(i)).unwrap().pfn, Pfn(i + 100));
        }
    }

    #[test]
    fn empty_interior_tables_are_pruned() {
        let mut pt = IoPageTable::new();
        pt.map(IovaPage(0x1234), Pfn(1), Perms::Read).unwrap();
        pt.unmap(IovaPage(0x1234)).unwrap();
        assert!(pt.root.is_empty(), "interior tables freed after unmap");
    }

    #[test]
    fn full_48bit_range_addressable() {
        let mut pt = IoPageTable::new();
        let top = IovaPage((1u64 << 36) - 1); // highest page of 48-bit space
        pt.map(top, Pfn(42), Perms::ReadWrite).unwrap();
        assert_eq!(pt.translate(top).unwrap().pfn, Pfn(42));
    }
}
