//! The per-device 4-level I/O page table.
//!
//! Nodes live in two flat arenas (interior tables and leaf tables) with
//! dense 512-entry child arrays, so a page walk is three indexed
//! pointer-chases instead of four hash lookups. Freed nodes go on a
//! free list and are reused by later `map` calls, which keeps the
//! steady-state map/unmap cycle of the strict engines allocation-free.

use crate::{IovaPage, Perms};
use memsim::Pfn;
use std::fmt;

/// Bits of IOVA page number consumed per radix level (like x86-64).
const LEVEL_BITS: u32 = 9;
/// Number of levels: 4 levels × 9 bits + 12-bit page offset = 48 bits.
const LEVELS: u32 = 4;
/// Children per node.
const FANOUT: usize = 1 << LEVEL_BITS;
/// Absent-child sentinel in interior child arrays.
const NO_CHILD: u32 = u32::MAX;

/// A leaf page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtEntry {
    /// The physical frame the IOVA page maps to.
    pub pfn: Pfn,
    /// Device access rights.
    pub perms: Perms,
}

/// Page-table operation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtError {
    /// `map` targeted an already-mapped IOVA page.
    AlreadyMapped(IovaPage),
    /// `unmap` targeted an unmapped IOVA page.
    NotMapped(IovaPage),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::AlreadyMapped(p) => write!(f, "IOVA page {p} is already mapped"),
            PtError::NotMapped(p) => write!(f, "IOVA page {p} is not mapped"),
        }
    }
}

impl std::error::Error for PtError {}

/// An interior table: dense child array plus a population count so empty
/// tables can be pruned without scanning.
#[derive(Debug)]
struct Interior {
    children: Box<[u32]>,
    used: u16,
}

impl Interior {
    fn new() -> Self {
        Interior {
            children: vec![NO_CHILD; FANOUT].into_boxed_slice(),
            used: 0,
        }
    }
}

/// A last-level table holding the actual translations.
#[derive(Debug)]
struct LeafTable {
    entries: Box<[Option<PtEntry>]>,
    used: u16,
}

impl LeafTable {
    fn new() -> Self {
        LeafTable {
            entries: vec![None; FANOUT].into_boxed_slice(),
            used: 0,
        }
    }
}

/// A 4-level radix page table translating 36-bit IOVA page numbers to
/// physical frames, one per device domain.
///
/// The radix structure is real (walks descend level by level) so the
/// `mapped_pages` accounting, sparseness, and level-granular behavior match
/// genuine hardware tables; the cost of updates is charged by the caller
/// ([`crate::Iommu`]) using the calibrated cost model. Unlike hash-map
/// nodes, the dense arena layout also matches how hardware walks memory:
/// each level is one array index off a physical node pointer.
#[derive(Debug)]
pub struct IoPageTable {
    /// Interior nodes; index 0 is the root and is never freed.
    interiors: Vec<Interior>,
    leaves: Vec<LeafTable>,
    free_interiors: Vec<u32>,
    free_leaves: Vec<u32>,
    mapped: u64,
}

impl Default for IoPageTable {
    fn default() -> Self {
        IoPageTable {
            interiors: vec![Interior::new()],
            leaves: Vec::new(),
            free_interiors: Vec::new(),
            free_leaves: Vec::new(),
            mapped: 0,
        }
    }
}

fn level_index(page: IovaPage, level: u32) -> usize {
    // level 0 is the root (most significant 9 bits of the page number).
    let shift = (LEVELS - 1 - level) * LEVEL_BITS;
    ((page.0 >> shift) & ((1 << LEVEL_BITS) - 1)) as usize
}

impl IoPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped IOVA pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Live node counts `(interior tables, leaf tables)` — the root
    /// counts even when empty. Diagnostics for pruning/footprint tests.
    pub fn live_nodes(&self) -> (usize, usize) {
        (
            self.interiors.len() - self.free_interiors.len(),
            self.leaves.len() - self.free_leaves.len(),
        )
    }

    fn alloc_interior(&mut self) -> u32 {
        match self.free_interiors.pop() {
            Some(i) => i, // freed nodes are already reset (see free_interior)
            None => {
                self.interiors.push(Interior::new());
                (self.interiors.len() - 1) as u32
            }
        }
    }

    fn alloc_leaf(&mut self) -> u32 {
        match self.free_leaves.pop() {
            Some(i) => i,
            None => {
                self.leaves.push(LeafTable::new());
                (self.leaves.len() - 1) as u32
            }
        }
    }

    /// Installs a mapping for one IOVA page.
    ///
    /// # Errors
    ///
    /// Fails with [`PtError::AlreadyMapped`] if the page already has a
    /// mapping (the DMA API never overwrites live mappings).
    pub fn map(&mut self, page: IovaPage, pfn: Pfn, perms: Perms) -> Result<(), PtError> {
        let mut idx = 0usize;
        for level in 0..LEVELS - 2 {
            let slot = level_index(page, level);
            let child = self.interiors[idx].children[slot];
            idx = if child == NO_CHILD {
                let new = self.alloc_interior();
                self.interiors[idx].children[slot] = new;
                self.interiors[idx].used += 1;
                new as usize
            } else {
                child as usize
            };
        }
        let slot = level_index(page, LEVELS - 2);
        let child = self.interiors[idx].children[slot];
        let leaf_idx = if child == NO_CHILD {
            let new = self.alloc_leaf();
            self.interiors[idx].children[slot] = new;
            self.interiors[idx].used += 1;
            new as usize
        } else {
            child as usize
        };
        let li = level_index(page, LEVELS - 1);
        let leaf = &mut self.leaves[leaf_idx];
        if leaf.entries[li].is_some() {
            return Err(PtError::AlreadyMapped(page));
        }
        leaf.entries[li] = Some(PtEntry { pfn, perms });
        leaf.used += 1;
        self.mapped += 1;
        Ok(())
    }

    /// Removes the mapping of one IOVA page, returning the removed entry.
    ///
    /// Note: removing the mapping does **not** remove any cached IOTLB
    /// entry — that requires an explicit invalidation (see
    /// [`crate::InvalQueue`]).
    pub fn unmap(&mut self, page: IovaPage) -> Result<PtEntry, PtError> {
        // Walk down, recording the (interior, slot) path for pruning.
        let mut path = [(0usize, 0usize); (LEVELS - 1) as usize];
        let mut idx = 0usize;
        for level in 0..LEVELS - 1 {
            let slot = level_index(page, level);
            path[level as usize] = (idx, slot);
            let child = self.interiors[idx].children[slot];
            if child == NO_CHILD {
                return Err(PtError::NotMapped(page));
            }
            idx = child as usize;
        }
        let leaf_idx = idx;
        let li = level_index(page, LEVELS - 1);
        let leaf = &mut self.leaves[leaf_idx];
        let entry = leaf.entries[li].take().ok_or(PtError::NotMapped(page))?;
        leaf.used -= 1;
        self.mapped -= 1;

        // Prune empty tables bottom-up, returning them to the free lists.
        if leaf.used == 0 {
            self.free_leaves.push(leaf_idx as u32);
            let mut unlink = true;
            for &(parent, slot) in path.iter().rev() {
                if unlink {
                    self.interiors[parent].children[slot] = NO_CHILD;
                    self.interiors[parent].used -= 1;
                }
                unlink = self.interiors[parent].used == 0 && parent != 0;
                if unlink {
                    self.free_interiors.push(parent as u32);
                }
            }
        }
        Ok(entry)
    }

    /// Walks the table for one IOVA page (the hardware page walk on an
    /// IOTLB miss).
    pub fn translate(&self, page: IovaPage) -> Option<PtEntry> {
        let mut idx = 0usize;
        for level in 0..LEVELS - 1 {
            let child = self.interiors[idx].children[level_index(page, level)];
            if child == NO_CHILD {
                return None;
            }
            idx = child as usize;
        }
        self.leaves[idx].entries[level_index(page, LEVELS - 1)]
    }
}

/// The previous `HashMap`-of-nodes implementation, kept as the
/// behavioral oracle for the property tests below.
#[cfg(test)]
mod oracle {
    use super::{level_index, PtEntry, PtError, LEVELS};
    use crate::{IovaPage, Perms};
    use memsim::Pfn;
    use std::collections::HashMap;

    #[derive(Debug, Default)]
    enum Node {
        #[default]
        Empty,
        Table(HashMap<u16, Node>),
        Leaf(PtEntry),
    }

    #[derive(Debug, Default)]
    pub struct OracleIoPageTable {
        root: HashMap<u16, Node>,
        mapped: u64,
    }

    impl OracleIoPageTable {
        pub fn mapped_pages(&self) -> u64 {
            self.mapped
        }

        pub fn map(&mut self, page: IovaPage, pfn: Pfn, perms: Perms) -> Result<(), PtError> {
            let mut table = &mut self.root;
            for level in 0..LEVELS - 1 {
                let idx = level_index(page, level) as u16;
                let node = table
                    .entry(idx)
                    .or_insert_with(|| Node::Table(HashMap::new()));
                table = match node {
                    Node::Table(t) => t,
                    _ => unreachable!("interior node must be a table"),
                };
            }
            let idx = level_index(page, LEVELS - 1) as u16;
            match table.get(&idx) {
                Some(Node::Leaf(_)) => return Err(PtError::AlreadyMapped(page)),
                Some(_) => unreachable!("leaf level holds only leaves"),
                None => {}
            }
            table.insert(idx, Node::Leaf(PtEntry { pfn, perms }));
            self.mapped += 1;
            Ok(())
        }

        pub fn unmap(&mut self, page: IovaPage) -> Result<PtEntry, PtError> {
            fn go(
                table: &mut HashMap<u16, Node>,
                page: IovaPage,
                level: u32,
            ) -> Result<PtEntry, PtError> {
                let idx = level_index(page, level) as u16;
                if level == LEVELS - 1 {
                    return match table.remove(&idx) {
                        Some(Node::Leaf(e)) => Ok(e),
                        Some(_) => unreachable!("leaf level holds only leaves"),
                        None => Err(PtError::NotMapped(page)),
                    };
                }
                let node = table.get_mut(&idx).ok_or(PtError::NotMapped(page))?;
                let inner = match node {
                    Node::Table(t) => t,
                    _ => unreachable!("interior node must be a table"),
                };
                let entry = go(inner, page, level + 1)?;
                if inner.is_empty() {
                    table.remove(&idx); // prune empty interior tables
                }
                Ok(entry)
            }
            let e = go(&mut self.root, page, 0)?;
            self.mapped -= 1;
            Ok(e)
        }

        pub fn translate(&self, page: IovaPage) -> Option<PtEntry> {
            let mut table = &self.root;
            for level in 0..LEVELS - 1 {
                match table.get(&(level_index(page, level) as u16))? {
                    Node::Table(t) => table = t,
                    _ => unreachable!("interior node must be a table"),
                }
            }
            match table.get(&(level_index(page, LEVELS - 1) as u16))? {
                Node::Leaf(e) => Some(*e),
                _ => unreachable!("leaf level holds only leaves"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::OracleIoPageTable;
    use super::*;
    use simcore::SimRng;

    #[test]
    fn map_translate_unmap_roundtrip() {
        let mut pt = IoPageTable::new();
        let page = IovaPage(0x1234);
        pt.map(page, Pfn(7), Perms::Write).unwrap();
        assert_eq!(
            pt.translate(page),
            Some(PtEntry {
                pfn: Pfn(7),
                perms: Perms::Write
            })
        );
        assert_eq!(pt.mapped_pages(), 1);
        let e = pt.unmap(page).unwrap();
        assert_eq!(e.pfn, Pfn(7));
        assert_eq!(pt.translate(page), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = IoPageTable::new();
        let page = IovaPage(5);
        pt.map(page, Pfn(1), Perms::Read).unwrap();
        assert_eq!(
            pt.map(page, Pfn(2), Perms::Read),
            Err(PtError::AlreadyMapped(page))
        );
        // Original mapping intact.
        assert_eq!(pt.translate(page).unwrap().pfn, Pfn(1));
    }

    #[test]
    fn unmap_missing_rejected() {
        let mut pt = IoPageTable::new();
        assert_eq!(pt.unmap(IovaPage(9)), Err(PtError::NotMapped(IovaPage(9))));
    }

    #[test]
    fn distant_pages_do_not_interfere() {
        let mut pt = IoPageTable::new();
        // Pages that differ only in the top radix level.
        let a = IovaPage(0);
        let b = IovaPage(1 << 27); // top-level bit of the 36-bit page number
        pt.map(a, Pfn(1), Perms::Read).unwrap();
        pt.map(b, Pfn(2), Perms::Write).unwrap();
        assert_eq!(pt.translate(a).unwrap().pfn, Pfn(1));
        assert_eq!(pt.translate(b).unwrap().pfn, Pfn(2));
        pt.unmap(a).unwrap();
        assert_eq!(pt.translate(a), None);
        assert_eq!(pt.translate(b).unwrap().pfn, Pfn(2));
    }

    #[test]
    fn adjacent_pages_in_same_leaf_table() {
        let mut pt = IoPageTable::new();
        for i in 0..512u64 {
            pt.map(IovaPage(i), Pfn(i + 100), Perms::ReadWrite).unwrap();
        }
        assert_eq!(pt.mapped_pages(), 512);
        // One shared leaf table (plus the three interior levels above it).
        assert_eq!(pt.live_nodes(), (3, 1));
        for i in 0..512u64 {
            assert_eq!(pt.translate(IovaPage(i)).unwrap().pfn, Pfn(i + 100));
        }
    }

    #[test]
    fn empty_interior_tables_are_pruned() {
        let mut pt = IoPageTable::new();
        pt.map(IovaPage(0x1234), Pfn(1), Perms::Read).unwrap();
        assert_eq!(pt.live_nodes(), (3, 1));
        pt.unmap(IovaPage(0x1234)).unwrap();
        assert_eq!(pt.live_nodes(), (1, 0), "interior tables freed after unmap");
    }

    #[test]
    fn freed_nodes_are_recycled() {
        let mut pt = IoPageTable::new();
        for _ in 0..1_000 {
            pt.map(IovaPage(0x9999), Pfn(3), Perms::Write).unwrap();
            pt.unmap(IovaPage(0x9999)).unwrap();
        }
        // The arena never grows past one path's worth of nodes.
        assert_eq!(pt.interiors.len(), 3);
        assert_eq!(pt.leaves.len(), 1);
        assert_eq!(pt.live_nodes(), (1, 0));
    }

    #[test]
    fn full_48bit_range_addressable() {
        let mut pt = IoPageTable::new();
        let top = IovaPage((1u64 << 36) - 1); // highest page of 48-bit space
        pt.map(top, Pfn(42), Perms::ReadWrite).unwrap();
        assert_eq!(pt.translate(top).unwrap().pfn, Pfn(42));
    }

    /// Randomized map/unmap/translate against the previous nested-map
    /// implementation: every return value — including the exact error —
    /// and the `mapped_pages` count must match at each step.
    #[test]
    fn matches_oracle_on_random_workloads() {
        let mut rng = SimRng::seed(0x9a9e);
        let mut pt = IoPageTable::new();
        let mut oracle = OracleIoPageTable::default();
        // A mix of clustered pages (sharing tables) and far-flung ones.
        let page_pool: Vec<IovaPage> = (0..48)
            .map(|i| {
                if i % 3 == 0 {
                    IovaPage(rng.below(1 << 36))
                } else {
                    IovaPage(0x4_0000 + rng.below(1024))
                }
            })
            .collect();
        for step in 0..6_000 {
            let page = page_pool[rng.below(page_pool.len() as u64) as usize];
            match rng.below(4) {
                0 | 1 => {
                    let pfn = Pfn(rng.below(1 << 24));
                    assert_eq!(
                        pt.map(page, pfn, Perms::ReadWrite),
                        oracle.map(page, pfn, Perms::ReadWrite),
                        "step {step}"
                    );
                }
                2 => assert_eq!(pt.unmap(page), oracle.unmap(page), "step {step}"),
                _ => assert_eq!(pt.translate(page), oracle.translate(page), "step {step}"),
            }
            assert_eq!(pt.mapped_pages(), oracle.mapped_pages(), "step {step}");
        }
        assert!(pt.mapped_pages() > 0, "workload must leave live mappings");
    }
}
