//! Core IOMMU types: IOVAs, permissions, devices, faults.

// lint: allow(panic) — address-width invariants are constructor contracts, documented under # Panics

use memsim::{PAGE_SHIFT, PAGE_SIZE};
use std::fmt;

/// Width of the I/O virtual address space (x86: 48 bits, §5.3).
pub const IOVA_BITS: u32 = 48;

/// An I/O virtual address — the address a device puts in a DMA, translated
/// by the IOMMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Iova(pub u64);

impl Iova {
    /// Creates an IOVA.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in the 48-bit IOVA space.
    pub fn new(v: u64) -> Self {
        assert!(v < (1u64 << IOVA_BITS), "IOVA {v:#x} exceeds 48 bits");
        Iova(v)
    }

    /// Raw value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The IOVA page containing this address.
    pub const fn page(self) -> IovaPage {
        IovaPage(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the IOVA page.
    pub const fn page_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }

    /// Address advanced by `n` bytes.
    #[allow(clippy::should_implement_trait)] // `add` mirrors pointer::add
    pub fn add(self, n: u64) -> Iova {
        Iova(self.0.checked_add(n).expect("IOVA overflow"))
    }
}

impl fmt::Display for Iova {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iova:{:#x}", self.0)
    }
}

/// An IOVA page number (IOVA >> 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IovaPage(pub u64);

impl IovaPage {
    /// Creates an IOVA page number.
    pub const fn new(v: u64) -> Self {
        IovaPage(v)
    }

    /// Raw page number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The base IOVA of this page.
    pub const fn base(self) -> Iova {
        Iova(self.0 << PAGE_SHIFT)
    }

    /// The page `n` pages later.
    #[allow(clippy::should_implement_trait)] // `add` mirrors pointer::add
    pub fn add(self, n: u64) -> IovaPage {
        IovaPage(self.0.checked_add(n).expect("IOVA page overflow"))
    }
}

impl fmt::Display for IovaPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iovapage:{:#x}", self.0)
    }
}

/// A DMA-capable device (PCIe requester), identifying an IOMMU domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The direction of one DMA transaction, from the device's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// The device reads from memory (e.g. fetching a TX packet).
    Read,
    /// The device writes to memory (e.g. storing an RX packet).
    Write,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => f.write_str("read"),
            Access::Write => f.write_str("write"),
        }
    }
}

/// Access rights of an IOVA mapping: what the *device* may do with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Perms {
    /// Device may read only (buffers the CPU sends *to* the device).
    Read,
    /// Device may write only (buffers the device fills *for* the CPU).
    Write,
    /// Device may read and write.
    ReadWrite,
}

impl Perms {
    /// Whether these rights permit the given access.
    pub fn allows(self, access: Access) -> bool {
        matches!(
            (self, access),
            (Perms::ReadWrite, _) | (Perms::Read, Access::Read) | (Perms::Write, Access::Write)
        )
    }

    /// Least-upper-bound of two rights.
    pub fn union(self, other: Perms) -> Perms {
        if self == other {
            self
        } else {
            Perms::ReadWrite
        }
    }

    /// All three values, used to enumerate free lists.
    pub const ALL: [Perms; 3] = [Perms::Read, Perms::Write, Perms::ReadWrite];
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Perms::Read => f.write_str("r"),
            Perms::Write => f.write_str("w"),
            Perms::ReadWrite => f.write_str("rw"),
        }
    }
}

/// Why a DMA was blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultReason {
    /// No mapping exists for the IOVA page.
    NotMapped,
    /// A mapping exists but does not permit the access type.
    PermissionDenied,
}

impl fmt::Display for FaultReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultReason::NotMapped => f.write_str("not mapped"),
            FaultReason::PermissionDenied => f.write_str("permission denied"),
        }
    }
}

/// A blocked DMA, as recorded by the IOMMU's fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaFault {
    /// The offending device.
    pub device: DeviceId,
    /// The faulting address.
    pub iova: Iova,
    /// The attempted access.
    pub access: Access,
    /// Why it was blocked.
    pub reason: FaultReason,
}

impl fmt::Display for DmaFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DMA fault: {} {} at {} ({})",
            self.device, self.access, self.iova, self.reason
        )
    }
}

impl std::error::Error for DmaFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iova_page_math() {
        let iova = Iova::new(0x12_3456);
        assert_eq!(iova.page(), IovaPage(0x123));
        assert_eq!(iova.page_offset(), 0x456);
        assert_eq!(IovaPage(0x123).base(), Iova(0x12_3000));
        assert_eq!(iova.add(0x10), Iova(0x12_3466));
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn iova_must_fit_48_bits() {
        Iova::new(1u64 << 48);
    }

    #[test]
    fn perms_allow_matrix() {
        assert!(Perms::Read.allows(Access::Read));
        assert!(!Perms::Read.allows(Access::Write));
        assert!(Perms::Write.allows(Access::Write));
        assert!(!Perms::Write.allows(Access::Read));
        assert!(Perms::ReadWrite.allows(Access::Read));
        assert!(Perms::ReadWrite.allows(Access::Write));
    }

    #[test]
    fn perms_union() {
        assert_eq!(Perms::Read.union(Perms::Read), Perms::Read);
        assert_eq!(Perms::Read.union(Perms::Write), Perms::ReadWrite);
        assert_eq!(Perms::Write.union(Perms::ReadWrite), Perms::ReadWrite);
    }

    #[test]
    fn displays() {
        assert_eq!(Iova(0x1000).to_string(), "iova:0x1000");
        assert_eq!(Perms::ReadWrite.to_string(), "rw");
        let f = DmaFault {
            device: DeviceId(1),
            iova: Iova(0x2000),
            access: Access::Write,
            reason: FaultReason::NotMapped,
        };
        assert!(f.to_string().contains("dev1"));
        assert!(f.to_string().contains("not mapped"));
    }
}
