//! The IOMMU: OS-side management operations and device-side translation.

use crate::{
    Access, DeviceId, DmaFault, FaultReason, InvalQueue, IoPageTable, Iotlb, IotlbStats, Iova,
    IovaPage, Perms, PtEntry, PtError,
};
use memsim::{MemError, Pfn, PhysAddr, PhysMemory, PAGE_SIZE};
use obs::{Counter, EventKind, Obs};
use simcore::sync::{Mutex, RwLock};
use simcore::FxHashMap;
use simcore::{CoreCtx, Phase};
use std::fmt;

/// Sentinel `core` used on trace events initiated by a device rather
/// than a CPU (devices are not cores; see [`obs::Event::core`]).
pub const DEVICE_SIDE_CORE: u16 = u16::MAX;

/// Errors from OS-side IOMMU management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IommuError {
    /// A page-table operation failed.
    PageTable(PtError),
}

impl fmt::Display for IommuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IommuError::PageTable(e) => write!(f, "page table: {e}"),
        }
    }
}

impl std::error::Error for IommuError {}

impl From<PtError> for IommuError {
    fn from(e: PtError) -> Self {
        IommuError::PageTable(e)
    }
}

/// The simulated IOMMU.
///
/// One per machine: per-device page tables, a shared IOTLB, the global
/// invalidation queue, and a fault log. OS-side operations take a
/// [`CoreCtx`] and charge calibrated costs; device-side translation is free
/// of CPU cost (devices are not CPUs) but exercises the IOTLB for real.
///
/// # Examples
///
/// ```
/// use iommu::{DeviceId, Iommu, IovaPage, Perms};
/// use memsim::{NumaDomain, NumaTopology, PhysMemory};
/// use simcore::{CoreCtx, CoreId, CostModel};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mem = PhysMemory::new(NumaTopology::tiny(16));
/// let mmu = Iommu::new();
/// let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
///
/// let pfn = mem.alloc_frame(NumaDomain(0))?;
/// mmu.map_page(&mut ctx, DeviceId(0), IovaPage(0x10), pfn, Perms::Write)?;
/// mmu.dma_write(&mem, DeviceId(0), IovaPage(0x10).base(), b"packet")?;
/// assert_eq!(mem.read_vec(pfn.base(), 6)?, b"packet");
///
/// // Unmapping alone leaves any cached IOTLB entry usable (the deferred
/// // window); the synchronous invalidation closes it.
/// mmu.unmap_page_nosync(&mut ctx, DeviceId(0), IovaPage(0x10))?;
/// mmu.invalidate_page_sync(&mut ctx, DeviceId(0), IovaPage(0x10));
/// assert!(mmu.dma_write(&mem, DeviceId(0), IovaPage(0x10).base(), b"x").is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Iommu {
    tables: RwLock<FxHashMap<DeviceId, IoPageTable>>,
    iotlb: Mutex<Iotlb>,
    invalq: InvalQueue,
    faults: Mutex<Vec<DmaFault>>,
    obs: Obs,
    iotlb_hits: Counter,
    iotlb_misses: Counter,
    map_ops: Counter,
    unmap_ops: Counter,
    fault_ctr: Counter,
}

impl Default for Iommu {
    fn default() -> Self {
        Iommu::new()
    }
}

impl Iommu {
    /// Creates an IOMMU with the default hardware IOTLB capacity and a
    /// private, isolated telemetry handle.
    pub fn new() -> Self {
        Iommu::with_obs(Obs::isolated())
    }

    /// Creates an IOMMU reporting into a shared telemetry handle.
    pub fn with_obs(obs: Obs) -> Self {
        Iommu {
            tables: RwLock::new(FxHashMap::default()),
            iotlb: Mutex::new(Iotlb::default_hw()),
            invalq: InvalQueue::with_obs(obs.clone()),
            faults: Mutex::new(Vec::new()),
            iotlb_hits: obs.counter("iotlb", "hits", None),
            iotlb_misses: obs.counter("iotlb", "misses", None),
            map_ops: obs.counter("mmu", "map_pages", None),
            unmap_ops: obs.counter("mmu", "unmap_pages", None),
            fault_ctr: obs.counter("mmu", "faults", None),
            obs,
        }
    }

    /// Creates an IOMMU whose invalidation queue batches page
    /// invalidations in per-core pending rings, drained into the global
    /// queue every `batch` entries per core (see
    /// [`InvalQueue::with_obs_batched`]). Callers must close the final
    /// windows with [`Iommu::drain_pending`] before teardown.
    pub fn with_obs_batched(obs: Obs, cores: usize, batch: usize) -> Self {
        Iommu {
            invalq: InvalQueue::with_obs_batched(obs.clone(), cores, batch),
            ..Self::with_obs(obs)
        }
    }

    /// Creates an IOMMU with a custom IOTLB capacity (for tests).
    pub fn with_iotlb_capacity(capacity: usize) -> Self {
        Iommu {
            iotlb: Mutex::new(Iotlb::new(capacity)),
            ..Self::new()
        }
    }

    /// The telemetry handle this IOMMU reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    // ---------------------------------------------------------------
    // OS side (charged to a core)
    // ---------------------------------------------------------------

    /// Maps one IOVA page to a physical frame for `dev`.
    pub fn map_page(
        &self,
        ctx: &mut CoreCtx,
        dev: DeviceId,
        page: IovaPage,
        pfn: Pfn,
        perms: Perms,
    ) -> Result<(), IommuError> {
        obs::profile::scope(ctx, "pt_map", |ctx| {
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.pagetable_map_page);
            self.obs.set_now_hint(ctx.now());
            self.tables
                .write()
                .entry(dev)
                .or_default()
                .map(page, pfn, perms)?;
            self.map_ops.inc();
            Ok(())
        })
    }

    /// Maps `n` consecutive IOVA pages to `n` consecutive physical frames.
    pub fn map_range(
        &self,
        ctx: &mut CoreCtx,
        dev: DeviceId,
        page: IovaPage,
        pfn: Pfn,
        n: u64,
        perms: Perms,
    ) -> Result<(), IommuError> {
        for i in 0..n {
            self.map_page(ctx, dev, page.add(i), pfn.add(i), perms)?;
        }
        Ok(())
    }

    /// Removes one IOVA page mapping **without invalidating the IOTLB**.
    ///
    /// Until [`Iommu::invalidate_page_sync`] (or a flush) runs, the device
    /// may still use a cached translation — this is the deferred-protection
    /// vulnerability window.
    pub fn unmap_page_nosync(
        &self,
        ctx: &mut CoreCtx,
        dev: DeviceId,
        page: IovaPage,
    ) -> Result<PtEntry, IommuError> {
        obs::profile::scope(ctx, "pt_unmap", |ctx| {
            ctx.charge(Phase::IommuPageTableMgmt, ctx.cost.pagetable_unmap_page);
            self.obs.set_now_hint(ctx.now());
            let mut tables = self.tables.write();
            let table = tables
                .get_mut(&dev)
                .ok_or(IommuError::PageTable(PtError::NotMapped(page)))?;
            let entry = table.unmap(page)?;
            self.unmap_ops.inc();
            Ok(entry)
        })
    }

    /// Synchronously invalidates one IOVA page of `dev` in the IOTLB
    /// (queue lock + posted command + completion wait).
    pub fn invalidate_page_sync(&self, ctx: &mut CoreCtx, dev: DeviceId, page: IovaPage) {
        self.invalq
            .invalidate_page_sync(ctx, &self.iotlb, dev, page);
    }

    /// Synchronously invalidates several pages under one queue-lock hold.
    pub fn invalidate_pages_sync(&self, ctx: &mut CoreCtx, dev: DeviceId, pages: &[IovaPage]) {
        self.invalq
            .invalidate_pages_sync(ctx, &self.iotlb, dev, pages);
    }

    /// Synchronously flushes all of `dev`'s IOTLB entries with one
    /// domain-selective command (the deferred batch drain).
    pub fn flush_device_sync(&self, ctx: &mut CoreCtx, dev: DeviceId) {
        self.invalq.flush_device_sync(ctx, &self.iotlb, dev);
    }

    /// Drains every core's pending invalidation ring into the global
    /// queue (no-op without batching). The teardown path: after this no
    /// deferred window opened by batching remains.
    pub fn drain_pending(&self, ctx: &mut CoreCtx) {
        self.invalq.drain_pending_all(ctx, &self.iotlb);
    }

    /// Drains only the calling core's pending invalidation ring.
    pub fn drain_pending_local(&self, ctx: &mut CoreCtx) {
        self.invalq.drain_pending_local(ctx, &self.iotlb);
    }

    /// Hardware-initiated invalidation of one page: models IOTLB entries
    /// that self-destruct (Basu et al. \[10\]) — no queue interaction, no
    /// CPU cost. Only the `SelfInvalidatingDma` ablation engine uses this.
    pub fn invalidate_page_hw(&self, dev: DeviceId, page: IovaPage) {
        self.iotlb.lock().invalidate_page(dev, page);
    }

    // ---------------------------------------------------------------
    // Device side (no CPU cost)
    // ---------------------------------------------------------------

    /// Translates one IOVA for a device access, exercising the IOTLB:
    /// hit → cached entry (even if the page table no longer maps the page);
    /// miss → page walk, inserting into the IOTLB on success.
    ///
    /// Blocked accesses are recorded in the fault log.
    pub fn translate(
        &self,
        dev: DeviceId,
        iova: Iova,
        access: Access,
    ) -> Result<PhysAddr, DmaFault> {
        let page = iova.page();
        let mut iotlb = self.iotlb.lock();
        let entry = match iotlb.lookup(dev, page) {
            Some(e) => {
                self.iotlb_hits.inc();
                e
            }
            None => {
                self.iotlb_misses.inc();
                let tables = self.tables.read();
                match tables.get(&dev).and_then(|t| t.translate(page)) {
                    Some(e) => {
                        iotlb.insert(dev, page, e);
                        e
                    }
                    None => {
                        return Err(self.fault(dev, iova, access, FaultReason::NotMapped));
                    }
                }
            }
        };
        if !entry.perms.allows(access) {
            return Err(self.fault(dev, iova, access, FaultReason::PermissionDenied));
        }
        Ok(entry.pfn.base().add(iova.page_offset() as u64))
    }

    /// Device DMA read: the device fetches `buf.len()` bytes from `iova`.
    ///
    /// Translation is per page; a fault aborts the transfer at the faulting
    /// page boundary (earlier pages may already have been read, as on real
    /// hardware where each TLP is checked independently).
    pub fn dma_read(
        &self,
        mem: &PhysMemory,
        dev: DeviceId,
        iova: Iova,
        buf: &mut [u8],
    ) -> Result<(), DmaFault> {
        self.dma_access(dev, iova, buf.len(), Access::Read, |pa, off, len| {
            mem.read(pa, &mut buf[off..off + len])
        })
    }

    /// Device DMA write: the device stores `data` at `iova`.
    pub fn dma_write(
        &self,
        mem: &PhysMemory,
        dev: DeviceId,
        iova: Iova,
        data: &[u8],
    ) -> Result<(), DmaFault> {
        self.dma_access(dev, iova, data.len(), Access::Write, |pa, off, len| {
            mem.write(pa, &data[off..off + len])
        })
    }

    fn dma_access(
        &self,
        dev: DeviceId,
        iova: Iova,
        len: usize,
        access: Access,
        mut op: impl FnMut(PhysAddr, usize, usize) -> Result<(), MemError>,
    ) -> Result<(), DmaFault> {
        let mut off = 0usize;
        while off < len {
            let cur = iova.add(off as u64);
            let pa = self.translate(dev, cur, access)?;
            let in_page = cur.page_offset();
            let take = (PAGE_SIZE - in_page).min(len - off);
            op(pa, off, take).unwrap_or_else(|e| {
                panic!("IOMMU-mapped page must be backed by allocated memory: {e}")
            });
            off += take;
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Introspection
    // ---------------------------------------------------------------

    /// The invalidation queue (for contention statistics).
    pub fn invalq(&self) -> &InvalQueue {
        &self.invalq
    }

    /// Snapshot of the fault log.
    pub fn faults(&self) -> Vec<DmaFault> {
        self.faults.lock().clone()
    }

    /// Number of recorded faults.
    pub fn fault_count(&self) -> usize {
        self.faults.lock().len()
    }

    /// Clears the fault log.
    pub fn clear_faults(&self) {
        self.faults.lock().clear();
    }

    /// IOTLB statistics snapshot.
    pub fn iotlb_stats(&self) -> IotlbStats {
        self.iotlb.lock().stats()
    }

    /// Whether the IOTLB currently caches a translation (observability for
    /// staleness tests).
    pub fn iotlb_contains(&self, dev: DeviceId, page: IovaPage) -> bool {
        self.iotlb.lock().contains(dev, page)
    }

    /// Whether the page table currently maps an IOVA page.
    pub fn is_mapped(&self, dev: DeviceId, page: IovaPage) -> bool {
        self.tables
            .read()
            .get(&dev)
            .is_some_and(|t| t.translate(page).is_some())
    }

    /// Number of pages mapped for a device.
    pub fn mapped_pages(&self, dev: DeviceId) -> u64 {
        self.tables.read().get(&dev).map_or(0, |t| t.mapped_pages())
    }

    fn fault(&self, dev: DeviceId, iova: Iova, access: Access, reason: FaultReason) -> DmaFault {
        let f = DmaFault {
            device: dev,
            iova,
            access,
            reason,
        };
        self.faults.lock().push(f);
        // Every blocked device access is a traced security event.
        self.fault_ctr.inc();
        self.obs.trace(
            self.obs.now_hint(),
            DEVICE_SIDE_CORE,
            Some(dev.0),
            EventKind::AttackBlocked {
                iova: iova.get(),
                access: match access {
                    Access::Read => "read".into(),
                    Access::Write => "write".into(),
                },
                reason: match reason {
                    FaultReason::NotMapped => "not_mapped".into(),
                    FaultReason::PermissionDenied => "permission_denied".into(),
                },
            },
        );
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{NumaDomain, NumaTopology};
    use simcore::{CoreId, CostModel, Cycles};
    use std::sync::Arc;

    const DEV: DeviceId = DeviceId(1);

    fn setup() -> (Iommu, Arc<PhysMemory>, CoreCtx) {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(64)));
        let ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
        (Iommu::new(), mem, ctx)
    }

    #[test]
    fn device_dma_through_mapping_moves_real_bytes() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let page = IovaPage(0x100);
        mmu.map_page(&mut ctx, DEV, page, pfn, Perms::ReadWrite)
            .unwrap();

        mmu.dma_write(&mem, DEV, page.base().add(16), b"from the device")
            .unwrap();
        assert_eq!(
            mem.read_vec(pfn.base().add(16), 15).unwrap(),
            b"from the device"
        );

        let mut buf = vec![0u8; 15];
        mmu.dma_read(&mem, DEV, page.base().add(16), &mut buf)
            .unwrap();
        assert_eq!(buf, b"from the device");
    }

    #[test]
    fn unmapped_dma_faults_and_is_logged() {
        let (mmu, mem, _) = setup();
        let err = mmu
            .dma_write(&mem, DEV, Iova(0x5000), b"attack")
            .unwrap_err();
        assert_eq!(err.reason, FaultReason::NotMapped);
        assert_eq!(mmu.fault_count(), 1);
        assert_eq!(mmu.faults()[0].device, DEV);
    }

    #[test]
    fn permission_enforced_per_direction() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let page = IovaPage(0x10);
        mmu.map_page(&mut ctx, DEV, page, pfn, Perms::Read).unwrap();
        // Device may read...
        let mut buf = [0u8; 4];
        mmu.dma_read(&mem, DEV, page.base(), &mut buf).unwrap();
        // ...but not write.
        let err = mmu.dma_write(&mem, DEV, page.base(), b"x").unwrap_err();
        assert_eq!(err.reason, FaultReason::PermissionDenied);
    }

    #[test]
    fn devices_have_separate_domains() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let page = IovaPage(0x10);
        mmu.map_page(&mut ctx, DeviceId(1), page, pfn, Perms::ReadWrite)
            .unwrap();
        // Device 2 cannot use device 1's mapping.
        let err = mmu
            .dma_write(&mem, DeviceId(2), page.base(), b"x")
            .unwrap_err();
        assert_eq!(err.reason, FaultReason::NotMapped);
    }

    #[test]
    fn stale_iotlb_entry_survives_unmap_until_invalidation() {
        // The deferred-protection vulnerability window, end to end.
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let page = IovaPage(0x20);
        mmu.map_page(&mut ctx, DEV, page, pfn, Perms::ReadWrite)
            .unwrap();

        // Device touches the page: IOTLB now caches the translation.
        mmu.dma_write(&mem, DEV, page.base(), b"first").unwrap();
        assert!(mmu.iotlb_contains(DEV, page));

        // OS unmaps WITHOUT invalidating (deferred protection).
        mmu.unmap_page_nosync(&mut ctx, DEV, page).unwrap();
        assert!(!mmu.is_mapped(DEV, page));

        // The device can STILL write through the stale IOTLB entry.
        mmu.dma_write(&mem, DEV, page.base(), b"stale-write!")
            .unwrap();
        assert_eq!(mem.read_vec(pfn.base(), 12).unwrap(), b"stale-write!");

        // After invalidation the access is blocked.
        mmu.invalidate_page_sync(&mut ctx, DEV, page);
        let err = mmu
            .dma_write(&mem, DEV, page.base(), b"blocked")
            .unwrap_err();
        assert_eq!(err.reason, FaultReason::NotMapped);
    }

    #[test]
    fn unmap_before_device_touch_blocks_immediately() {
        // If the device never pulled the translation into the IOTLB, the
        // unmap alone blocks it (nothing cached to be stale).
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let page = IovaPage(0x30);
        mmu.map_page(&mut ctx, DEV, page, pfn, Perms::ReadWrite)
            .unwrap();
        mmu.unmap_page_nosync(&mut ctx, DEV, page).unwrap();
        assert!(mmu.dma_write(&mem, DEV, page.base(), b"x").is_err());
    }

    #[test]
    fn multi_page_dma_crosses_pages() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frames(NumaDomain(0), 2).unwrap();
        let page = IovaPage(0x40);
        mmu.map_range(&mut ctx, DEV, page, pfn, 2, Perms::ReadWrite)
            .unwrap();
        let data: Vec<u8> = (0..6000).map(|i| (i % 256) as u8).collect();
        mmu.dma_write(&mem, DEV, page.base().add(100), &data)
            .unwrap();
        assert_eq!(mem.read_vec(pfn.base().add(100), 6000).unwrap(), data);
    }

    #[test]
    fn multi_page_dma_faults_at_boundary() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        let page = IovaPage(0x50);
        mmu.map_page(&mut ctx, DEV, page, pfn, Perms::Write)
            .unwrap();
        // Write spans into the next (unmapped) page: fault.
        let data = vec![0xaa; PAGE_SIZE + 100];
        let err = mmu.dma_write(&mem, DEV, page.base(), &data).unwrap_err();
        assert_eq!(err.iova.page(), page.add(1));
        // The first page's bytes did land (per-TLP checking).
        assert_eq!(
            mem.read_vec(pfn.base(), PAGE_SIZE).unwrap(),
            vec![0xaa; PAGE_SIZE]
        );
    }

    #[test]
    fn map_unmap_charge_pagetable_costs() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mmu.map_page(&mut ctx, DEV, IovaPage(1), pfn, Perms::Read)
            .unwrap();
        mmu.unmap_page_nosync(&mut ctx, DEV, IovaPage(1)).unwrap();
        let charged = ctx.breakdown.get(Phase::IommuPageTableMgmt);
        assert_eq!(
            charged,
            ctx.cost.pagetable_map_page + ctx.cost.pagetable_unmap_page
        );
        // ≈0.17 us per the paper's Figure 5.
        let us = charged.to_micros(ctx.cost.clock_ghz);
        assert!((us - 0.17).abs() < 0.02, "{us}");
    }

    #[test]
    fn unmap_nosync_does_not_touch_inval_queue() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mmu.map_page(&mut ctx, DEV, IovaPage(1), pfn, Perms::Read)
            .unwrap();
        mmu.unmap_page_nosync(&mut ctx, DEV, IovaPage(1)).unwrap();
        assert_eq!(ctx.breakdown.get(Phase::InvalidateIotlb), Cycles::ZERO);
        assert_eq!(mmu.invalq().stats().page_commands, 0);
    }

    #[test]
    fn flush_device_clears_stale_entries() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frames(NumaDomain(0), 4).unwrap();
        for i in 0..4 {
            mmu.map_page(
                &mut ctx,
                DEV,
                IovaPage(0x60 + i),
                pfn.add(i),
                Perms::ReadWrite,
            )
            .unwrap();
            mmu.dma_write(&mem, DEV, IovaPage(0x60 + i).base(), b"warm")
                .unwrap();
            mmu.unmap_page_nosync(&mut ctx, DEV, IovaPage(0x60 + i))
                .unwrap();
        }
        // All four entries are stale-but-usable.
        for i in 0..4 {
            assert!(mmu.iotlb_contains(DEV, IovaPage(0x60 + i)));
        }
        mmu.flush_device_sync(&mut ctx, DEV);
        for i in 0..4 {
            assert!(!mmu.iotlb_contains(DEV, IovaPage(0x60 + i)));
            assert!(mmu
                .dma_write(&mem, DEV, IovaPage(0x60 + i).base(), b"x")
                .is_err());
        }
    }

    #[test]
    fn mapped_pages_accounting() {
        let (mmu, mem, mut ctx) = setup();
        let pfn = mem.alloc_frames(NumaDomain(0), 3).unwrap();
        assert_eq!(mmu.mapped_pages(DEV), 0);
        mmu.map_range(&mut ctx, DEV, IovaPage(0x80), pfn, 3, Perms::Read)
            .unwrap();
        assert_eq!(mmu.mapped_pages(DEV), 3);
        mmu.unmap_page_nosync(&mut ctx, DEV, IovaPage(0x81))
            .unwrap();
        assert_eq!(mmu.mapped_pages(DEV), 2);
    }
}
