//! Per-core pending-invalidation rings — the batching layer in front of
//! the global invalidation queue.
//!
//! With batching enabled (see [`InvalQueue::with_obs_batched`]), an unmap's
//! page invalidation is appended to the *calling core's* ring instead of
//! serializing on the single queue lock; the ring drains into the global
//! queue (one lock hold per device run) when it reaches the batch
//! threshold, when the device is domain-flushed, or at teardown. Until the
//! drain, the IOTLB entry stays usable — exactly the §2.2.1
//! deferred-protection window, now bounded per core by the batch size.
//!
//! [`InvalQueue::with_obs_batched`]: crate::InvalQueue::with_obs_batched

use crate::{DeviceId, IovaPage};
use obs::{EventKind, Obs};
use simcore::sync::Mutex;
use simcore::{CoreCtx, SimLock};

/// Lock name reported in lockset events for every per-core pending ring.
///
/// All rings share one name on purpose: the owner core's appends and the
/// cross-core teardown/flush drains then hold a common candidate lock, so
/// the Eraser-style detector keeps a non-empty lockset intersection for
/// the shared ring storage.
pub const INVALQ_PENDING_LOCK: &str = "invalq-pending-ring";

/// One core's ring of pending (not yet posted) page invalidations.
///
/// The ring itself is tiny — a bounded `Vec` of `(device, page)` pairs in
/// append order — and is normally touched only by its owner core. The
/// cross-core paths (device flush purge, teardown drain) take the same
/// named [`SimLock`], so contention and locksets stay honest.
#[derive(Debug, Default)]
pub struct PendingRing {
    lock: SimLock,
    entries: Mutex<Vec<(DeviceId, IovaPage)>>,
}

impl PendingRing {
    /// Creates an empty ring.
    pub fn new() -> Self {
        PendingRing {
            lock: SimLock::new(INVALQ_PENDING_LOCK),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Emits a detail-gated lockset event (no-op unless
    /// [`Obs::set_detail_enabled`] is on).
    fn lockset(obs: &Obs, ctx: &CoreCtx, kind: EventKind) {
        if obs.detail_enabled() {
            obs.trace(ctx.now(), ctx.core.0, None, kind);
        }
    }

    /// Runs `f` under the ring lock, bracketing it with lockset events and
    /// recording the shared ring access. The `LockAcquire` fires *before*
    /// the lock is taken (it is a model-checker preemption point and must
    /// not park inside a critical section).
    fn with_ring<R>(&self, ctx: &mut CoreCtx, obs: &Obs, f: impl FnOnce(&mut CoreCtx) -> R) -> R {
        Self::lockset(
            obs,
            ctx,
            EventKind::LockAcquire {
                lock: INVALQ_PENDING_LOCK.into(),
            },
        );
        let r = self.lock.with(ctx, |ctx| {
            Self::lockset(
                obs,
                ctx,
                EventKind::SharedAccess {
                    var: "invalq.pending".into(),
                    write: true,
                },
            );
            f(ctx)
        });
        Self::lockset(
            obs,
            ctx,
            EventKind::LockRelease {
                lock: INVALQ_PENDING_LOCK.into(),
            },
        );
        r
    }

    /// Appends `pages` for `dev` in order; returns the ring length after
    /// the append (the caller drains at the batch threshold).
    pub fn append(&self, ctx: &mut CoreCtx, obs: &Obs, dev: DeviceId, pages: &[IovaPage]) -> usize {
        self.with_ring(ctx, obs, |_| {
            let mut e = self.entries.lock();
            e.extend(pages.iter().map(|&p| (dev, p)));
            e.len()
        })
    }

    /// Takes every pending entry out, in append order. Empty rings return
    /// without touching the lock (no spurious preemption points).
    pub fn take(&self, ctx: &mut CoreCtx, obs: &Obs) -> Vec<(DeviceId, IovaPage)> {
        if self.entries.lock().is_empty() {
            return Vec::new();
        }
        self.with_ring(ctx, obs, |_| std::mem::take(&mut *self.entries.lock()))
    }

    /// Removes `dev`'s entries (superseded by a domain-selective flush);
    /// returns how many were purged.
    pub fn purge_device(&self, ctx: &mut CoreCtx, obs: &Obs, dev: DeviceId) -> usize {
        if self.entries.lock().iter().all(|&(d, _)| d != dev) {
            return 0;
        }
        self.with_ring(ctx, obs, |_| {
            let mut e = self.entries.lock();
            let before = e.len();
            e.retain(|&(d, _)| d != dev);
            before - e.len()
        })
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// The ring's lock (exposed for contention statistics).
    pub fn lock(&self) -> &SimLock {
        &self.lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{CoreId, CostModel};
    use std::sync::Arc;

    fn ctx(core: u16) -> CoreCtx {
        CoreCtx::new(CoreId(core), Arc::new(CostModel::zero()))
    }

    #[test]
    fn append_take_preserves_order() {
        let r = PendingRing::new();
        let obs = Obs::isolated();
        let mut c = ctx(0);
        r.append(&mut c, &obs, DeviceId(1), &[IovaPage(3), IovaPage(4)]);
        r.append(&mut c, &obs, DeviceId(2), &[IovaPage(9)]);
        assert_eq!(r.len(), 3);
        let taken = r.take(&mut c, &obs);
        assert_eq!(
            taken,
            vec![
                (DeviceId(1), IovaPage(3)),
                (DeviceId(1), IovaPage(4)),
                (DeviceId(2), IovaPage(9)),
            ]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn empty_take_skips_the_lock() {
        let r = PendingRing::new();
        let obs = Obs::isolated();
        let mut c = ctx(0);
        assert!(r.take(&mut c, &obs).is_empty());
        assert_eq!(r.lock().stats().acquisitions, 0);
    }

    #[test]
    fn purge_removes_only_the_flushed_device() {
        let r = PendingRing::new();
        let obs = Obs::isolated();
        let mut c = ctx(0);
        r.append(&mut c, &obs, DeviceId(1), &[IovaPage(1), IovaPage(2)]);
        r.append(&mut c, &obs, DeviceId(2), &[IovaPage(5)]);
        assert_eq!(r.purge_device(&mut c, &obs, DeviceId(1)), 2);
        assert_eq!(r.purge_device(&mut c, &obs, DeviceId(1)), 0, "idempotent");
        assert_eq!(r.take(&mut c, &obs), vec![(DeviceId(2), IovaPage(5))]);
    }

    #[test]
    fn lockset_events_bracket_the_ring_access() {
        let obs = Obs::isolated();
        obs.set_detail_enabled(true);
        let r = PendingRing::new();
        let mut c = ctx(3);
        r.append(&mut c, &obs, DeviceId(0), &[IovaPage(1)]);
        let kinds: Vec<String> = obs
            .tracer()
            .events()
            .iter()
            .map(|e| match &e.kind {
                EventKind::LockAcquire { lock } => format!("acq:{lock}"),
                EventKind::SharedAccess { var, write } => format!("acc:{var}:{write}"),
                EventKind::LockRelease { lock } => format!("rel:{lock}"),
                other => format!("{other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "acq:invalq-pending-ring",
                "acc:invalq.pending:true",
                "rel:invalq-pending-ring",
            ]
        );
    }
}
