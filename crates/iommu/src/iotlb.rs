//! The IOTLB: the IOMMU's translation cache.

use crate::{DeviceId, IovaPage, PtEntry};
use std::collections::{HashMap, VecDeque};

/// IOTLB hit/miss/invalidation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IotlbStats {
    /// Lookups that hit a cached translation.
    pub hits: u64,
    /// Lookups that missed and required a page walk.
    pub misses: u64,
    /// Page-selective invalidations executed.
    pub page_invalidations: u64,
    /// Global/domain flushes executed.
    pub global_invalidations: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

/// The IOMMU's translation cache, tagged by device (source-id).
///
/// The security-critical property modeled here: a cached entry remains
/// usable by the device **after the OS removes the page-table mapping**,
/// until the OS explicitly invalidates it. Deferred protection (§2.2.1)
/// leaves such entries live for up to 10 ms, which is the paper's
/// "vulnerability window".
///
/// Capacity is finite with FIFO replacement, approximating the small
/// on-chip structure; eviction order does not affect correctness, only
/// miss counts.
#[derive(Debug)]
pub struct Iotlb {
    capacity: usize,
    entries: HashMap<(DeviceId, IovaPage), PtEntry>,
    fifo: VecDeque<(DeviceId, IovaPage)>,
    stats: IotlbStats,
}

impl Iotlb {
    /// Creates an IOTLB with the given entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IOTLB needs capacity");
        Iotlb {
            capacity,
            entries: HashMap::new(),
            fifo: VecDeque::new(),
            stats: IotlbStats::default(),
        }
    }

    /// A plausible hardware size (4096 entries).
    pub fn default_hw() -> Self {
        Iotlb::new(4096)
    }

    /// Looks up a cached translation, updating hit/miss statistics.
    pub fn lookup(&mut self, dev: DeviceId, page: IovaPage) -> Option<PtEntry> {
        match self.entries.get(&(dev, page)) {
            Some(e) => {
                self.stats.hits += 1;
                Some(*e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation fetched by a page walk, evicting FIFO-oldest
    /// entries if full.
    pub fn insert(&mut self, dev: DeviceId, page: IovaPage, entry: PtEntry) {
        if self.entries.insert((dev, page), entry).is_none() {
            self.fifo.push_back((dev, page));
        }
        while self.entries.len() > self.capacity {
            if let Some(victim) = self.fifo.pop_front() {
                if self.entries.remove(&victim).is_some() {
                    self.stats.evictions += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Page-selective invalidation (one device, one IOVA page).
    pub fn invalidate_page(&mut self, dev: DeviceId, page: IovaPage) {
        self.entries.remove(&(dev, page));
        self.stats.page_invalidations += 1;
    }

    /// Invalidates every entry of one device (domain-selective flush).
    pub fn invalidate_device(&mut self, dev: DeviceId) {
        self.entries.retain(|&(d, _), _| d != dev);
        self.stats.global_invalidations += 1;
    }

    /// Invalidates everything (global flush).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
        self.fifo.clear();
        self.stats.global_invalidations += 1;
    }

    /// Whether a translation is currently cached (no stats side effects);
    /// used by tests and attack scenarios to observe staleness.
    pub fn contains(&self, dev: DeviceId, page: IovaPage) -> bool {
        self.entries.contains_key(&(dev, page))
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IotlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Perms;
    use memsim::Pfn;

    const DEV: DeviceId = DeviceId(0);

    fn entry(pfn: u64) -> PtEntry {
        PtEntry {
            pfn: Pfn(pfn),
            perms: Perms::ReadWrite,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Iotlb::new(8);
        assert_eq!(tlb.lookup(DEV, IovaPage(1)), None);
        tlb.insert(DEV, IovaPage(1), entry(5));
        assert_eq!(tlb.lookup(DEV, IovaPage(1)), Some(entry(5)));
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn entries_are_device_tagged() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DeviceId(0), IovaPage(1), entry(5));
        assert_eq!(tlb.lookup(DeviceId(1), IovaPage(1)), None);
    }

    #[test]
    fn page_invalidation_removes_only_that_page() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DEV, IovaPage(1), entry(5));
        tlb.insert(DEV, IovaPage(2), entry(6));
        tlb.invalidate_page(DEV, IovaPage(1));
        assert!(!tlb.contains(DEV, IovaPage(1)));
        assert!(tlb.contains(DEV, IovaPage(2)));
    }

    #[test]
    fn device_invalidation_scopes_to_device() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DeviceId(0), IovaPage(1), entry(5));
        tlb.insert(DeviceId(1), IovaPage(1), entry(6));
        tlb.invalidate_device(DeviceId(0));
        assert!(!tlb.contains(DeviceId(0), IovaPage(1)));
        assert!(tlb.contains(DeviceId(1), IovaPage(1)));
    }

    #[test]
    fn global_invalidation_clears_all() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DeviceId(0), IovaPage(1), entry(5));
        tlb.insert(DeviceId(1), IovaPage(2), entry(6));
        tlb.invalidate_all();
        assert!(tlb.is_empty());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut tlb = Iotlb::new(2);
        tlb.insert(DEV, IovaPage(1), entry(1));
        tlb.insert(DEV, IovaPage(2), entry(2));
        tlb.insert(DEV, IovaPage(3), entry(3));
        assert_eq!(tlb.len(), 2);
        assert!(!tlb.contains(DEV, IovaPage(1)), "oldest evicted");
        assert!(tlb.contains(DEV, IovaPage(3)));
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut tlb = Iotlb::new(4);
        tlb.insert(DEV, IovaPage(1), entry(1));
        tlb.insert(DEV, IovaPage(1), entry(2));
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(DEV, IovaPage(1)), Some(entry(2)));
    }

    #[test]
    fn staleness_is_observable() {
        // The core security property: the IOTLB does not know about
        // page-table changes; entries live until invalidated.
        let mut tlb = Iotlb::new(8);
        tlb.insert(DEV, IovaPage(7), entry(9));
        // (page table unmap happens elsewhere)
        assert!(tlb.contains(DEV, IovaPage(7)), "stale entry persists");
        tlb.invalidate_page(DEV, IovaPage(7));
        assert!(!tlb.contains(DEV, IovaPage(7)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Iotlb::new(0);
    }
}
