//! The IOTLB: the IOMMU's translation cache.
//!
//! Modeled as a fixed-size **set-associative** array cache — the shape
//! real VT-d hardware uses — rather than a hash map: the IOVA page
//! number (mixed with the source-id) selects a set via a power-of-two
//! mask, and the full `(device, page)` key is the tag compared against
//! each way. Replacement is FIFO-within-set (oldest insertion stamp),
//! which degenerates to the previous global-FIFO policy whenever the
//! cache has a single set.

use crate::{DeviceId, IovaPage, PtEntry};

/// IOTLB hit/miss/invalidation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IotlbStats {
    /// Lookups that hit a cached translation.
    pub hits: u64,
    /// Lookups that missed and required a page walk.
    pub misses: u64,
    /// Page-selective invalidations executed.
    pub page_invalidations: u64,
    /// Global/domain flushes executed.
    pub global_invalidations: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

/// Preferred associativity: sets grow with capacity, ways stay small
/// enough that a set scan is a handful of comparisons in one cache line.
const MAX_WAYS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Slot {
    dev: DeviceId,
    page: IovaPage,
    entry: PtEntry,
    /// Monotonic insertion stamp; the smallest stamp in a set is the
    /// FIFO victim.
    stamp: u64,
}

/// The IOMMU's translation cache, tagged by device (source-id).
///
/// The security-critical property modeled here: a cached entry remains
/// usable by the device **after the OS removes the page-table mapping**,
/// until the OS explicitly invalidates it. Deferred protection (§2.2.1)
/// leaves such entries live for up to 10 ms, which is the paper's
/// "vulnerability window".
///
/// Capacity is finite with FIFO replacement within each set,
/// approximating the small on-chip structure; eviction order does not
/// affect correctness, only miss counts.
#[derive(Debug)]
pub struct Iotlb {
    /// Associativity (slots per set).
    ways: usize,
    /// Power-of-two set index mask (`sets - 1`).
    set_mask: u64,
    /// `sets × ways` slots, set-major.
    slots: Vec<Option<Slot>>,
    /// Monotonic insertion counter backing the FIFO stamps.
    tick: u64,
    /// Live entries across all sets.
    len: usize,
    stats: IotlbStats,
}

impl Iotlb {
    /// Creates an IOTLB with the given entry capacity.
    ///
    /// The capacity is realized as `sets × ways` with `sets` the largest
    /// power of two dividing `capacity` with `capacity / sets ≤ 8`; small
    /// or odd capacities fall back to a single fully-associative set, so
    /// every requested capacity is honored exactly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IOTLB needs capacity");
        let mut sets = (capacity / MAX_WAYS).max(1).next_power_of_two();
        if sets > capacity / MAX_WAYS && sets > 1 {
            sets /= 2; // round down so ways never drops below MAX_WAYS
        }
        while !capacity.is_multiple_of(sets) {
            sets /= 2; // odd capacities degrade toward full associativity
        }
        Iotlb {
            ways: capacity / sets,
            set_mask: (sets - 1) as u64,
            slots: vec![None; capacity],
            tick: 0,
            len: 0,
            stats: IotlbStats::default(),
        }
    }

    /// A plausible hardware size (4096 entries).
    pub fn default_hw() -> Self {
        Iotlb::new(4096)
    }

    /// Associativity (slots per set).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets (always a power of two).
    pub fn sets(&self) -> usize {
        self.set_mask as usize + 1
    }

    /// Slot range of the set that caches `(dev, page)`: indexed by the
    /// low page-number bits, mixed with the source-id so distinct
    /// devices mapping the same IOVA don't pile into one set.
    fn set_range(&self, dev: DeviceId, page: IovaPage) -> std::ops::Range<usize> {
        let set = ((page.0 ^ u64::from(dev.0)) & self.set_mask) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up a cached translation, updating hit/miss statistics.
    pub fn lookup(&mut self, dev: DeviceId, page: IovaPage) -> Option<PtEntry> {
        let range = self.set_range(dev, page);
        for s in self.slots[range].iter().flatten() {
            if s.dev == dev && s.page == page {
                self.stats.hits += 1;
                return Some(s.entry);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a translation fetched by a page walk, evicting the set's
    /// FIFO-oldest entry if every way is taken.
    pub fn insert(&mut self, dev: DeviceId, page: IovaPage, entry: PtEntry) {
        let range = self.set_range(dev, page);
        let mut free: Option<usize> = None;
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        for i in range {
            match &mut self.slots[i] {
                Some(s) if s.dev == dev && s.page == page => {
                    // Refresh the translation in place; like the previous
                    // global-FIFO implementation, a re-insert keeps the
                    // entry's original replacement position.
                    s.entry = entry;
                    return;
                }
                Some(s) => {
                    if s.stamp < victim_stamp {
                        victim_stamp = s.stamp;
                        victim = i;
                    }
                }
                None => free = free.or(Some(i)),
            }
        }
        let target = match free {
            Some(i) => {
                self.len += 1;
                i
            }
            None => {
                self.stats.evictions += 1;
                victim
            }
        };
        self.tick += 1;
        self.slots[target] = Some(Slot {
            dev,
            page,
            entry,
            stamp: self.tick,
        });
    }

    /// Page-selective invalidation (one device, one IOVA page).
    pub fn invalidate_page(&mut self, dev: DeviceId, page: IovaPage) {
        for i in self.set_range(dev, page) {
            if matches!(&self.slots[i], Some(s) if s.dev == dev && s.page == page) {
                self.slots[i] = None;
                self.len -= 1;
                break;
            }
        }
        self.stats.page_invalidations += 1;
    }

    /// Invalidates every entry of one device (domain-selective flush).
    pub fn invalidate_device(&mut self, dev: DeviceId) {
        for slot in &mut self.slots {
            if matches!(slot, Some(s) if s.dev == dev) {
                *slot = None;
                self.len -= 1;
            }
        }
        self.stats.global_invalidations += 1;
    }

    /// Invalidates everything (global flush).
    pub fn invalidate_all(&mut self) {
        self.slots.fill(None);
        self.len = 0;
        self.stats.global_invalidations += 1;
    }

    /// Whether a translation is currently cached (no stats side effects);
    /// used by tests and attack scenarios to observe staleness.
    pub fn contains(&self, dev: DeviceId, page: IovaPage) -> bool {
        self.slots[self.set_range(dev, page)]
            .iter()
            .any(|slot| matches!(slot, Some(s) if s.dev == dev && s.page == page))
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IotlbStats {
        self.stats
    }
}

/// The previous `HashMap` + global-FIFO implementation, kept as the
/// behavioral oracle for the property tests below.
#[cfg(test)]
mod oracle {
    use super::IotlbStats;
    use crate::{DeviceId, IovaPage, PtEntry};
    use std::collections::{HashMap, VecDeque};

    #[derive(Debug)]
    pub struct OracleIotlb {
        capacity: usize,
        entries: HashMap<(DeviceId, IovaPage), PtEntry>,
        fifo: VecDeque<(DeviceId, IovaPage)>,
        stats: IotlbStats,
    }

    impl OracleIotlb {
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "IOTLB needs capacity");
            OracleIotlb {
                capacity,
                entries: HashMap::new(),
                fifo: VecDeque::new(),
                stats: IotlbStats::default(),
            }
        }

        pub fn lookup(&mut self, dev: DeviceId, page: IovaPage) -> Option<PtEntry> {
            match self.entries.get(&(dev, page)) {
                Some(e) => {
                    self.stats.hits += 1;
                    Some(*e)
                }
                None => {
                    self.stats.misses += 1;
                    None
                }
            }
        }

        pub fn insert(&mut self, dev: DeviceId, page: IovaPage, entry: PtEntry) {
            if self.entries.insert((dev, page), entry).is_none() {
                self.fifo.push_back((dev, page));
            }
            while self.entries.len() > self.capacity {
                if let Some(victim) = self.fifo.pop_front() {
                    if self.entries.remove(&victim).is_some() {
                        self.stats.evictions += 1;
                    }
                } else {
                    break;
                }
            }
        }

        pub fn invalidate_page(&mut self, dev: DeviceId, page: IovaPage) {
            self.entries.remove(&(dev, page));
            self.stats.page_invalidations += 1;
        }

        pub fn invalidate_device(&mut self, dev: DeviceId) {
            self.entries.retain(|&(d, _), _| d != dev);
            self.stats.global_invalidations += 1;
        }

        pub fn invalidate_all(&mut self) {
            self.entries.clear();
            self.fifo.clear();
            self.stats.global_invalidations += 1;
        }

        pub fn contains(&self, dev: DeviceId, page: IovaPage) -> bool {
            self.entries.contains_key(&(dev, page))
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }

        pub fn stats(&self) -> IotlbStats {
            self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::OracleIotlb;
    use super::*;
    use crate::Perms;
    use memsim::Pfn;
    use simcore::SimRng;

    const DEV: DeviceId = DeviceId(0);

    fn entry(pfn: u64) -> PtEntry {
        PtEntry {
            pfn: Pfn(pfn),
            perms: Perms::ReadWrite,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Iotlb::new(8);
        assert_eq!(tlb.lookup(DEV, IovaPage(1)), None);
        tlb.insert(DEV, IovaPage(1), entry(5));
        assert_eq!(tlb.lookup(DEV, IovaPage(1)), Some(entry(5)));
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn entries_are_device_tagged() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DeviceId(0), IovaPage(1), entry(5));
        assert_eq!(tlb.lookup(DeviceId(1), IovaPage(1)), None);
    }

    #[test]
    fn page_invalidation_removes_only_that_page() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DEV, IovaPage(1), entry(5));
        tlb.insert(DEV, IovaPage(2), entry(6));
        tlb.invalidate_page(DEV, IovaPage(1));
        assert!(!tlb.contains(DEV, IovaPage(1)));
        assert!(tlb.contains(DEV, IovaPage(2)));
    }

    #[test]
    fn device_invalidation_scopes_to_device() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DeviceId(0), IovaPage(1), entry(5));
        tlb.insert(DeviceId(1), IovaPage(1), entry(6));
        tlb.invalidate_device(DeviceId(0));
        assert!(!tlb.contains(DeviceId(0), IovaPage(1)));
        assert!(tlb.contains(DeviceId(1), IovaPage(1)));
    }

    #[test]
    fn global_invalidation_clears_all() {
        let mut tlb = Iotlb::new(8);
        tlb.insert(DeviceId(0), IovaPage(1), entry(5));
        tlb.insert(DeviceId(1), IovaPage(2), entry(6));
        tlb.invalidate_all();
        assert!(tlb.is_empty());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut tlb = Iotlb::new(2);
        tlb.insert(DEV, IovaPage(1), entry(1));
        tlb.insert(DEV, IovaPage(2), entry(2));
        tlb.insert(DEV, IovaPage(3), entry(3));
        assert_eq!(tlb.len(), 2);
        assert!(!tlb.contains(DEV, IovaPage(1)), "oldest evicted");
        assert!(tlb.contains(DEV, IovaPage(3)));
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut tlb = Iotlb::new(4);
        tlb.insert(DEV, IovaPage(1), entry(1));
        tlb.insert(DEV, IovaPage(1), entry(2));
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(DEV, IovaPage(1)), Some(entry(2)));
    }

    #[test]
    fn staleness_is_observable() {
        // The core security property: the IOTLB does not know about
        // page-table changes; entries live until invalidated.
        let mut tlb = Iotlb::new(8);
        tlb.insert(DEV, IovaPage(7), entry(9));
        // (page table unmap happens elsewhere)
        assert!(tlb.contains(DEV, IovaPage(7)), "stale entry persists");
        tlb.invalidate_page(DEV, IovaPage(7));
        assert!(!tlb.contains(DEV, IovaPage(7)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Iotlb::new(0);
    }

    #[test]
    fn hardware_shape_is_power_of_two_sets() {
        let tlb = Iotlb::default_hw();
        assert_eq!((tlb.sets(), tlb.ways()), (512, 8));
        assert_eq!(tlb.sets() * tlb.ways(), 4096);
        let small = Iotlb::new(2);
        assert_eq!((small.sets(), small.ways()), (1, 2));
        // Odd capacities degrade toward full associativity but stay exact.
        let odd = Iotlb::new(27);
        assert_eq!(odd.sets() * odd.ways(), 27);
    }

    // ------------------------------------------------------------------
    // Property tests against the previous HashMap implementation.
    // ------------------------------------------------------------------

    /// Workload keys drawn from a pool no larger than the associativity:
    /// neither implementation can ever evict, so every observable —
    /// lookup results, `contains`, `len`, the full stats struct — must
    /// match the oracle exactly, invalidations included.
    #[test]
    fn matches_oracle_below_eviction_pressure() {
        let mut rng = SimRng::seed(0x1071b);
        let capacity = 64; // shapes to 8 sets × 8 ways
        let mut tlb = Iotlb::new(capacity);
        let mut oracle = OracleIotlb::new(capacity);
        let keys: Vec<(DeviceId, IovaPage)> = (0..8)
            .map(|i| (DeviceId(i % 2), IovaPage(rng.below(1 << 36))))
            .collect();
        for step in 0..4_000 {
            let (dev, page) = keys[rng.below(keys.len() as u64) as usize];
            match rng.below(12) {
                0..=4 => {
                    let e = entry(rng.below(1 << 20));
                    tlb.insert(dev, page, e);
                    oracle.insert(dev, page, e);
                }
                5..=8 => {
                    assert_eq!(
                        tlb.lookup(dev, page),
                        oracle.lookup(dev, page),
                        "step {step}"
                    );
                }
                9 => {
                    tlb.invalidate_page(dev, page);
                    oracle.invalidate_page(dev, page);
                }
                10 => {
                    tlb.invalidate_device(dev);
                    oracle.invalidate_device(dev);
                }
                _ => {
                    tlb.invalidate_all();
                    oracle.invalidate_all();
                }
            }
            assert_eq!(
                tlb.contains(dev, page),
                oracle.contains(dev, page),
                "step {step}"
            );
            assert_eq!(tlb.len(), oracle.len(), "step {step}");
            assert_eq!(tlb.stats(), oracle.stats(), "step {step}");
        }
    }

    /// With a single set the new cache IS a global FIFO, so under pure
    /// insert/lookup pressure (the regime where replacement order shows)
    /// it must track the oracle exactly — evictions included.
    #[test]
    fn single_set_matches_oracle_under_eviction_pressure() {
        let mut rng = SimRng::seed(0xf1f0);
        let capacity = 4; // single fully-associative set
        let mut tlb = Iotlb::new(capacity);
        assert_eq!(tlb.sets(), 1);
        let mut oracle = OracleIotlb::new(capacity);
        for step in 0..8_000 {
            let dev = DeviceId(rng.below(2) as u16);
            let page = IovaPage(rng.below(16));
            if rng.chance(0.5) {
                let e = entry(rng.below(1 << 20));
                tlb.insert(dev, page, e);
                oracle.insert(dev, page, e);
            } else {
                assert_eq!(
                    tlb.lookup(dev, page),
                    oracle.lookup(dev, page),
                    "step {step}"
                );
            }
            assert_eq!(tlb.len(), oracle.len(), "step {step}");
            assert_eq!(tlb.stats(), oracle.stats(), "step {step}");
        }
    }

    /// Under arbitrary mixed workloads (set conflicts allowed, so miss
    /// counts may legally diverge from the global-FIFO oracle) the
    /// structural invariants still hold: capacity is never exceeded, an
    /// invalidated key never resurfaces, and a lookup after insert with
    /// no intervening invalidation/eviction returns the inserted entry.
    #[test]
    fn set_conflicts_preserve_invariants() {
        let mut rng = SimRng::seed(0xbeef);
        let capacity = 16; // 2 sets × 8 ways: real conflict pressure
        let mut tlb = Iotlb::new(capacity);
        for _ in 0..8_000 {
            let dev = DeviceId(rng.below(3) as u16);
            let page = IovaPage(rng.below(64));
            match rng.below(8) {
                0..=3 => {
                    tlb.insert(dev, page, entry(page.0));
                    assert_eq!(
                        tlb.lookup(dev, page),
                        Some(entry(page.0)),
                        "freshly inserted entry must be resident"
                    );
                }
                4..=5 => {
                    if let Some(e) = tlb.lookup(dev, page) {
                        assert_eq!(e, entry(page.0), "cached entry corrupted");
                    }
                }
                6 => {
                    tlb.invalidate_page(dev, page);
                    assert!(!tlb.contains(dev, page), "invalidated key resurfaced");
                }
                _ => {
                    tlb.invalidate_device(dev);
                    assert!(!tlb.contains(dev, page), "flushed device key resurfaced");
                }
            }
            assert!(tlb.len() <= capacity, "capacity exceeded");
        }
        let s = tlb.stats();
        assert!(s.evictions > 0, "workload must exercise replacement");
        assert!(s.hits > 0 && s.misses > 0);
    }
}
