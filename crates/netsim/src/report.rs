//! Experiment results and table formatting for the bench harness.

use simcore::{Breakdown, Cycles};

/// The outcome of one workload run — one bar/point of a paper figure.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Engine name (paper legend).
    pub engine: &'static str,
    /// Cores that drove the workload.
    pub cores: usize,
    /// netperf message size (or value size for memcached).
    pub msg_size: usize,
    /// Goodput in Gb/s (payload bytes, like netperf reports).
    pub gbps: f64,
    /// Average CPU utilization across the driving cores, `0..=1`.
    pub cpu: f64,
    /// Measured work items (MTU packets on RX, TSO buffers on TX,
    /// transactions for RR/memcached).
    pub items: u64,
    /// Measured payload bytes.
    pub bytes: u64,
    /// Average per-item phase breakdown.
    pub per_item: Breakdown,
    /// Modeled clock (GHz) for time conversions.
    pub clock_ghz: f64,
    /// Round-trip latency, for TCP_RR.
    pub latency_us: Option<f64>,
    /// Transactions per second, for memcached.
    pub transactions_per_sec: Option<f64>,
    /// Peak shadow-pool footprint (copy engine only).
    pub shadow_bytes_peak: Option<u64>,
}

impl ExpResult {
    /// Average busy microseconds per work item.
    pub fn us_per_item(&self) -> f64 {
        if self.items == 0 {
            return 0.0;
        }
        self.per_item.total().to_micros(self.clock_ghz)
    }

    /// Ratio of this result's throughput to a baseline's.
    pub fn relative_gbps(&self, baseline: &ExpResult) -> f64 {
        if baseline.gbps == 0.0 {
            return 0.0;
        }
        self.gbps / baseline.gbps
    }

    /// Ratio of this result's CPU use to a baseline's.
    pub fn relative_cpu(&self, baseline: &ExpResult) -> f64 {
        if baseline.cpu == 0.0 {
            return 0.0;
        }
        self.cpu / baseline.cpu
    }
}

/// Formats a per-item breakdown as `phase=µs` pairs (legend order),
/// skipping empty phases.
pub fn format_breakdown_us(b: &Breakdown, clock_ghz: f64) -> String {
    let mut parts = Vec::new();
    for (phase, cycles) in b.iter() {
        if cycles > Cycles::ZERO {
            parts.push(format!(
                "{}={:.2}us",
                phase.label(),
                cycles.to_micros(clock_ghz)
            ));
        }
    }
    if parts.is_empty() {
        parts.push("idle".to_string());
    }
    parts.join("  ")
}

/// Renders results as an aligned text table with relative columns against
/// the first row whose engine is `baseline` (falling back to the first
/// row), mirroring the paper's absolute+relative figure pairs.
pub fn format_table(title: &str, rows: &[ExpResult], baseline: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<10} {:>6} {:>8} {:>10} {:>8} {:>8} {:>8} {:>10}\n",
        "engine", "cores", "msgsize", "Gb/s", "rel", "cpu%", "relcpu", "us/item"
    ));
    let base = rows
        .iter()
        .find(|r| r.engine == baseline)
        .or_else(|| rows.first());
    for r in rows {
        let (rel, relcpu) = match base {
            Some(b) => (r.relative_gbps(b), r.relative_cpu(b)),
            None => (0.0, 0.0),
        };
        out.push_str(&format!(
            "{:<10} {:>6} {:>8} {:>10.2} {:>8.2} {:>8.1} {:>8.2} {:>10.2}\n",
            r.engine,
            r.cores,
            r.msg_size,
            r.gbps,
            rel,
            r.cpu * 100.0,
            relcpu,
            r.us_per_item(),
        ));
        if let Some(l) = r.latency_us {
            out.push_str(&format!("{:<10}   latency = {l:.1} us\n", ""));
        }
        if let Some(t) = r.transactions_per_sec {
            out.push_str(&format!("{:<10}   {:.2} M transactions/s\n", "", t / 1e6));
        }
    }
    out
}

/// Sums busy time per phase across a slice of results (used by breakdown
/// figures).
pub fn merged_breakdown(rows: &[ExpResult]) -> Breakdown {
    rows.iter().map(|r| r.per_item).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Phase;

    fn result(engine: &'static str, gbps: f64, cpu: f64) -> ExpResult {
        let mut b = Breakdown::new();
        b.record(Phase::Memcpy, Cycles(264));
        ExpResult {
            engine,
            cores: 1,
            msg_size: 1500,
            gbps,
            cpu,
            items: 100,
            bytes: 150_000,
            per_item: b,
            clock_ghz: 2.4,
            latency_us: None,
            transactions_per_sec: None,
            shadow_bytes_peak: None,
        }
    }

    #[test]
    fn relative_columns() {
        let base = result("no iommu", 16.0, 0.5);
        let copy = result("copy", 12.0, 0.6);
        assert!((copy.relative_gbps(&base) - 0.75).abs() < 1e-9);
        assert!((copy.relative_cpu(&base) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn us_per_item() {
        let r = result("copy", 10.0, 0.5);
        assert!((r.us_per_item() - 0.11).abs() < 0.01);
    }

    #[test]
    fn table_contains_rows_and_relatives() {
        let rows = vec![result("no iommu", 16.0, 0.5), result("copy", 12.0, 0.6)];
        let t = format_table("Figure X", &rows, "no iommu");
        assert!(t.contains("Figure X"));
        assert!(t.contains("no iommu"));
        assert!(t.contains("copy"));
        assert!(t.contains("0.75"));
    }

    #[test]
    fn breakdown_formatting_skips_empty() {
        let mut b = Breakdown::new();
        b.record(Phase::Memcpy, Cycles(2400));
        let s = format_breakdown_us(&b, 2.4);
        assert_eq!(s, "memcpy=1.00us");
        assert_eq!(format_breakdown_us(&Breakdown::new(), 2.4), "idle");
    }
}
