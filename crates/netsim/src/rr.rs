//! netperf TCP request/response latency (Figures 9 and 10).

use crate::driver::{CoreDriver, HEADER_BYTES};
use crate::report::ExpResult;
use crate::setup::{EngineKind, ExpConfig, SimStack};
use devices::MTU;
use simcore::{Breakdown, CoreCtx, CoreId, Cycles};

/// Remote peer turnaround (its full network stack plus netperf), modeled as
/// a constant because the remote machine is not under evaluation.
const REMOTE_TURNAROUND_NS: f64 = 8_000.0;

/// Runs the single-core TCP request/response benchmark: send a
/// `cfg.msg_size`-byte message, wait for an equal-sized response, repeat.
/// Reports the mean round-trip latency and the CPU utilization of the
/// evaluated machine (Figures 9–10).
pub fn tcp_rr(kind: EngineKind, cfg: &ExpConfig) -> ExpResult {
    let stack = SimStack::new(kind, cfg);
    let drv = CoreDriver::new(CoreId(0));
    let mut ctx = CoreCtx::new(CoreId(0), stack.cost.clone());
    ctx.seek(Cycles(1));
    let clock = cfg.cost.clock_ghz;
    let turnaround = Cycles::from_nanos(REMOTE_TURNAROUND_NS, clock);

    let mut payload = stack.rng.borrow_mut().bytes(cfg.msg_size.max(8));
    let total = cfg.warmup_per_core + cfg.items_per_core;
    let mut latency_sum = Cycles::ZERO;
    let mut measured = 0u64;
    let mut bytes = 0u64;
    let mut meas_start = Cycles::ZERO;

    for i in 0..total {
        if i == cfg.warmup_per_core {
            ctx.reset_stats();
            meas_start = ctx.now();
        }
        payload[0..8].copy_from_slice(&i.to_le_bytes());
        let start = ctx.now();

        // --- request: send msg_size bytes (one or more TSO buffers) ---
        let mut sent = 0usize;
        let mut wire_done = ctx.now();
        while sent < payload.len() {
            let chunk = (payload.len() - sent).min(64 * 1024);
            let (n, _frames) = drv.tx_one(
                &stack,
                &mut ctx,
                &payload[sent..sent + chunk],
                cfg.verify_data,
            );
            sent += n;
            // Request frames serialize on the TX direction.
            let mut remaining = n;
            while remaining > 0 {
                let seg = remaining.min(MTU);
                wire_done = stack.wire_back.transmit(ctx.now(), seg + HEADER_BYTES);
                remaining -= seg;
            }
        }

        // --- remote peer turns the message around ---
        let resp_start = wire_done + turnaround;

        // --- response: receive msg_size bytes as MTU frames ---
        let mut received = 0usize;
        let mut arrival = resp_start;
        while received < payload.len() {
            let seg = (payload.len() - received).min(MTU);
            arrival = stack.wire.transmit(arrival, seg + HEADER_BYTES);
            ctx.wait_until(arrival);
            let delivered = drv.rx_one(
                &stack,
                &mut ctx,
                &payload[received..received + seg],
                cfg.verify_data,
            );
            received += delivered;
        }

        if i >= cfg.warmup_per_core {
            latency_sum += ctx.now() - start;
            measured += 1;
            bytes += 2 * payload.len() as u64;
        }
    }
    stack.engine.flush_deferred(&mut ctx);
    stack.mmu.drain_pending(&mut ctx);

    let window = ctx.now().saturating_sub(meas_start);
    let gbps = if window > Cycles::ZERO {
        bytes as f64 * 8.0 / window.to_secs(clock) / 1e9
    } else {
        0.0
    };
    let dev = Some(crate::setup::NIC_DEV.0);
    obs::breakdown::record_breakdown(stack.obs.registry(), dev, &ctx.breakdown);
    let per_item: Breakdown =
        obs::breakdown::breakdown_view(stack.obs.registry(), dev).per_item(measured);
    ExpResult {
        engine: kind.name(),
        cores: 1,
        msg_size: cfg.msg_size,
        gbps,
        cpu: ctx.utilization(),
        items: measured,
        bytes,
        per_item,
        clock_ghz: clock,
        latency_us: Some(latency_sum.to_micros(clock) / measured.max(1) as f64),
        transactions_per_sec: None,
        shadow_bytes_peak: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(msg: usize) -> ExpConfig {
        ExpConfig {
            msg_size: msg,
            items_per_core: 800,
            warmup_per_core: 100,
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn latency_is_comparable_across_engines() {
        // Figure 9: protection overheads are small relative to the RTT, so
        // all engines show comparable latency.
        let cfg = quick(64);
        let no = tcp_rr(EngineKind::NoIommu, &cfg);
        let copy = tcp_rr(EngineKind::Copy, &cfg);
        let idp = tcp_rr(EngineKind::IdentityPlus, &cfg);
        let lat_no = no.latency_us.unwrap();
        let lat_copy = copy.latency_us.unwrap();
        let lat_idp = idp.latency_us.unwrap();
        assert!(lat_copy / lat_no < 1.25, "copy {lat_copy} vs {lat_no}");
        assert!(lat_idp / lat_no < 1.4, "identity+ {lat_idp} vs {lat_no}");
    }

    #[test]
    fn latency_grows_sublinearly_with_size() {
        // Figure 9: 1024x larger messages cost only ~4x the latency because
        // per-byte costs are not dominant.
        let small = tcp_rr(EngineKind::NoIommu, &quick(64)).latency_us.unwrap();
        let large = tcp_rr(EngineKind::NoIommu, &quick(64 * 1024))
            .latency_us
            .unwrap();
        let ratio = large / small;
        assert!(ratio > 2.0 && ratio < 12.0, "latency ratio {ratio}");
    }

    #[test]
    fn identity_plus_spends_cpu_on_iommu_work() {
        // Figure 10: identity+ spends a large share of its busy time on
        // IOMMU management; copy's overhead share is smaller.
        let cfg = quick(64 * 1024);
        let idp = tcp_rr(EngineKind::IdentityPlus, &cfg);
        let copy = tcp_rr(EngineKind::Copy, &cfg);
        let idp_iommu = idp.per_item.fraction(simcore::Phase::InvalidateIotlb)
            + idp.per_item.fraction(simcore::Phase::IommuPageTableMgmt);
        let copy_mgmt = copy.per_item.fraction(simcore::Phase::Memcpy)
            + copy.per_item.fraction(simcore::Phase::CopyMgmt);
        assert!(idp_iommu > 0.1, "identity+ iommu share {idp_iommu}");
        assert!(copy_mgmt > 0.02, "copy share {copy_mgmt}");
        assert!(
            copy.per_item.get(simcore::Phase::InvalidateIotlb) == Cycles::ZERO,
            "copy never invalidates"
        );
    }

    #[test]
    fn rr_is_mostly_idle() {
        // A ping-pong workload leaves the CPU idle while the wire and the
        // remote peer do their part.
        let r = tcp_rr(EngineKind::NoIommu, &quick(1024));
        assert!(r.cpu < 0.6, "cpu = {}", r.cpu);
    }
}
