//! The NIC driver: the per-core receive and transmit paths.
//!
//! Mirrors a Linux NIC driver's fast path: allocate an skb from the slab,
//! `dma_map` it, post a descriptor, let the NIC DMA, reap the completion,
//! `dma_unmap`, hand the data to the stack. Every step both *does the
//! work* (real bytes, real descriptors, real mappings) and *charges the
//! modeled cost*.

// lint: allow(panic) — the driver posted the mapping itself; a fault means the protection scheme is broken

use crate::setup::SimStack;
use devices::{Nic, DESC_BYTES, MTU};
use dma_api::{DmaBuf, DmaDirection};
use simcore::{CoreCtx, CoreId, Cycles, Phase};
use std::cell::RefCell;

thread_local! {
    /// Wire-payload scratch, reused across packets so TX reassembly does
    /// not allocate up to `tso_max` bytes per transmitted buffer.
    /// Thread-local (rather than global) because stacks on different host
    /// threads may transmit concurrently in tests.
    static TX_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Ethernet + IP + TCP header bytes added to each wire frame.
pub const HEADER_BYTES: usize = 66;

/// skb metadata overhead allocated alongside the packet data (rounds the
/// MTU allocation into kmalloc's 2 KB class, like Linux's 1.5 KB skbs do).
pub const SKB_OVERHEAD: usize = 320;

/// Writes an RX/TX descriptor into ring memory at the slot the NIC will
/// consume next (a CPU store into the coherent ring buffer).
pub fn post_rx(stack: &SimStack, ring: usize, iova: u64, len: u32) {
    let slot = stack.nic.rx_next(ring);
    let d = Nic::encode_descriptor(iova, len);
    stack
        .mem
        .write(stack.rx_rings[ring].pa.add((slot * DESC_BYTES) as u64), &d)
        .expect("ring memory is allocated");
}

/// Writes a TX descriptor at the slot the NIC will consume next.
pub fn post_tx(stack: &SimStack, ring: usize, iova: u64, len: u32) {
    post_tx_at(stack, ring, stack.nic.tx_next(ring), iova, len);
}

/// Writes a TX descriptor at an explicit slot (scatter/gather chains post
/// several descriptors ahead of the NIC's consume pointer).
pub fn post_tx_at(stack: &SimStack, ring: usize, slot: usize, iova: u64, len: u32) {
    let d = Nic::encode_descriptor(iova, len);
    stack
        .mem
        .write(stack.tx_rings[ring].pa.add((slot * DESC_BYTES) as u64), &d)
        .expect("ring memory is allocated");
}

/// Per-core driver state: which ring this core owns.
#[derive(Debug, Clone, Copy)]
pub struct CoreDriver {
    /// The core this driver instance runs on.
    pub core: CoreId,
    /// The NIC ring pair owned by this core.
    pub ring: usize,
}

impl CoreDriver {
    /// Creates the driver for `core`, which owns ring pair `core`.
    pub fn new(core: CoreId) -> Self {
        CoreDriver {
            core,
            ring: core.index(),
        }
    }

    /// The full per-packet receive path: skb alloc → `dma_map` → post →
    /// NIC DMA → `dma_unmap` → protocol processing → `copy_to_user` →
    /// kfree. Returns the bytes the stack delivered to the application.
    ///
    /// # Panics
    ///
    /// Panics if the NIC's DMA faults (the driver posted the mapping, so a
    /// fault means the protection scheme is broken) or if `verify` is set
    /// and the delivered bytes differ from `payload`.
    pub fn rx_one(
        &self,
        stack: &SimStack,
        ctx: &mut CoreCtx,
        payload: &[u8],
        verify: bool,
    ) -> usize {
        let domain = stack.mem.topology().domain_of_core(self.core);
        // Allocate and map an MTU receive buffer.
        let skb = obs::profile::scope(ctx, "skb_alloc", |ctx| {
            ctx.charge(Phase::Other, ctx.cost.kmalloc_alloc);
            stack
                .kmalloc
                .alloc(MTU + SKB_OVERHEAD, domain)
                .expect("skb allocation")
        });
        let mapping = stack
            .engine
            .map(ctx, DmaBuf::new(skb, MTU), DmaDirection::FromDevice)
            .expect("dma_map");
        post_rx(stack, self.ring, mapping.iova.get(), MTU as u32);

        // The frame lands: NIC fetches the descriptor, DMAs the payload,
        // writes the completion.
        let completion = stack
            .nic
            .receive(self.ring, payload)
            .expect("NIC receive must succeed through a live mapping");

        // Driver reaps the completion and unmaps (copy-out under DMA
        // shadowing happens here).
        stack.engine.unmap(ctx, mapping).expect("dma_unmap");

        // Protocol processing and delivery to userspace. The three charges
        // are one burst: the clock advances per charge (virtual-time
        // ordering unchanged), the breakdown is committed once, before the
        // profiler scope exits so the depth-1 cut still matches the
        // registry breakdown cycle for cycle.
        obs::profile::scope(ctx, "deliver", |ctx| {
            ctx.burst(|ctx, b| {
                ctx.charge_batch(b, Phase::RxParsing, ctx.cost.rx_parse);
                ctx.charge_batch(b, Phase::CopyUser, ctx.cost.copy_user(completion.len));
                ctx.charge_batch(b, Phase::Other, ctx.cost.rx_other);
            });
        });

        if verify {
            let intact = stack
                .mem
                .equals(skb, &payload[..completion.len])
                .expect("OS buffer readable");
            assert!(
                intact,
                "payload corrupted in delivery ({})",
                stack.engine.name()
            );
        }
        obs::profile::scope(ctx, "skb_free", |ctx| {
            ctx.charge(Phase::Other, ctx.cost.kmalloc_free);
        });
        stack.kmalloc.free(skb).expect("kfree");
        stack.obs.set_now_hint(ctx.now());
        stack.net.rx_packets.inc();
        stack.net.rx_bytes.add(completion.len as u64);
        completion.len
    }

    /// The per-TSO-buffer transmit path: copy from "userspace" into an skb,
    /// `dma_map` it to-device, post, let the NIC fetch and segment, unmap
    /// on completion. Returns `(payload_len, wire_frames)`.
    pub fn tx_one(
        &self,
        stack: &SimStack,
        ctx: &mut CoreCtx,
        payload: &[u8],
        verify: bool,
    ) -> (usize, usize) {
        let domain = stack.mem.topology().domain_of_core(self.core);
        let len = payload.len();
        assert!(len <= stack.nic.config().tso_max, "TSO limit");

        // copy_from_user into the skb.
        let skb = obs::profile::scope(ctx, "skb_alloc", |ctx| {
            ctx.charge(Phase::Other, ctx.cost.kmalloc_alloc);
            let skb = stack
                .kmalloc
                .alloc(len + SKB_OVERHEAD, domain)
                .expect("skb allocation");
            stack.mem.write(skb, payload).expect("skb writable");
            ctx.charge(Phase::CopyUser, ctx.cost.copy_user(len));
            skb
        });

        // TCP/TSO preparation.
        obs::profile::scope(ctx, "tso_prep", |ctx| {
            let segments = len.div_ceil(MTU).max(1);
            ctx.charge(Phase::Other, ctx.cost.tx_other_per_buffer);
            ctx.charge(Phase::Other, ctx.cost.tx_per_segment * segments as u64);
        });

        let mapping = stack
            .engine
            .map(ctx, DmaBuf::new(skb, len), DmaDirection::ToDevice)
            .expect("dma_map");
        post_tx(stack, self.ring, mapping.iova.get(), len as u32);

        // The NIC fetches the payload and segments it onto the wire.
        let completion = TX_SCRATCH.with(|scratch| {
            let mut wire_bytes = scratch.borrow_mut();
            let completion = stack
                .nic
                .transmit_into(self.ring, &mut wire_bytes)
                .expect("NIC transmit must succeed through a live mapping");
            if verify {
                assert_eq!(
                    *wire_bytes,
                    payload,
                    "payload corrupted on the way to the wire ({})",
                    stack.engine.name()
                );
            }
            completion
        });

        // Completion: unmap and free.
        stack.engine.unmap(ctx, mapping).expect("dma_unmap");
        obs::profile::scope(ctx, "skb_free", |ctx| {
            ctx.charge(Phase::Other, ctx.cost.kmalloc_free);
        });
        stack.kmalloc.free(skb).expect("kfree");
        stack.obs.set_now_hint(ctx.now());
        stack.net.tx_buffers.inc();
        stack.net.tx_bytes.add(completion.len as u64);
        stack.net.tx_frames.add(completion.frames as u64);
        (completion.len, completion.frames)
    }

    /// The scatter/gather transmit path (§5.2: "SG operations are
    /// implemented analogously, with each SG element copied to/from its
    /// own shadow buffer"): the payload is split across `frags` kmalloc'd
    /// fragments, mapped with `dma_map_sg`, posted as a descriptor chain,
    /// and gathered by the NIC into one TSO payload.
    pub fn tx_one_sg(
        &self,
        stack: &SimStack,
        ctx: &mut CoreCtx,
        payload: &[u8],
        frags: usize,
        verify: bool,
    ) -> (usize, usize) {
        use dma_api::DmaBuf;
        let len = payload.len();
        let frags = frags.clamp(1, len.max(1));
        assert!(len <= stack.nic.config().tso_max, "TSO limit");
        let domain = stack.mem.topology().domain_of_core(self.core);

        // copy_from_user into the fragment skbs.
        let per = len.div_ceil(frags);
        let mut bufs = Vec::with_capacity(frags);
        let mut pas = Vec::with_capacity(frags);
        let mut off = 0;
        obs::profile::scope(ctx, "skb_alloc", |ctx| {
            while off < len {
                let take = per.min(len - off);
                ctx.charge(Phase::Other, ctx.cost.kmalloc_alloc);
                let pa = stack
                    .kmalloc
                    .alloc(take, domain)
                    .expect("fragment allocation");
                stack
                    .mem
                    .write(pa, &payload[off..off + take])
                    .expect("frag");
                bufs.push(DmaBuf::new(pa, take));
                pas.push(pa);
                off += take;
            }
            ctx.charge(Phase::CopyUser, ctx.cost.copy_user(len));
        });
        obs::profile::scope(ctx, "tso_prep", |ctx| {
            let segments = len.div_ceil(MTU).max(1);
            ctx.charge(Phase::Other, ctx.cost.tx_other_per_buffer);
            ctx.charge(Phase::Other, ctx.cost.tx_per_segment * segments as u64);
        });

        let mappings = stack
            .engine
            .map_sg(ctx, &bufs, DmaDirection::ToDevice)
            .expect("dma_map_sg");
        let entries = stack.nic.config().ring_entries;
        let first = stack.nic.tx_next(self.ring);
        for (k, m) in mappings.iter().enumerate() {
            post_tx_at(
                stack,
                self.ring,
                (first + k) % entries,
                m.iova.get(),
                m.len as u32,
            );
        }
        let completion = TX_SCRATCH.with(|scratch| {
            let mut wire_bytes = scratch.borrow_mut();
            let completion = stack
                .nic
                .transmit_gather_into(self.ring, mappings.len(), &mut wire_bytes)
                .expect("NIC gather transmit");
            if verify {
                assert_eq!(
                    *wire_bytes,
                    payload,
                    "scatter/gather payload corrupted ({})",
                    stack.engine.name()
                );
            }
            completion
        });
        stack.engine.unmap_sg(ctx, mappings).expect("dma_unmap_sg");
        obs::profile::scope(ctx, "skb_free", |ctx| {
            for _ in &pas {
                ctx.charge(Phase::Other, ctx.cost.kmalloc_free);
            }
        });
        for pa in pas {
            stack.kmalloc.free(pa).expect("kfree");
        }
        stack.obs.set_now_hint(ctx.now());
        stack.net.tx_buffers.inc();
        stack.net.tx_bytes.add(completion.len as u64);
        stack.net.tx_frames.add(completion.frames as u64);
        (completion.len, completion.frames)
    }

    /// Puts this buffer's wire frames on the link, returning when the last
    /// frame finished serializing. Applies ring backpressure: if the wire
    /// is backed up beyond ~32 frames, the core idles until it drains.
    pub fn wire_out(&self, stack: &SimStack, ctx: &mut CoreCtx, len: usize) -> Cycles {
        let mut end = Cycles::ZERO;
        let mut remaining = len;
        while remaining > 0 {
            let seg = remaining.min(MTU);
            end = stack.wire.transmit(ctx.now(), seg + HEADER_BYTES);
            remaining -= seg;
        }
        let slack = stack.wire.frame_time(MTU + HEADER_BYTES) * 32;
        let free = stack.wire.next_free();
        if free > ctx.now() + slack {
            ctx.wait_until(free - slack);
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{EngineKind, ExpConfig};
    use std::sync::Arc;

    fn ctx(stack: &SimStack, core: u16) -> CoreCtx {
        let mut c = CoreCtx::new(CoreId(core), Arc::new(stack.cost.as_ref().clone()));
        c.seek(Cycles(1));
        c
    }

    #[test]
    fn rx_one_delivers_and_charges() {
        for kind in EngineKind::ALL {
            let stack = SimStack::new(kind, &ExpConfig::quick());
            let mut c = ctx(&stack, 0);
            let payload: Vec<u8> = (0..1400).map(|i| (i * 7 % 256) as u8).collect();
            let n = CoreDriver::new(CoreId(0)).rx_one(&stack, &mut c, &payload, true);
            assert_eq!(n, 1400);
            assert!(c.busy() > Cycles::ZERO);
            assert!(c.breakdown.get(Phase::RxParsing) > Cycles::ZERO);
            assert!(c.breakdown.get(Phase::CopyUser) > Cycles::ZERO);
        }
    }

    #[test]
    fn tx_one_emits_expected_frames() {
        for kind in EngineKind::ALL {
            let stack = SimStack::new(kind, &ExpConfig::quick());
            let mut c = ctx(&stack, 0);
            let payload: Vec<u8> = (0..48_000).map(|i| (i * 3 % 256) as u8).collect();
            let (len, frames) = CoreDriver::new(CoreId(0)).tx_one(&stack, &mut c, &payload, true);
            assert_eq!(len, 48_000);
            assert_eq!(frames, 32);
        }
    }

    #[test]
    fn copy_engine_charges_memcpy_on_both_paths() {
        let stack = SimStack::new(EngineKind::Copy, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx(&stack, 0);
        drv.rx_one(&stack, &mut c, &vec![1u8; 1500], true);
        let rx_copy = c.breakdown.get(Phase::Memcpy);
        assert!(rx_copy > Cycles::ZERO, "RX copies at unmap");
        let mut c2 = ctx(&stack, 0);
        drv.tx_one(&stack, &mut c2, &vec![2u8; 1500], true);
        assert!(
            c2.breakdown.get(Phase::Memcpy) > Cycles::ZERO,
            "TX copies at map"
        );
    }

    #[test]
    fn noiommu_never_touches_iommu_phases() {
        let stack = SimStack::new(EngineKind::NoIommu, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx(&stack, 0);
        drv.rx_one(&stack, &mut c, &vec![1u8; 1500], true);
        drv.tx_one(&stack, &mut c, &vec![2u8; 1500], true);
        assert_eq!(c.breakdown.get(Phase::InvalidateIotlb), Cycles::ZERO);
        assert_eq!(c.breakdown.get(Phase::IommuPageTableMgmt), Cycles::ZERO);
        assert_eq!(c.breakdown.get(Phase::Memcpy), Cycles::ZERO);
    }

    #[test]
    fn wire_out_applies_backpressure() {
        let stack = SimStack::new(EngineKind::NoIommu, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx(&stack, 0);
        // Blast far more than the wire can take instantly; the core must
        // accumulate idle time waiting for the link.
        for _ in 0..100 {
            drv.wire_out(&stack, &mut c, 64 * 1024);
        }
        assert!(c.idle() > Cycles::ZERO, "backpressure idles the core");
    }

    #[test]
    fn rings_are_device_visible_even_under_protection() {
        // The descriptor fetch itself is a DMA: under a protected engine it
        // goes through the IOMMU via the coherent mapping.
        let stack = SimStack::new(EngineKind::Copy, &ExpConfig::quick());
        let mut c = ctx(&stack, 0);
        let drv = CoreDriver::new(CoreId(0));
        drv.rx_one(&stack, &mut c, &[3u8; 100], true);
        // The NIC performed IOTLB-translated accesses (ring + payload).
        assert!(stack.mmu.iotlb_stats().hits + stack.mmu.iotlb_stats().misses > 0);
    }

    #[test]
    fn payload_corruption_is_detected() {
        // Sanity check that verification actually compares bytes: corrupt
        // the OS buffer reading path by delivering through an engine and
        // checking a *different* payload panics.
        let stack = SimStack::new(EngineKind::NoIommu, &ExpConfig::quick());
        let mut c = ctx(&stack, 0);
        let drv = CoreDriver::new(CoreId(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // rx_one verifies against the payload it delivered — always ok.
            drv.rx_one(&stack, &mut c, &[1u8; 64], true)
        }));
        assert!(r.is_ok());
    }
}
