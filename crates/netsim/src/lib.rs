//! # netsim — networking workloads over the simulated stack
//!
//! Reimplements the paper's evaluation workloads (§6) against the
//! simulated machine: a 16-core dual-socket host, a 40 Gb/s NIC, and one
//! of the paper's DMA protection engines.
//!
//! - [`tcp_stream_rx`] / [`tcp_stream_tx`] — netperf `TCP_STREAM`
//!   receive/transmit throughput, message sizes 64 B – 64 KB
//!   (Figures 1, 3, 4, 6, 7; breakdowns for Figures 5 and 8).
//! - [`tcp_rr`] — netperf TCP request/response latency (Figures 9, 10).
//! - [`memcached`] — a memcached/memslap-style key-value workload
//!   (Figure 11): 64 B keys, 1 KB values, 90 %/10 % GET/SET.
//!
//! Every workload drives the *functional* stack — kmalloc'd skbs, real
//! `dma_map`/`dma_unmap`, real NIC descriptor DMAs, real payload bytes that
//! are verified on delivery — while the virtual-time engine accounts
//! throughput, CPU utilization, and the per-phase packet-time breakdown.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod kv;
mod report;
mod rr;
mod setup;
mod stream;

pub use driver::{CoreDriver, HEADER_BYTES, SKB_OVERHEAD};
pub use kv::memcached;
pub use report::{format_breakdown_us, format_table, merged_breakdown, ExpResult};
pub use rr::tcp_rr;
pub use setup::{EngineKind, ExpConfig, NetCounters, SimStack, NIC_DEV, PERCORE_INVALQ_BATCH};
pub use stream::{tcp_stream_rx, tcp_stream_rx_on, tcp_stream_tx, tcp_stream_tx_on};
