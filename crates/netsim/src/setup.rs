//! Experiment configuration and machine construction.

// lint: allow(panic) — machine construction panics on impossible configurations, documented under # Panics

use devices::{Nic, NicConfig, DESC_BYTES};
use dma_api::{
    Bus, BusObserver, CoherentBuffer, DmaEngine, DmaObserver, IdentityDma, LinuxDma, NoIommu,
    SelfInvalidatingDma, TracedDma,
};
use dmasan::DmaSan;
use iommu::{DeviceId, Iommu};
use memsim::{Kmalloc, NumaTopology, PhysMemory};
use obs::{Counter, Obs};
use shadow_core::ShadowDma;
use simcore::{CoreCtx, CoreId, CostModel, Cycles, SimRng, Wire};
use std::fmt;
use std::sync::Arc;

/// The DMA protection engines the paper compares (Table 1), plus the
/// self-invalidating-hardware ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// IOMMU disabled (*no iommu*).
    NoIommu,
    /// DMA shadowing (*copy*) — the paper's contribution.
    Copy,
    /// Strict identity mappings (*identity+*, ATC'15 \[42\]).
    IdentityPlus,
    /// Deferred identity mappings (*identity−*, ATC'15 \[42\]).
    IdentityMinus,
    /// Stock Linux, strict protection (*strict*).
    LinuxStrict,
    /// Stock Linux, deferred protection (*defer*).
    LinuxDefer,
    /// EiovaR (FAST'15 \[38\]): stock Linux + IOVA-range caching, strict.
    EiovarStrict,
    /// EiovaR (FAST'15 \[38\]), deferred.
    EiovarDefer,
    /// Self-invalidating IOMMU hardware (Basu et al. \[10\], §7) — an
    /// ablation engine, not part of the paper's comparison set.
    SelfInvalHw,
}

impl EngineKind {
    /// All engines of the paper's Table 1, in legend order.
    pub const ALL: [EngineKind; 8] = [
        EngineKind::NoIommu,
        EngineKind::Copy,
        EngineKind::IdentityMinus,
        EngineKind::IdentityPlus,
        EngineKind::EiovarDefer,
        EngineKind::EiovarStrict,
        EngineKind::LinuxDefer,
        EngineKind::LinuxStrict,
    ];

    /// The four engines shown in Figures 3–11.
    pub const FIGURE_SET: [EngineKind; 4] = [
        EngineKind::NoIommu,
        EngineKind::Copy,
        EngineKind::IdentityMinus,
        EngineKind::IdentityPlus,
    ];

    /// The engine's name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::NoIommu => "no iommu",
            EngineKind::Copy => "copy",
            EngineKind::IdentityPlus => "identity+",
            EngineKind::IdentityMinus => "identity-",
            EngineKind::LinuxStrict => "strict",
            EngineKind::LinuxDefer => "defer",
            EngineKind::EiovarStrict => "eiovar+",
            EngineKind::EiovarDefer => "eiovar-",
            EngineKind::SelfInvalHw => "self-inval hw",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Experiment parameters (defaults follow the paper's setup).
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Cores driving the workload (1 or 16 in the paper).
    pub cores: usize,
    /// netperf message size in bytes.
    pub msg_size: usize,
    /// Measured work items (packets / TSO buffers / transactions) per core,
    /// after warm-up.
    pub items_per_core: u64,
    /// Warm-up items per core (pool growth, cold caches).
    pub warmup_per_core: u64,
    /// Cost model.
    pub cost: CostModel,
    /// Wire rate in Gb/s.
    pub wire_gbps: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Verify payload integrity end-to-end on every delivery.
    pub verify_data: bool,
    /// Bytes the NIC actually delivers per RX frame (packets can be much
    /// smaller than their MTU buffers); `None` = full MTU frames.
    pub rx_wire_payload: Option<usize>,
    /// Install the §5.4 copying hint on the copy engine (parses the
    /// payload's first two bytes as the wire length, like the prototype's
    /// IP-length hint).
    pub use_copy_hint: bool,
    /// Shadow-pool configuration for the copy engine (size classes, slot
    /// bound). `None` = the paper's default (4 KB + 64 KB classes).
    pub pool_config: Option<shadow_core::PoolConfig>,
    /// Fragments per TX buffer: 1 = contiguous skbs (the default);
    /// >1 exercises the scatter/gather path (`dma_map_sg`, §5.2).
    pub tx_sg_frags: usize,
    /// Trace sampling period: keep 1 in `trace_sample` cause chains
    /// (security events are always kept). The default keeps long figure
    /// runs off the tracer's ring lock; set `1` to record everything
    /// (what [`ExpConfig::quick`] and trace-consuming tools do).
    pub trace_sample: u64,
    /// Shard hot allocation state per core: per-core shadow-pool magazines
    /// for the copy engine, the magazine-backed per-core IOVA allocator for
    /// the stock-Linux engines, and per-core invalidation batching in the
    /// IOMMU's queue. Engine names and protection profiles are unchanged so
    /// scaling curves compare like for like; batched invalidation keeps the
    /// §2.2.1 deferred-window semantics (entries invalidate at batch
    /// boundaries, not per unmap).
    pub percore: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            cores: 1,
            msg_size: 64 * 1024,
            items_per_core: 20_000,
            warmup_per_core: 2_000,
            cost: CostModel::haswell_2_4ghz(),
            wire_gbps: 40.0,
            seed: 42,
            verify_data: true,
            rx_wire_payload: None,
            use_copy_hint: false,
            pool_config: None,
            tx_sg_frags: 1,
            trace_sample: 64,
            percore: false,
        }
    }
}

impl ExpConfig {
    /// A small/fast configuration for unit tests.
    pub fn quick() -> Self {
        ExpConfig {
            items_per_core: 2_000,
            warmup_per_core: 200,
            trace_sample: 1,
            ..Default::default()
        }
    }
}

/// The simulated machine: memory, IOMMU, DMA engine, NIC, wire.
///
/// One NIC (device 0) with one RX and one TX descriptor ring per core,
/// protected by the chosen engine.
pub struct SimStack {
    /// Physical memory.
    pub mem: Arc<PhysMemory>,
    /// The IOMMU (present even for `no iommu`, which bypasses it).
    pub mmu: Arc<Iommu>,
    /// The slab allocator the network stack draws skbs from.
    pub kmalloc: Kmalloc,
    /// The DMA protection engine under test.
    pub engine: Box<dyn DmaEngine>,
    /// The NIC model.
    pub nic: Nic,
    /// The 40 Gb/s link, receive direction (traffic toward the host).
    pub wire: Wire,
    /// The transmit direction of the full-duplex link (used by
    /// request/response workloads).
    pub wire_back: Wire,
    /// Per-core RX descriptor rings (driver-side view).
    pub rx_rings: Vec<CoherentBuffer>,
    /// Per-core TX descriptor rings (driver-side view).
    pub tx_rings: Vec<CoherentBuffer>,
    /// Engine kind used to build the stack.
    pub kind: EngineKind,
    /// The cost model (shared with every `CoreCtx`).
    pub cost: Arc<CostModel>,
    /// Deterministic workload RNG.
    pub rng: std::cell::RefCell<SimRng>,
    /// The stack-wide telemetry handle: the IOMMU, the engine (wrapped in
    /// [`TracedDma`]), its pool/allocator/flusher internals, and the driver
    /// all report into this one registry and tracer.
    pub obs: Obs,
    /// The DMA-API sanitizer auditing every map/unmap (via the engine's
    /// observer hook) and every device access (via the observed [`Bus`]).
    /// Lenient by default; strict under the `dmasan-strict` workspace
    /// feature or `DMASAN_STRICT=1`.
    pub san: Arc<DmaSan>,
    /// Driver traffic counters (views over `net.*` registry entries).
    pub net: NetCounters,
}

impl fmt::Debug for SimStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimStack")
            .field("kind", &self.kind)
            .field("engine", &self.engine.name())
            .finish()
    }
}

/// The NIC's requester id in every experiment.
pub const NIC_DEV: DeviceId = DeviceId(0);

/// Per-core pending-invalidation ring threshold used by percore stacks:
/// a ring reaching this many entries is drained into the global
/// invalidation queue in one lock hold (cf. Linux's 250-entry deferred
/// flush list; the ring batches the *queue postings* themselves).
pub const PERCORE_INVALQ_BATCH: usize = 32;

/// Driver-level traffic counters (`net.*` on the NIC device), shared by
/// all cores and incremented by [`crate::CoreDriver`]'s fast paths.
#[derive(Debug, Clone)]
pub struct NetCounters {
    /// Packets delivered up the stack (`net.rx_packets`).
    pub rx_packets: Counter,
    /// Payload bytes delivered (`net.rx_bytes`).
    pub rx_bytes: Counter,
    /// TSO buffers transmitted (`net.tx_buffers`).
    pub tx_buffers: Counter,
    /// Payload bytes handed to the NIC (`net.tx_bytes`).
    pub tx_bytes: Counter,
    /// Wire frames the NIC segmented those buffers into (`net.tx_frames`).
    pub tx_frames: Counter,
}

impl NetCounters {
    fn new(obs: &Obs) -> Self {
        let d = Some(NIC_DEV.0);
        NetCounters {
            rx_packets: obs.counter("net", "rx_packets", d),
            rx_bytes: obs.counter("net", "rx_bytes", d),
            tx_buffers: obs.counter("net", "tx_buffers", d),
            tx_bytes: obs.counter("net", "tx_bytes", d),
            tx_frames: obs.counter("net", "tx_frames", d),
        }
    }
}

impl SimStack {
    /// Builds the machine for `kind` with the paper's topology (16 cores,
    /// 2 NUMA domains, 32 GB) and per-core NIC rings.
    pub fn new(kind: EngineKind, cfg: &ExpConfig) -> Self {
        Self::with_obs(kind, cfg, Obs::isolated())
    }

    /// Builds the machine reporting into an existing telemetry handle
    /// (e.g. to aggregate several stacks, or to feed external sinks).
    pub fn with_obs(kind: EngineKind, cfg: &ExpConfig, obs: Obs) -> Self {
        obs.set_trace_sampling(cfg.trace_sample);
        let cores = cfg.cores.max(1);
        let topo = if cores <= 16 {
            NumaTopology::dual_socket_haswell()
        } else {
            // Beyond the paper's 16-core Haswell pair (the 64/128/256-core
            // scaling sweeps): keep two NUMA domains and scale memory at
            // 2 GB per core so the pool and rings never hit frame limits.
            NumaTopology::new(
                cores as u16,
                2,
                cores as u64 * ((2u64 << 30) / memsim::PAGE_SIZE as u64),
            )
        };
        let mem = Arc::new(PhysMemory::new(topo));
        let mmu = if cfg.percore {
            Arc::new(Iommu::with_obs_batched(
                obs.clone(),
                cores,
                PERCORE_INVALQ_BATCH,
            ))
        } else {
            Arc::new(Iommu::with_obs(obs.clone()))
        };
        let cost = Arc::new(cfg.cost.clone());
        let engine: Box<dyn DmaEngine> = match kind {
            EngineKind::NoIommu => Box::new(NoIommu::new(mem.clone(), NIC_DEV)),
            EngineKind::Copy => {
                let mut pool_cfg = cfg.pool_config.clone().unwrap_or_default();
                // Widen the IOVA core field when the sweep exceeds the
                // paper's 7-bit layout (a no-op at ≤128 cores, so default
                // runs keep byte-identical IOVAs).
                pool_cfg.codec = pool_cfg.codec.with_min_cores(cores);
                if cfg.percore && pool_cfg.magazines.is_none() {
                    pool_cfg.magazines = Some(shadow_core::MagazineConfig::default());
                }
                let shadow = ShadowDma::new(mem.clone(), mmu.clone(), NIC_DEV, pool_cfg);
                if cfg.use_copy_hint {
                    // The prototype's hint: the wire length sits in the
                    // packet's first two (untrusted) bytes.
                    shadow.set_copy_hint(std::sync::Arc::new(|data: &[u8]| {
                        if data.len() < 2 {
                            return data.len();
                        }
                        u16::from_be_bytes([data[0], data[1]]) as usize
                    }));
                }
                Box::new(shadow)
            }
            EngineKind::IdentityPlus => {
                Box::new(IdentityDma::strict(mem.clone(), mmu.clone(), NIC_DEV))
            }
            EngineKind::IdentityMinus => Box::new(IdentityDma::deferred(
                mem.clone(),
                mmu.clone(),
                NIC_DEV,
                cores,
            )),
            EngineKind::LinuxStrict if cfg.percore => Box::new(LinuxDma::percore_strict(
                mem.clone(),
                mmu.clone(),
                NIC_DEV,
                cores,
            )),
            EngineKind::LinuxStrict => {
                Box::new(LinuxDma::strict(mem.clone(), mmu.clone(), NIC_DEV))
            }
            EngineKind::LinuxDefer if cfg.percore => Box::new(LinuxDma::percore_deferred(
                mem.clone(),
                mmu.clone(),
                NIC_DEV,
                cores,
            )),
            EngineKind::LinuxDefer => {
                Box::new(LinuxDma::deferred(mem.clone(), mmu.clone(), NIC_DEV))
            }
            EngineKind::EiovarStrict => {
                Box::new(LinuxDma::eiovar_strict(mem.clone(), mmu.clone(), NIC_DEV))
            }
            EngineKind::EiovarDefer => {
                Box::new(LinuxDma::eiovar_deferred(mem.clone(), mmu.clone(), NIC_DEV))
            }
            EngineKind::SelfInvalHw => {
                Box::new(SelfInvalidatingDma::new(mem.clone(), mmu.clone(), NIC_DEV))
            }
        };
        // Wrap the engine so every dma_map/dma_unmap is counted and traced
        // (unmap-induced invalidations chain to their DmaUnmap event) and
        // audited by the sanitizer; the bus is observed so the sanitizer
        // also sees every device-side access. The wrap happens *before*
        // ring allocation so coherent windows are registered too.
        let san = Arc::new(DmaSan::new(obs.clone()));
        let engine: Box<dyn DmaEngine> = Box::new(TracedDma::with_observer(
            engine,
            obs.clone(),
            san.clone() as Arc<dyn DmaObserver>,
        ));
        let bus = match kind {
            EngineKind::NoIommu => Bus::Direct(mem.clone()),
            _ => Bus::Iommu {
                mmu: mmu.clone(),
                mem: mem.clone(),
            },
        }
        .observed(san.clone() as Arc<dyn BusObserver>);
        let mut nic = Nic::new(NIC_DEV, bus, NicConfig::default());
        // Ring setup happens on core 0 at time zero; its costs are not part
        // of any measurement.
        let mut setup_ctx = CoreCtx::new(CoreId(0), cost.clone());
        let ring_bytes = NicConfig::default().ring_entries * DESC_BYTES;
        let mut rx_rings = Vec::new();
        let mut tx_rings = Vec::new();
        for _ in 0..cores {
            let rx = engine
                .alloc_coherent(&mut setup_ctx, ring_bytes)
                .expect("ring allocation");
            nic.attach_rx_ring(&rx);
            rx_rings.push(rx);
            let tx = engine
                .alloc_coherent(&mut setup_ctx, ring_bytes)
                .expect("ring allocation");
            nic.attach_tx_ring(&tx);
            tx_rings.push(tx);
        }
        SimStack {
            kmalloc: Kmalloc::new(mem.clone()),
            mem,
            mmu,
            engine,
            nic,
            wire: Wire::new(cfg.wire_gbps, cfg.cost.clock_ghz),
            wire_back: Wire::new(cfg.wire_gbps, cfg.cost.clock_ghz),
            rx_rings,
            tx_rings,
            kind,
            cost,
            rng: std::cell::RefCell::new(SimRng::seed(cfg.seed)),
            net: NetCounters::new(&obs),
            obs,
            san,
        }
    }

    /// Tears the stack down like a driver's `remove()` path: frees every
    /// descriptor ring through `dma_free_coherent` and drains any deferred
    /// invalidations. After this, [`dmasan::DmaSan::check_teardown`] on
    /// [`SimStack::san`] reports only genuinely leaked mappings.
    pub fn teardown(&mut self, ctx: &mut CoreCtx) {
        for ring in self.rx_rings.drain(..) {
            self.engine
                .free_coherent(ctx, ring)
                .expect("rx ring free_coherent");
        }
        for ring in self.tx_rings.drain(..) {
            self.engine
                .free_coherent(ctx, ring)
                .expect("tx ring free_coherent");
        }
        self.engine.flush_deferred(ctx);
        // Percore stacks park invalidations in per-core rings; drain them
        // so no translation outlives the driver.
        self.mmu.drain_pending(ctx);
    }

    /// Convenience single-packet loopback used by docs and smoke tests:
    /// maps an MTU buffer for receive, delivers `payload` through the NIC,
    /// unmaps, and returns what landed in the OS buffer.
    pub fn loopback_rx(&mut self, payload: &[u8]) -> Vec<u8> {
        use dma_api::{DmaBuf, DmaDirection};
        let mut ctx = CoreCtx::new(CoreId(0), self.cost.clone());
        ctx.seek(Cycles(1)); // distinguish from setup time zero
        let domain = self.mem.topology().domain_of_core(CoreId(0));
        let skb = self
            .kmalloc
            .alloc(payload.len().max(64), domain)
            .expect("skb allocation");
        let m = self
            .engine
            .map(
                &mut ctx,
                DmaBuf::new(skb, payload.len().max(64)),
                DmaDirection::FromDevice,
            )
            .expect("dma_map");
        crate::driver::post_rx(self, 0, m.iova.get(), payload.len().max(64) as u32);
        self.nic.receive(0, payload).expect("NIC receive");
        self.engine.unmap(&mut ctx, m).expect("dma_unmap");
        let out = self
            .mem
            .read_vec(skb, payload.len())
            .expect("read OS buffer");
        self.kmalloc.free(skb).expect("kfree");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kinds_have_paper_names() {
        let names: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "no iommu",
                "copy",
                "identity-",
                "identity+",
                "eiovar-",
                "eiovar+",
                "defer",
                "strict"
            ]
        );
    }

    #[test]
    fn stack_builds_for_every_engine() {
        for kind in EngineKind::ALL {
            let cfg = ExpConfig::quick();
            let stack = SimStack::new(kind, &cfg);
            assert_eq!(stack.engine.name(), kind.name());
        }
    }

    #[test]
    fn teardown_leaves_sanitizer_leak_clean() {
        for kind in EngineKind::ALL {
            let cfg = ExpConfig::quick();
            let mut stack = SimStack::new(kind, &cfg);
            let payload: Vec<u8> = (0..256u32).map(|i| (i % 256) as u8).collect();
            stack.loopback_rx(&payload);
            let mut ctx = CoreCtx::new(CoreId(0), stack.cost.clone());
            ctx.seek(Cycles(2));
            stack.teardown(&mut ctx);
            assert_eq!(stack.san.check_teardown(), 0, "engine {kind} leaks");
            assert_eq!(stack.san.violation_count(), 0, "engine {kind} violations");
        }
    }

    #[test]
    fn loopback_roundtrip_every_engine() {
        for kind in EngineKind::ALL {
            let cfg = ExpConfig::quick();
            let mut stack = SimStack::new(kind, &cfg);
            let payload: Vec<u8> = (0..1500).map(|i| (i % 256) as u8).collect();
            let out = stack.loopback_rx(&payload);
            assert_eq!(out, payload, "engine {kind}");
        }
    }

    #[test]
    fn percore_stack_tears_down_leak_free() {
        // The per-core machinery (pool magazines, IOVA magazines, pending
        // invalidation rings) parks state outside the shared structures;
        // teardown must return all of it — the sanitizer sees no leaked
        // mappings and the IOMMU holds no pending invalidations.
        for kind in EngineKind::ALL {
            let cfg = ExpConfig {
                percore: true,
                ..ExpConfig::quick()
            };
            let mut stack = SimStack::new(kind, &cfg);
            let payload: Vec<u8> = (0..1500u32).map(|i| (i % 256) as u8).collect();
            let out = stack.loopback_rx(&payload);
            assert_eq!(out, payload, "engine {kind}");
            let mut ctx = CoreCtx::new(CoreId(0), stack.cost.clone());
            ctx.seek(Cycles(2));
            stack.teardown(&mut ctx);
            assert_eq!(stack.san.check_teardown(), 0, "engine {kind} leaks");
            assert_eq!(stack.san.violation_count(), 0, "engine {kind} violations");
            assert_eq!(
                stack.mmu.invalq().pending_len(),
                0,
                "engine {kind} leaves pending invalidations"
            );
        }
    }

    #[test]
    fn stack_scales_beyond_the_papers_core_count() {
        // 64/128/256-core machines build and pass traffic; 256 cores force
        // the copy engine's IOVA core field beyond the paper's 7 bits.
        for cores in [64usize, 256] {
            for kind in [EngineKind::Copy, EngineKind::LinuxStrict] {
                let cfg = ExpConfig {
                    cores,
                    percore: true,
                    ..ExpConfig::quick()
                };
                let mut stack = SimStack::new(kind, &cfg);
                assert_eq!(stack.mem.topology().cores() as usize, cores);
                let payload: Vec<u8> = (0..1500u32).map(|i| (i % 256) as u8).collect();
                let out = stack.loopback_rx(&payload);
                assert_eq!(out, payload, "engine {kind} at {cores} cores");
                let mut ctx = CoreCtx::new(CoreId(0), stack.cost.clone());
                ctx.seek(Cycles(2));
                stack.teardown(&mut ctx);
                assert_eq!(stack.san.check_teardown(), 0);
            }
        }
    }
}
