//! netperf `TCP_STREAM` receive and transmit throughput experiments
//! (Figures 1, 3, 4, 6, 7; the breakdowns of Figures 5 and 8 come from the
//! same runs).

use crate::driver::{CoreDriver, HEADER_BYTES};
use crate::report::ExpResult;
use crate::setup::{EngineKind, ExpConfig, SimStack};
use devices::MTU;
use simcore::{
    Breakdown, CoreCtx, CoreId, CoreTask, CostModel, Cycles, MultiCoreSim, Phase, StepOutcome,
};

/// Per-core measurement window.
#[derive(Debug, Clone, Copy, Default)]
struct Meas {
    items: u64,
    bytes: u64,
    start: Cycles,
    end: Cycles,
}

/// Modeled cycles the *sender machine* spends producing one MTU's worth of
/// stream bytes when netperf writes messages of `msg` bytes: syscall and
/// user-copy per message plus TCP/TSO preparation, amortized per byte.
/// This is what makes small-message throughput sender-limited (§6,
/// footnote 6).
fn sender_cycles_per_mtu(cost: &CostModel, msg: usize) -> Cycles {
    let per_msg = cost.syscall_per_message + cost.copy_user(msg);
    let buffer = msg.clamp(MTU, 64 * 1024);
    let per_byte = per_msg.get() as f64 / msg as f64
        + cost.tx_other_per_buffer.get() as f64 / buffer as f64
        + cost.tx_per_segment.get() as f64 / MTU as f64;
    Cycles((per_byte * MTU as f64).round() as u64)
}

struct RxTask<'a> {
    stack: &'a SimStack,
    drv: CoreDriver,
    verify: bool,
    warmup: u64,
    total: u64,
    count: u64,
    sender_ready: Cycles,
    sender_gap: Cycles,
    payload: Vec<u8>,
    meas: Meas,
}

impl<'a> RxTask<'a> {
    fn new(stack: &'a SimStack, cfg: &ExpConfig, core: usize) -> Self {
        let wire_len = cfg.rx_wire_payload.unwrap_or(MTU).clamp(16, MTU);
        let mut payload = stack.rng.borrow_mut().bytes(wire_len);
        // "IP header": the wire length in the first two bytes (consumed by
        // the §5.4 copying hint), a per-core flavor byte after the stamp.
        payload[0..2].copy_from_slice(&(wire_len as u16).to_be_bytes());
        payload[10] = core as u8;
        RxTask {
            stack,
            drv: CoreDriver::new(CoreId(core as u16)),
            verify: cfg.verify_data,
            warmup: cfg.warmup_per_core,
            total: cfg.warmup_per_core + cfg.items_per_core,
            count: 0,
            sender_ready: Cycles(1),
            sender_gap: sender_cycles_per_mtu(&cfg.cost, cfg.msg_size),
            payload,
            meas: Meas::default(),
        }
    }
}

impl CoreTask for RxTask<'_> {
    fn step(&mut self, ctx: &mut CoreCtx) -> StepOutcome {
        let dev = Some(crate::setup::NIC_DEV.0);
        let engine = self.stack.kind.name();
        obs::profile::task_scope(&self.stack.obs, ctx, engine, dev, "rx", |ctx| {
            // The paired sender produces the next MTU frame; frames from
            // all senders serialize on the shared wire.
            self.count += 1;
            self.sender_ready += self.sender_gap;
            let arrival = self.stack.wire.transmit(
                self.sender_ready.max(Cycles(1)),
                self.payload.len() + HEADER_BYTES,
            );
            ctx.wait_until(arrival);

            // Stamp the frame so every packet's bytes are distinct.
            self.payload[2..10].copy_from_slice(&self.count.to_le_bytes());
            let n = self.drv.rx_one(self.stack, ctx, &self.payload, self.verify);

            if self.count == self.warmup {
                ctx.reset_stats();
                obs::profile::note_reset(ctx);
                self.meas.start = ctx.now();
            } else if self.count > self.warmup {
                self.meas.items += 1;
                self.meas.bytes += n as u64;
            }
            if self.count >= self.total {
                self.meas.end = ctx.now();
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        })
    }
}

struct TxTask<'a> {
    stack: &'a SimStack,
    drv: CoreDriver,
    verify: bool,
    sg_frags: usize,
    msg_size: usize,
    warmup: u64,
    total: u64,
    count: u64,
    /// Fractional-message accounting for sub-MTU messages coalescing into
    /// MTU buffers.
    msg_credit: usize,
    payload: Vec<u8>,
    meas: Meas,
}

impl<'a> TxTask<'a> {
    fn new(stack: &'a SimStack, cfg: &ExpConfig, core: usize) -> Self {
        let buffer = cfg.msg_size.clamp(MTU, 64 * 1024);
        let mut payload = stack.rng.borrow_mut().bytes(buffer);
        payload[0] = core as u8;
        TxTask {
            stack,
            drv: CoreDriver::new(CoreId(core as u16)),
            verify: cfg.verify_data,
            sg_frags: cfg.tx_sg_frags.max(1),
            msg_size: cfg.msg_size,
            warmup: cfg.warmup_per_core,
            total: cfg.warmup_per_core + cfg.items_per_core,
            count: 0,
            msg_credit: 0,
            payload,
            meas: Meas::default(),
        }
    }
}

impl CoreTask for TxTask<'_> {
    fn step(&mut self, ctx: &mut CoreCtx) -> StepOutcome {
        let dev = Some(crate::setup::NIC_DEV.0);
        let engine = self.stack.kind.name();
        obs::profile::task_scope(&self.stack.obs, ctx, engine, dev, "tx", |ctx| {
            self.count += 1;
            let buffer_len = self.payload.len();

            // netperf keeps writing `msg_size`d messages; charge the
            // syscalls that produced this buffer's bytes.
            self.msg_credit += buffer_len;
            while self.msg_credit >= self.msg_size {
                ctx.charge(Phase::Other, ctx.cost.syscall_per_message);
                self.msg_credit -= self.msg_size;
            }

            self.payload[1..9].copy_from_slice(&self.count.to_le_bytes());
            let (n, _frames) = if self.sg_frags > 1 {
                self.drv
                    .tx_one_sg(self.stack, ctx, &self.payload, self.sg_frags, self.verify)
            } else {
                self.drv.tx_one(self.stack, ctx, &self.payload, self.verify)
            };
            self.drv.wire_out(self.stack, ctx, n);

            if self.count == self.warmup {
                ctx.reset_stats();
                obs::profile::note_reset(ctx);
                self.meas.start = ctx.now();
            } else if self.count > self.warmup {
                self.meas.items += 1;
                self.meas.bytes += n as u64;
            }
            if self.count >= self.total {
                self.meas.end = ctx.now();
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        })
    }
}

fn collect(
    engine: &'static str,
    cfg: &ExpConfig,
    sim: &MultiCoreSim,
    meas: &[Meas],
    stack: &SimStack,
) -> ExpResult {
    let clock = cfg.cost.clock_ghz;
    let mut gbps = 0.0;
    let mut bytes = 0;
    let mut items = 0;
    for m in meas {
        let window = m.end.saturating_sub(m.start);
        if window > Cycles::ZERO {
            gbps += m.bytes as f64 * 8.0 / window.to_secs(clock) / 1e9;
        }
        bytes += m.bytes;
        items += m.items;
    }
    let cpu = sim.ctxs().iter().map(|c| c.utilization()).sum::<f64>() / sim.n_cores() as f64;
    // Publish the cores' accumulated phase breakdown to the registry, then
    // report from the registry — it is the single source of truth.
    let total: Breakdown = sim.ctxs().iter().map(|c| c.breakdown).sum::<Breakdown>();
    let dev = Some(crate::setup::NIC_DEV.0);
    obs::breakdown::record_breakdown(stack.obs.registry(), dev, &total);
    let per_item = obs::breakdown::breakdown_view(stack.obs.registry(), dev);
    ExpResult {
        engine,
        cores: cfg.cores,
        msg_size: cfg.msg_size,
        gbps,
        cpu,
        items,
        bytes,
        per_item: per_item.per_item(items),
        clock_ghz: clock,
        latency_us: None,
        transactions_per_sec: None,
        shadow_bytes_peak: shadow_peak(stack),
    }
}

fn shadow_peak(stack: &SimStack) -> Option<u64> {
    // Only the copy engine grows a shadow pool; its peak footprint lives
    // in the stack-wide registry as the `pool.peak_shadow_bytes` gauge.
    stack
        .obs
        .registry()
        .snapshot()
        .gauge("pool", "peak_shadow_bytes", Some(crate::setup::NIC_DEV.0))
        .map(|v| v as u64)
}

/// Runs the `TCP_STREAM` **receive** experiment: the evaluated machine
/// receives `cfg.items_per_core` MTU packets per core from paired senders
/// writing `cfg.msg_size`-byte messages.
///
/// # Examples
///
/// ```
/// use netsim::{tcp_stream_rx, EngineKind, ExpConfig};
///
/// let cfg = ExpConfig { items_per_core: 500, warmup_per_core: 50, ..ExpConfig::quick() };
/// let copy = tcp_stream_rx(EngineKind::Copy, &cfg);
/// let strict = tcp_stream_rx(EngineKind::IdentityPlus, &cfg);
/// assert!(copy.gbps > strict.gbps, "shadowing beats strict zero-copy on RX");
/// ```
pub fn tcp_stream_rx(kind: EngineKind, cfg: &ExpConfig) -> ExpResult {
    tcp_stream_rx_on(&SimStack::new(kind, cfg), cfg)
}

/// Runs the receive experiment on a caller-built stack — e.g. one created
/// with [`SimStack::with_obs`] so its metrics and trace feed an external
/// registry.
pub fn tcp_stream_rx_on(stack: &SimStack, cfg: &ExpConfig) -> ExpResult {
    let mut tasks: Vec<RxTask> = (0..cfg.cores).map(|c| RxTask::new(stack, cfg, c)).collect();
    let (sim, _) = run_tasks(cfg, &mut tasks, stack);
    let meas: Vec<Meas> = tasks.iter().map(|t| t.meas).collect();
    collect(stack.kind.name(), cfg, &sim, &meas, stack)
}

/// Runs the `TCP_STREAM` **transmit** experiment: the evaluated machine
/// sends `cfg.items_per_core` TSO buffers per core.
pub fn tcp_stream_tx(kind: EngineKind, cfg: &ExpConfig) -> ExpResult {
    tcp_stream_tx_on(&SimStack::new(kind, cfg), cfg)
}

/// Runs the transmit experiment on a caller-built stack (see
/// [`tcp_stream_rx_on`]).
pub fn tcp_stream_tx_on(stack: &SimStack, cfg: &ExpConfig) -> ExpResult {
    let mut tasks: Vec<TxTask> = (0..cfg.cores).map(|c| TxTask::new(stack, cfg, c)).collect();
    let (sim, _) = run_tasks(cfg, &mut tasks, stack);
    let meas: Vec<Meas> = tasks.iter().map(|t| t.meas).collect();
    collect(stack.kind.name(), cfg, &sim, &meas, stack)
}

fn run_tasks<T>(cfg: &ExpConfig, tasks: &mut [T], stack: &SimStack) -> (MultiCoreSim, ())
where
    T: CoreTask,
{
    let mut sim = MultiCoreSim::new(stack.cost.clone(), cfg.cores);
    for ctx in sim.ctxs_mut() {
        ctx.seek(Cycles(1));
    }
    {
        let mut boxed: Vec<Box<dyn CoreTask + '_>> = tasks
            .iter_mut()
            .map(|t| Box::new(move |ctx: &mut CoreCtx| t.step(ctx)) as Box<dyn CoreTask + '_>)
            .collect();
        sim.run(&mut boxed, Cycles::MAX);
    }
    let mut tctx = CoreCtx::new(CoreId(0), stack.cost.clone());
    tctx.seek(
        sim.ctxs()
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(Cycles(1)),
    );
    stack.engine.flush_deferred(&mut tctx);
    stack.mmu.drain_pending(&mut tctx);
    (sim, ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cores: usize, msg: usize) -> ExpConfig {
        ExpConfig {
            cores,
            msg_size: msg,
            items_per_core: 3_000,
            warmup_per_core: 300,
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn rx_single_core_ranking_matches_paper() {
        // Figure 3 at large messages: no-iommu > copy > identity- >> identity+.
        let cfg = quick(1, 64 * 1024);
        let no = tcp_stream_rx(EngineKind::NoIommu, &cfg);
        let copy = tcp_stream_rx(EngineKind::Copy, &cfg);
        let idm = tcp_stream_rx(EngineKind::IdentityMinus, &cfg);
        let idp = tcp_stream_rx(EngineKind::IdentityPlus, &cfg);
        assert!(no.gbps > copy.gbps, "{} vs {}", no.gbps, copy.gbps);
        assert!(
            copy.gbps > idm.gbps,
            "copy {} vs identity- {}",
            copy.gbps,
            idm.gbps
        );
        assert!(idm.gbps > idp.gbps);
        // copy is within the paper's 0.76x of no-iommu, and ~2x identity+.
        let rel = copy.gbps / no.gbps;
        assert!(rel > 0.65 && rel < 0.95, "copy/noiommu = {rel}");
        let vs_idp = copy.gbps / idp.gbps;
        assert!(vs_idp > 1.5, "copy/identity+ = {vs_idp}");
    }

    #[test]
    fn rx_small_messages_are_sender_limited() {
        // Figure 3 at 64 B: every engine gets the same (low) throughput;
        // overheads show up as CPU differences.
        let cfg = quick(1, 64);
        let no = tcp_stream_rx(EngineKind::NoIommu, &cfg);
        let idp = tcp_stream_rx(EngineKind::IdentityPlus, &cfg);
        let ratio = idp.gbps / no.gbps;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "throughput equal, got {ratio}"
        );
        assert!(no.gbps < 3.0, "64B stream is slow: {}", no.gbps);
        assert!(idp.cpu > no.cpu, "identity+ burns more CPU");
        assert!(no.cpu < 0.9, "receiver is not the bottleneck");
    }

    #[test]
    fn tx_copy_pays_for_64k_copies() {
        // Figure 4: at 64 KB, copy is the only design paying full-buffer
        // copies; it is slower than identity+ and keeps the CPU busier.
        let cfg = quick(1, 64 * 1024);
        let no = tcp_stream_tx(EngineKind::NoIommu, &cfg);
        let copy = tcp_stream_tx(EngineKind::Copy, &cfg);
        let idp = tcp_stream_tx(EngineKind::IdentityPlus, &cfg);
        assert!(
            copy.gbps <= idp.gbps * 1.02,
            "copy {} vs identity+ {}",
            copy.gbps,
            idp.gbps
        );
        let rel = copy.gbps / no.gbps;
        assert!(rel > 0.6 && rel <= 1.0, "copy/noiommu TX = {rel}");
        assert!(copy.cpu > no.cpu);
    }

    #[test]
    fn multicore_identity_plus_collapses() {
        // Figure 6: at 16 cores, identity+ serializes on the invalidation
        // queue and lands ~5x below everyone else.
        let cfg = ExpConfig {
            cores: 16,
            msg_size: 64 * 1024,
            items_per_core: 1_200,
            warmup_per_core: 150,
            ..ExpConfig::quick()
        };
        let no = tcp_stream_rx(EngineKind::NoIommu, &cfg);
        let copy = tcp_stream_rx(EngineKind::Copy, &cfg);
        let idp = tcp_stream_rx(EngineKind::IdentityPlus, &cfg);
        assert!(
            no.gbps > 30.0,
            "no-iommu reaches near line rate: {}",
            no.gbps
        );
        assert!(copy.gbps > 30.0, "copy scales to 16 cores: {}", copy.gbps);
        let collapse = no.gbps / idp.gbps;
        assert!(collapse > 3.0, "identity+ collapse factor {collapse}");
        // identity+ pins the CPU on lock spinning.
        assert!(idp.cpu > 0.9, "identity+ CPU {}", idp.cpu);
        assert!(
            idp.per_item.get(simcore::Phase::Spinlock)
                > copy.per_item.get(simcore::Phase::Spinlock)
        );
    }

    #[test]
    fn percore_reduces_lock_spin_at_16_cores() {
        // The tentpole's acceptance check: at 16 cores, sharding the hot
        // allocation state per core measurably cuts the spin charged to the
        // IOVA-allocator lock (stock Linux strict — its rbtree lock is the
        // first-level bottleneck) and to the invalidation-queue lock
        // (identity+ — no IOVA allocation, so the queue IS its bottleneck,
        // Figure 8), without costing throughput. A fast wire keeps packet
        // arrivals from being staggered by wire serialization, so the
        // locks — not the link — are the contended resource.
        let run = |kind: EngineKind, percore: bool| {
            let cfg = ExpConfig {
                cores: 16,
                msg_size: 64 * 1024,
                items_per_core: 800,
                warmup_per_core: 100,
                wire_gbps: 400.0,
                percore,
                ..ExpConfig::quick()
            };
            let stack = SimStack::new(kind, &cfg);
            let r = tcp_stream_rx_on(&stack, &cfg);
            let iova = stack
                .engine
                .iova_lock_stats()
                .map_or(0, |(_, s)| s.total_spin.get());
            let invalq = stack.mmu.invalq().lock().stats().total_spin.get();
            (r.gbps, iova, invalq)
        };

        let (gbps_global, iova_global, invalq_shadowed) = run(EngineKind::LinuxStrict, false);
        let (gbps_percore, iova_percore, invalq_residual) = run(EngineKind::LinuxStrict, true);
        assert!(
            iova_percore * 2 < iova_global,
            "iova lock spin: percore {iova_percore} vs global {iova_global}"
        );
        // Globally the rbtree lock serializes cores so the invalidation
        // queue behind it never contends; percore removes that shadow and
        // total lock spin still drops by an order of magnitude.
        assert!(
            (iova_percore + invalq_residual) * 10 < iova_global + invalq_shadowed,
            "total lock spin: percore {} vs global {}",
            iova_percore + invalq_residual,
            iova_global + invalq_shadowed
        );
        assert!(
            gbps_percore > gbps_global,
            "throughput regressed: {gbps_percore} vs {gbps_global}"
        );

        let (idp_global_gbps, _, invalq_global) = run(EngineKind::IdentityPlus, false);
        let (idp_percore_gbps, _, invalq_percore) = run(EngineKind::IdentityPlus, true);
        assert!(
            invalq_percore * 2 < invalq_global,
            "invalq lock spin: percore {invalq_percore} vs global {invalq_global}"
        );
        assert!(
            idp_percore_gbps > idp_global_gbps,
            "identity+ throughput regressed: {idp_percore_gbps} vs {idp_global_gbps}"
        );
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = quick(2, 1024);
        let a = tcp_stream_rx(EngineKind::Copy, &cfg);
        let b = tcp_stream_rx(EngineKind::Copy, &cfg);
        assert_eq!(a.gbps, b.gbps);
        assert_eq!(a.items, b.items);
        assert_eq!(a.per_item, b.per_item);
    }

    #[test]
    fn copy_engine_reports_shadow_footprint() {
        let cfg = quick(1, 1024);
        let r = tcp_stream_rx(EngineKind::Copy, &cfg);
        let peak = r.shadow_bytes_peak.expect("copy reports footprint");
        assert!(peak > 0);
        // Modest: a single in-flight buffer per core needs only a few
        // shadow pages (§6 memory consumption).
        assert!(peak < 4 << 20, "footprint {peak} bytes");
        let r2 = tcp_stream_rx(EngineKind::NoIommu, &cfg);
        assert!(r2.shadow_bytes_peak.is_none());
    }
}
