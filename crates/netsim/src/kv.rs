//! The memcached/memslap workload (Figure 11): one memcached instance per
//! core serving 90 %/10 % GET/SET over the NIC, with 64-byte keys and
//! 1 KB values (the memslap defaults, §6).

use crate::driver::{CoreDriver, HEADER_BYTES};
use crate::report::ExpResult;
use crate::setup::{EngineKind, ExpConfig, SimStack};
use simcore::{
    Breakdown, CoreCtx, CoreId, CoreTask, Cycles, MultiCoreSim, Phase, SimRng, StepOutcome,
};

/// memslap default key size.
const KEY_BYTES: usize = 64;
/// Protocol framing per request/response.
const PROTO_BYTES: usize = 30;

struct KvTask<'a> {
    stack: &'a SimStack,
    drv: CoreDriver,
    rng: SimRng,
    value_bytes: usize,
    verify: bool,
    warmup: u64,
    total: u64,
    count: u64,
    req_ready: Cycles,
    get_buf: Vec<u8>,
    set_buf: Vec<u8>,
    resp_buf: Vec<u8>,
    /// Half-finished transaction: `(is_get, req_len)` after the receive
    /// step, before the respond step. Splitting the transaction into two
    /// scheduler steps lets other cores' DMA operations interleave between
    /// this core's two unmaps, as they would on real hardware.
    pending: Option<(bool, usize)>,
    meas_items: u64,
    meas_bytes: u64,
    meas_start: Cycles,
    meas_end: Cycles,
}

impl<'a> KvTask<'a> {
    fn new(stack: &'a SimStack, cfg: &ExpConfig, core: usize, value_bytes: usize) -> Self {
        let mut rng = SimRng::seed(cfg.seed ^ (core as u64).wrapping_mul(0x9e37_79b9));
        let get_buf = rng.bytes(KEY_BYTES + PROTO_BYTES);
        let set_buf = rng.bytes(KEY_BYTES + PROTO_BYTES + value_bytes);
        let resp_buf = rng.bytes(value_bytes + PROTO_BYTES);
        KvTask {
            stack,
            drv: CoreDriver::new(CoreId(core as u16)),
            rng,
            value_bytes,
            verify: cfg.verify_data,
            warmup: cfg.warmup_per_core,
            total: cfg.warmup_per_core + cfg.items_per_core,
            count: 0,
            req_ready: Cycles(1),
            get_buf,
            set_buf,
            resp_buf,
            pending: None,
            meas_items: 0,
            meas_bytes: 0,
            meas_start: Cycles::ZERO,
            meas_end: Cycles::ZERO,
        }
    }
}

impl CoreTask for KvTask<'_> {
    fn step(&mut self, ctx: &mut CoreCtx) -> StepOutcome {
        // Second half of a transaction: send the response.
        if let Some((is_get, req_len)) = self.pending.take() {
            let resp_len = if is_get {
                self.value_bytes + PROTO_BYTES
            } else {
                PROTO_BYTES
            };
            self.resp_buf[0..8].copy_from_slice(&self.count.to_le_bytes());
            let (n, _) = self
                .drv
                .tx_one(self.stack, ctx, &self.resp_buf[..resp_len], self.verify);
            self.stack.wire_back.transmit(ctx.now(), n + HEADER_BYTES);

            if self.count == self.warmup {
                ctx.reset_stats();
                self.meas_start = ctx.now();
            } else if self.count > self.warmup {
                self.meas_items += 1;
                self.meas_bytes += (req_len + resp_len) as u64;
            }
            if self.count >= self.total {
                self.meas_end = ctx.now();
                return StepOutcome::Done;
            }
            return StepOutcome::Continue;
        }

        // First half: receive and execute the next request.
        self.count += 1;
        let is_get = self.rng.chance(0.9);
        // memslap saturates the server: the next request is ready as soon
        // as the wire can carry it.
        let req_len = if is_get {
            self.get_buf.len()
        } else {
            self.set_buf.len()
        };
        let arrival = self
            .stack
            .wire
            .transmit(self.req_ready.max(Cycles(1)), req_len + HEADER_BYTES);
        self.req_ready = arrival;
        ctx.wait_until(arrival);

        let stamp = self.count.to_le_bytes();
        if is_get {
            self.get_buf[0..8].copy_from_slice(&stamp);
            self.drv.rx_one(self.stack, ctx, &self.get_buf, self.verify);
            ctx.charge(Phase::Other, ctx.cost.memcached_get);
        } else {
            self.set_buf[0..8].copy_from_slice(&stamp);
            self.drv.rx_one(self.stack, ctx, &self.set_buf, self.verify);
            ctx.charge(Phase::Other, ctx.cost.memcached_set);
        }
        self.pending = Some((is_get, req_len));
        StepOutcome::Continue
    }
}

/// Runs the memcached benchmark: `cfg.cores` instances, memslap-style load,
/// `cfg.msg_size` used as the value size (the paper's default is 1 KB).
/// Reports aggregate transactions/second and CPU utilization.
pub fn memcached(kind: EngineKind, cfg: &ExpConfig) -> ExpResult {
    let value_bytes = if cfg.msg_size == 64 * 1024 {
        1024 // figure default when callers pass the generic ExpConfig
    } else {
        cfg.msg_size
    };
    let stack = SimStack::new(kind, cfg);
    let mut tasks: Vec<KvTask> = (0..cfg.cores)
        .map(|c| KvTask::new(&stack, cfg, c, value_bytes))
        .collect();
    let mut sim = MultiCoreSim::new(stack.cost.clone(), cfg.cores);
    for ctx in sim.ctxs_mut() {
        ctx.seek(Cycles(1));
    }
    {
        let mut boxed: Vec<Box<dyn CoreTask + '_>> = tasks
            .iter_mut()
            .map(|t| Box::new(move |ctx: &mut CoreCtx| t.step(ctx)) as Box<dyn CoreTask + '_>)
            .collect();
        sim.run(&mut boxed, Cycles::MAX);
    }
    let mut tctx = CoreCtx::new(CoreId(0), stack.cost.clone());
    tctx.seek(
        sim.ctxs()
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(Cycles(1)),
    );
    stack.engine.flush_deferred(&mut tctx);
    stack.mmu.drain_pending(&mut tctx);

    let clock = cfg.cost.clock_ghz;
    let mut tps = 0.0;
    let mut gbps = 0.0;
    let mut items = 0;
    let mut bytes = 0;
    for t in &tasks {
        let window = t.meas_end.saturating_sub(t.meas_start);
        if window > Cycles::ZERO {
            tps += t.meas_items as f64 / window.to_secs(clock);
            gbps += t.meas_bytes as f64 * 8.0 / window.to_secs(clock) / 1e9;
        }
        items += t.meas_items;
        bytes += t.meas_bytes;
    }
    let cpu = sim.ctxs().iter().map(|c| c.utilization()).sum::<f64>() / cfg.cores as f64;
    let total: Breakdown = sim.ctxs().iter().map(|c| c.breakdown).sum::<Breakdown>();
    let dev = Some(crate::setup::NIC_DEV.0);
    obs::breakdown::record_breakdown(stack.obs.registry(), dev, &total);
    let per_item = obs::breakdown::breakdown_view(stack.obs.registry(), dev);
    ExpResult {
        engine: kind.name(),
        cores: cfg.cores,
        msg_size: value_bytes,
        gbps,
        cpu,
        items,
        bytes,
        per_item: per_item.per_item(items),
        clock_ghz: clock,
        latency_us: None,
        transactions_per_sec: Some(tps),
        shadow_bytes_peak: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg16() -> ExpConfig {
        ExpConfig {
            cores: 16,
            msg_size: 1024,
            items_per_core: 800,
            warmup_per_core: 100,
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn identity_plus_collapses_others_comparable() {
        // Figure 11: all designs except identity+ obtain comparable
        // transactional throughput; identity+ is several-fold worse.
        let no = memcached(EngineKind::NoIommu, &cfg16());
        let copy = memcached(EngineKind::Copy, &cfg16());
        let idm = memcached(EngineKind::IdentityMinus, &cfg16());
        let idp = memcached(EngineKind::IdentityPlus, &cfg16());
        let t = |r: &ExpResult| r.transactions_per_sec.unwrap();
        assert!(
            t(&copy) / t(&no) > 0.9,
            "copy ~ no-iommu: {} vs {}",
            t(&copy),
            t(&no)
        );
        assert!(t(&idm) / t(&no) > 0.85);
        let collapse = t(&no) / t(&idp);
        assert!(collapse > 3.0, "identity+ collapse {collapse}");
    }

    #[test]
    fn copy_overhead_is_tiny_for_memcached() {
        // §6: "copy provides full DMA attack protection at essentially the
        // same throughput and CPU utilization (< 2% overhead) as no iommu"
        // — allow a little slack in the reproduction.
        let no = memcached(EngineKind::NoIommu, &cfg16());
        let copy = memcached(EngineKind::Copy, &cfg16());
        let ratio = copy.transactions_per_sec.unwrap() / no.transactions_per_sec.unwrap();
        assert!(ratio > 0.93, "copy/no-iommu = {ratio}");
        assert!(copy.cpu / no.cpu < 1.15);
    }

    #[test]
    fn transactions_scale_with_cores() {
        let one = memcached(
            EngineKind::Copy,
            &ExpConfig {
                cores: 1,
                ..cfg16()
            },
        );
        let sixteen = memcached(EngineKind::Copy, &cfg16());
        let ratio = sixteen.transactions_per_sec.unwrap() / one.transactions_per_sec.unwrap();
        assert!(ratio > 8.0, "scaling ratio {ratio}");
    }
}
