//! Eraser-style lockset race detection (Savage et al., SOSP'97).
//!
//! The instrumented lock sites (`iommu::invalq`, `shadow_core`'s pool,
//! `dma_api`'s deferred flusher) emit detail-gated `LockAcquire` /
//! `LockRelease` / `SharedAccess` events. This module replays an event
//! trace, tracks the set of locks each core holds, and maintains per
//! shared variable the *candidate lockset* — the intersection of locksets
//! across all accesses. A write access from a second core with an empty
//! candidate lockset means no single lock consistently protects the
//! variable: a data race.
//!
//! The Virgin → Exclusive → Shared → Shared-Modified state machine
//! suppresses the classic false positive of single-owner initialization
//! (a per-core flush list legitimately touched lock-free by its one
//! owner never leaves Exclusive).

use obs::{Event, EventKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One detected race: a shared variable written by several cores with no
/// common lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The shared variable (e.g. `flush.pending_list[0]`).
    pub var: String,
    /// Cores that accessed it, in first-access order.
    pub cores: Vec<u16>,
    /// `seq` of the access event on which the candidate lockset emptied.
    pub at_seq: u64,
    /// Human-readable description.
    pub detail: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum VarState {
    /// Never accessed.
    Virgin,
    /// Accessed by exactly one core so far — no race possible yet.
    Exclusive(u16),
    /// Read-shared across cores — track the lockset, report nothing.
    Shared,
    /// Written by multiple cores — an empty candidate lockset is a race.
    SharedModified,
}

#[derive(Debug)]
struct VarInfo {
    state: VarState,
    /// Candidate lockset; `None` until first initialized on leaving
    /// Exclusive (Eraser refines from "all locks" = unconstrained).
    lockset: Option<BTreeSet<String>>,
    cores: Vec<u16>,
    reported: bool,
}

impl Default for VarInfo {
    fn default() -> Self {
        VarInfo {
            state: VarState::Virgin,
            lockset: None,
            cores: Vec::new(),
            reported: false,
        }
    }
}

/// Replays lockset events and reports variables whose candidate lockset
/// goes empty under sharing.
#[derive(Debug, Default)]
pub struct LocksetDetector;

impl LocksetDetector {
    /// Analyzes a trace (typically `obs.tracer().events()` from a run
    /// with [`obs::Obs::set_detail_enabled`] on) and returns one report
    /// per racy variable.
    pub fn analyze(events: &[Event]) -> Vec<RaceReport> {
        let mut held: HashMap<u16, BTreeSet<String>> = HashMap::new();
        let mut vars: BTreeMap<String, VarInfo> = BTreeMap::new();
        let mut reports = Vec::new();

        for e in events {
            match &e.kind {
                EventKind::LockAcquire { lock } => {
                    held.entry(e.core).or_default().insert(lock.to_string());
                }
                EventKind::LockRelease { lock } => {
                    if let Some(set) = held.get_mut(&e.core) {
                        set.remove(lock.as_ref());
                    }
                }
                EventKind::SharedAccess { var, write } => {
                    let locks = held.get(&e.core).cloned().unwrap_or_default();
                    let info = vars.entry(var.to_string()).or_default();
                    if !info.cores.contains(&e.core) {
                        info.cores.push(e.core);
                    }
                    // Eraser refines C(v) on *every* access: C(v) starts
                    // as "all locks" (modeled by `None`) and becomes the
                    // running intersection of held locksets. The state
                    // machine only decides when an empty C(v) is
                    // reportable.
                    let set = info.lockset.get_or_insert_with(|| locks.clone());
                    set.retain(|l| locks.contains(l));
                    info.state = match info.state.clone() {
                        VarState::Virgin => VarState::Exclusive(e.core),
                        VarState::Exclusive(c) if c == e.core => VarState::Exclusive(c),
                        VarState::Exclusive(_) | VarState::Shared if *write => {
                            VarState::SharedModified
                        }
                        VarState::Exclusive(_) | VarState::Shared => VarState::Shared,
                        VarState::SharedModified => VarState::SharedModified,
                    };
                    if info.state == VarState::SharedModified
                        && info.lockset.as_ref().is_some_and(BTreeSet::is_empty)
                        && !info.reported
                    {
                        info.reported = true;
                        reports.push(RaceReport {
                            var: var.to_string(),
                            cores: info.cores.clone(),
                            at_seq: e.seq,
                            detail: format!(
                                "shared variable '{var}' written by cores {:?} with no \
                                 consistently-held lock (candidate lockset empty at event \
                                 #{})",
                                info.cores, e.seq
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Obs;
    use simcore::Cycles;
    use std::borrow::Cow;

    fn acquire(obs: &Obs, core: u16, lock: &'static str) {
        obs.trace(
            Cycles(0),
            core,
            None,
            EventKind::LockAcquire {
                lock: Cow::Borrowed(lock),
            },
        );
    }

    fn release(obs: &Obs, core: u16, lock: &'static str) {
        obs.trace(
            Cycles(0),
            core,
            None,
            EventKind::LockRelease {
                lock: Cow::Borrowed(lock),
            },
        );
    }

    fn access(obs: &Obs, core: u16, var: &'static str, write: bool) {
        obs.trace(
            Cycles(0),
            core,
            None,
            EventKind::SharedAccess {
                var: Cow::Borrowed(var),
                write,
            },
        );
    }

    #[test]
    fn consistently_locked_variable_is_clean() {
        let obs = Obs::isolated();
        for core in 0..4u16 {
            acquire(&obs, core, "q");
            access(&obs, core, "queue", true);
            release(&obs, core, "q");
        }
        assert!(LocksetDetector::analyze(&obs.tracer().events()).is_empty());
    }

    #[test]
    fn unlocked_cross_core_writes_are_a_race() {
        let obs = Obs::isolated();
        access(&obs, 0, "list", true);
        access(&obs, 1, "list", true);
        let reports = LocksetDetector::analyze(&obs.tracer().events());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].var, "list");
        assert_eq!(reports[0].cores, vec![0, 1]);
    }

    #[test]
    fn single_owner_initialization_is_not_flagged() {
        let obs = Obs::isolated();
        // One core hammering its own per-core list lock-free is the
        // intended design, not a race.
        for _ in 0..100 {
            access(&obs, 3, "percore[3]", true);
        }
        assert!(LocksetDetector::analyze(&obs.tracer().events()).is_empty());
    }

    #[test]
    fn inconsistent_lock_pairs_race_when_intersection_empties() {
        let obs = Obs::isolated();
        acquire(&obs, 0, "a");
        access(&obs, 0, "v", true);
        release(&obs, 0, "a");
        acquire(&obs, 1, "b");
        access(&obs, 1, "v", true);
        release(&obs, 1, "b");
        let reports = LocksetDetector::analyze(&obs.tracer().events());
        assert_eq!(reports.len(), 1, "locks {{a}} ∩ {{b}} = ∅");
    }

    #[test]
    fn read_sharing_never_reports() {
        let obs = Obs::isolated();
        access(&obs, 0, "table", true); // exclusive init write
        access(&obs, 1, "table", false);
        access(&obs, 2, "table", false);
        assert!(LocksetDetector::analyze(&obs.tracer().events()).is_empty());
    }

    #[test]
    fn each_racy_variable_reported_once() {
        let obs = Obs::isolated();
        for i in 0..10u16 {
            access(&obs, i % 2, "hot", true);
        }
        let reports = LocksetDetector::analyze(&obs.tracer().events());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].at_seq, 1, "reported at the first racy access");
    }
}
