//! The DMA-API debug checker (modeled on Linux `CONFIG_DMA_API_DEBUG`).
//!
//! [`DmaSan`] keeps a registry of live streaming mappings and coherent
//! windows per device, fed by the [`dma_api::DmaObserver`] hooks on the
//! OS side and the [`dma_api::BusObserver`] hook on the device side. Every
//! check is byte-granular: a mapping covers exactly `[iova, iova+len)`,
//! so a device access to the padding of a sub-page shadow slot — bytes the
//! IOMMU page tables *do* permit — is still flagged (the paper's
//! byte-granularity claim, Table 1 "sub-page").

// lint: allow(relaxed-atomic) — the coherent-window cache is seqlock-shaped:
// the version field (odd = write in progress, re-checked after the reads)
// detects torn or stale views and falls back to the locked slow path, and
// writers are serialized under the checker's inner mutex. The simulator steps
// every virtual core from one host thread, so these atomics are never raced;
// the version protocol is belt-and-suspenders for hypothetical threaded
// harnesses, where a missed hit is still only a slow-path fallback.

use dma_api::{BusObserver, CoherentBuffer, DmaDirection, DmaMapping, DmaObserver};
use iommu::DeviceId;
use obs::{Counter, EventKind, Obs};
use simcore::sync::Mutex;
use simcore::FxHashMap;
use simcore::{CoreCtx, Cycles};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// The six dma-debug rule classes the checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A second live mapping overlaps the same OS buffer bytes.
    DoubleMap,
    /// `dma_unmap` of an IOVA with no live mapping.
    DoubleUnmap,
    /// `dma_unmap` with a size or direction differing from the map.
    UnmapMismatch,
    /// Device access to an unmapped (stale or never-mapped) IOVA that
    /// the hardware nevertheless permitted.
    StaleAccess,
    /// Device access beyond a live mapping's byte-granular window.
    OobAccess,
    /// A mapping still live at teardown.
    Leak,
}

impl ViolationKind {
    /// Stable rule name used in `SanitizerViolation` events.
    pub fn rule(self) -> &'static str {
        match self {
            ViolationKind::DoubleMap => "double_map",
            ViolationKind::DoubleUnmap => "double_unmap",
            ViolationKind::UnmapMismatch => "unmap_mismatch",
            ViolationKind::StaleAccess => "stale_access",
            ViolationKind::OobAccess => "oob_access",
            ViolationKind::Leak => "leak",
        }
    }
}

/// One recorded violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub kind: ViolationKind,
    /// The device whose mapping state the violation concerns.
    pub dev: DeviceId,
    /// The IOVA at the center of the violation.
    pub iova: u64,
    /// Human-readable description.
    pub detail: String,
    /// Trace `seq` of the originating `DmaMap` (or `DmaUnmap` for stale
    /// accesses), so reports carry the `obs` cause chain.
    pub cause: Option<u64>,
}

/// How the sanitizer classifies one device access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVerdict {
    /// Covered by a live mapping or coherent window — legitimate DMA.
    Permitted,
    /// The IOMMU refused the access (the hardware did its job).
    BlockedByIommu,
    /// No IOMMU, and the target physical memory is unbacked.
    BlockedUnbacked,
    /// The hardware permitted an access the DMA-API contract forbids —
    /// exactly the silent corruption/theft the sanitizer exists to catch.
    SanitizerViolation(ViolationKind),
}

#[derive(Debug, Clone, Copy)]
struct LiveMapping {
    len: u64,
    dir: DmaDirection,
    os_pa: u64,
    map_seq: u64,
}

/// Recently retired mappings kept per device to tell a *stale* access
/// (use-after-unmap) apart from a wild one.
const RETIRED_CAP: usize = 4096;

/// A `u64`-keyed map as a sorted vec. A device rarely holds more than a
/// few dozen live mappings, and every bus access consults this registry —
/// at that size binary search over one contiguous array beats a BTreeMap
/// on each of the checker's hot operations (point get, floor lookup,
/// insert, remove).
#[derive(Debug)]
struct SortedMap<V> {
    entries: Vec<(u64, V)>,
}

impl<V> Default for SortedMap<V> {
    fn default() -> Self {
        SortedMap {
            entries: Vec::new(),
        }
    }
}

impl<V> SortedMap<V> {
    fn idx(&self, key: u64) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k)
    }

    /// Inserts `v` at `key`, returning any previous value (the BTreeMap
    /// replace semantics).
    fn insert(&mut self, key: u64, v: V) -> Option<V> {
        match self.idx(key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, v)),
            Err(i) => {
                self.entries.insert(i, (key, v));
                None
            }
        }
    }

    fn remove(&mut self, key: u64) -> Option<V> {
        self.idx(key).ok().map(|i| self.entries.remove(i).1)
    }

    fn get(&self, key: u64) -> Option<&V> {
        self.idx(key).ok().map(|i| &self.entries[i].1)
    }

    /// The last entry with key `<= key` — `range(..=key).next_back()`.
    fn at_or_before(&self, key: u64) -> Option<&(u64, V)> {
        let i = self.entries.partition_point(|&(k, _)| k <= key);
        i.checked_sub(1).map(|i| &self.entries[i])
    }

    /// The last entry with key `< key` — `range(..key).next_back()`.
    fn before(&self, key: u64) -> Option<&(u64, V)> {
        let i = self.entries.partition_point(|&(k, _)| k < key);
        i.checked_sub(1).map(|i| &self.entries[i])
    }

    fn iter(&self) -> impl Iterator<Item = &(u64, V)> {
        self.entries.iter()
    }
}

#[derive(Debug, Default)]
struct DevState {
    /// Live streaming mappings by IOVA start.
    live: SortedMap<LiveMapping>,
    /// Live OS-buffer ranges (`os_pa -> (len, iova)`) for double-map
    /// detection.
    os_live: SortedMap<(u64, u64)>,
    /// Coherent windows (descriptor rings) by IOVA start -> len.
    coherent: SortedMap<u64>,
    /// Recently unmapped `(iova, len, unmap_seq)`.
    retired: VecDeque<(u64, u64, u64)>,
}

impl DevState {
    /// The live mapping containing `addr`, if any.
    fn covering(&self, addr: u64) -> Option<(u64, &LiveMapping)> {
        self.live
            .at_or_before(addr)
            .filter(|(start, m)| addr < *start + m.len)
            .map(|(start, m)| (*start, m))
    }

    fn coherent_covering(&self, addr: u64) -> Option<(u64, u64)> {
        self.coherent
            .at_or_before(addr)
            .filter(|(start, len)| addr < *start + *len)
            .map(|&(s, l)| (s, l))
    }

    fn os_overlap(&self, pa: u64, len: u64) -> Option<(u64, u64, u64)> {
        self.os_live
            .before(pa + len)
            .filter(|(start, (l, _))| *start + l > pa)
            .map(|&(s, (l, iova))| (s, l, iova))
    }

    fn retire(&mut self, iova: u64, len: u64, seq: u64) {
        if self.retired.len() == RETIRED_CAP {
            self.retired.pop_front();
        }
        self.retired.push_back((iova, len, seq));
    }

    fn retired_covering(&self, addr: u64) -> Option<(u64, u64, u64)> {
        self.retired
            .iter()
            .rev()
            .find(|(iova, len, _)| *iova <= addr && addr < *iova + *len)
            .copied()
    }
}

#[derive(Debug, Default)]
struct Inner {
    devs: FxHashMap<u16, DevState>,
    violations: Vec<Violation>,
}

/// Lock-free cache of the last coherent window a verdict landed in.
///
/// Descriptor-ring traffic (the NIC's descriptor fetch and completion
/// write-back) hits the same long-lived coherent window on every packet,
/// and a coherent hit in [`DmaSan::verdict`] depends *only* on the
/// coherent set — it is checked before the streaming mappings, so map and
/// unmap churn cannot change its outcome. Caching that window behind a
/// generation stamped by the (rare) coherent alloc/free mutations turns
/// two of the three per-packet bus checks into a few atomic loads instead
/// of a mutex acquisition and two binary searches.
///
/// Published seqlock-style: `ver` goes odd while the fields are being
/// written and even once they are consistent, so a torn read on another
/// host thread is detected and falls through to the locked slow path.
#[derive(Debug)]
struct CoherentCache {
    /// Seqlock version: odd = write in progress.
    ver: AtomicU64,
    /// Value of `coherent_gen` the window was read under.
    gen: AtomicU64,
    /// Cached device (`u64::MAX` = empty).
    dev: AtomicU64,
    /// Cached window `[start, end)` in IOVA space.
    start: AtomicU64,
    end: AtomicU64,
}

impl Default for CoherentCache {
    fn default() -> Self {
        CoherentCache {
            ver: AtomicU64::new(0),
            gen: AtomicU64::new(0),
            dev: AtomicU64::new(u64::MAX),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
        }
    }
}

impl CoherentCache {
    /// Whether `[addr, end)` on `dev` is inside the cached window and the
    /// cache is still valid for generation `gen`.
    #[inline]
    fn covers(&self, gen: u64, dev: u16, addr: u64, end: u64) -> bool {
        let v1 = self.ver.load(Ordering::Acquire);
        if v1 & 1 != 0 {
            return false;
        }
        let hit = self.gen.load(Ordering::Relaxed) == gen
            && self.dev.load(Ordering::Relaxed) == dev as u64
            && self.start.load(Ordering::Relaxed) <= addr
            && end <= self.end.load(Ordering::Relaxed);
        hit && self.ver.load(Ordering::Acquire) == v1
    }

    /// Publishes a window (called with the checker's inner lock held, so
    /// writers never race each other).
    fn publish(&self, gen: u64, dev: u16, start: u64, end: u64) {
        self.ver.fetch_add(1, Ordering::AcqRel); // odd: write in progress
        self.gen.store(gen, Ordering::Relaxed);
        self.dev.store(dev as u64, Ordering::Relaxed);
        self.start.store(start, Ordering::Relaxed);
        self.end.store(end, Ordering::Relaxed);
        self.ver.fetch_add(1, Ordering::Release); // even: consistent
    }
}

/// The DMA-API sanitizer.
///
/// Wire it into a stack with [`dma_api::TracedDma::with_observer`] (the
/// OS side) and [`dma_api::Bus::observed`] (the device side); at the end
/// of a run call [`DmaSan::check_teardown`] / [`DmaSan::assert_teardown_clean`].
///
/// In *strict* mode the first violation panics with its detail string —
/// the `dmasan-strict` CI pass runs the whole suite that way. Tests that
/// deliberately provoke violations construct the checker with
/// [`DmaSan::lenient`].
#[derive(Debug)]
pub struct DmaSan {
    obs: Obs,
    inner: Mutex<Inner>,
    strict: bool,
    violations_total: Counter,
    /// Bumped on every coherent alloc/free; validates [`CoherentCache`].
    coherent_gen: AtomicU64,
    coherent_cache: CoherentCache,
}

impl DmaSan {
    /// A checker in the build's default mode: strict when the `strict`
    /// feature (workspace flag `dmasan-strict`) is enabled or
    /// `DMASAN_STRICT=1` is set, else recording.
    pub fn new(obs: Obs) -> Self {
        let strict =
            cfg!(feature = "strict") || std::env::var("DMASAN_STRICT").is_ok_and(|v| v == "1");
        Self::with_strict(obs, strict)
    }

    /// A checker that only records violations, never panics — for tests
    /// that deliberately provoke them.
    pub fn lenient(obs: Obs) -> Self {
        Self::with_strict(obs, false)
    }

    /// A checker with an explicit strictness.
    pub fn with_strict(obs: Obs, strict: bool) -> Self {
        DmaSan {
            violations_total: obs.counter("dmasan", "violations", None),
            inner: Mutex::new(Inner::default()),
            strict,
            obs,
            coherent_gen: AtomicU64::new(0),
            coherent_cache: CoherentCache::default(),
        }
    }

    /// Whether this checker panics on the first violation.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// Total violations recorded (also the `dmasan.violations` counter).
    pub fn violation_count(&self) -> u64 {
        self.violations_total.get()
    }

    /// Violations of one rule class.
    pub fn count_of(&self, kind: ViolationKind) -> usize {
        self.inner
            .lock()
            .violations
            .iter()
            .filter(|v| v.kind == kind)
            .count()
    }

    /// Live streaming mappings across all devices: `(dev, iova, len)`.
    /// Non-empty at the end of a run means leaked mappings.
    pub fn live_mappings(&self) -> Vec<(DeviceId, u64, u64)> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (dev, st) in &inner.devs {
            for (iova, m) in st.live.iter() {
                out.push((DeviceId(*dev), *iova, m.len));
            }
        }
        out.sort_unstable();
        out
    }

    /// Records a `Leak` violation for every still-live streaming mapping
    /// and every still-allocated coherent window; returns how many fired.
    /// Call after the stack has torn down (rings freed, deferred flushes
    /// drained).
    pub fn check_teardown(&self) -> usize {
        let leaks: Vec<(DeviceId, u64, u64, Option<u64>, &'static str)> = {
            let inner = self.inner.lock();
            let mut out = Vec::new();
            for (dev, st) in &inner.devs {
                for (iova, m) in st.live.iter() {
                    out.push((
                        DeviceId(*dev),
                        *iova,
                        m.len,
                        Some(m.map_seq),
                        "streaming mapping",
                    ));
                }
                for (iova, len) in st.coherent.iter() {
                    out.push((DeviceId(*dev), *iova, *len, None, "coherent buffer"));
                }
            }
            out
        };
        let n = leaks.len();
        for (dev, iova, len, cause, what) in leaks {
            self.report(
                ViolationKind::Leak,
                dev,
                iova,
                format!("{what} of {len} B at iova {iova:#x} still live at teardown"),
                cause,
                self.obs.now_hint(),
                0,
            );
        }
        n
    }

    /// Panics (even in lenient mode — this is an explicit assertion)
    /// unless teardown left no live mappings and no prior violations.
    pub fn assert_teardown_clean(&self) {
        let leaked = self.check_teardown();
        let v = self.violations();
        assert!(
            leaked == 0 && v.is_empty(),
            "dmasan: teardown not clean — {leaked} leaks, {} total violations: {:?}",
            v.len(),
            v
        );
    }

    /// Classifies a device access without recording anything — the
    /// verdict API attack scenarios assert on. `granted` is the hardware
    /// outcome (IOMMU / memory backing) the caller observed.
    pub fn verdict(&self, dev: DeviceId, addr: u64, len: usize, granted: bool) -> AccessVerdict {
        if !granted {
            return AccessVerdict::BlockedByIommu;
        }
        let end = addr + len.max(1) as u64;
        // Coherent-window fast path: a hit depends only on the coherent
        // set (checked before the streaming mappings below), so a cached
        // window is valid as long as no coherent alloc/free intervened.
        let gen = self.coherent_gen.load(Ordering::Relaxed);
        if self.coherent_cache.covers(gen, dev.0, addr, end) {
            return AccessVerdict::Permitted;
        }
        let inner = self.inner.lock();
        let Some(st) = inner.devs.get(&dev.0) else {
            return AccessVerdict::SanitizerViolation(ViolationKind::StaleAccess);
        };
        if let Some((start, wlen)) = st.coherent_covering(addr) {
            return if end <= start + wlen {
                self.coherent_cache.publish(gen, dev.0, start, start + wlen);
                AccessVerdict::Permitted
            } else {
                AccessVerdict::SanitizerViolation(ViolationKind::OobAccess)
            };
        }
        match st.covering(addr) {
            Some((start, m)) => {
                if end <= start + m.len {
                    AccessVerdict::Permitted
                } else {
                    AccessVerdict::SanitizerViolation(ViolationKind::OobAccess)
                }
            }
            None => AccessVerdict::SanitizerViolation(ViolationKind::StaleAccess),
        }
    }

    /// Records one violation: a `SanitizerViolation` trace event (chained
    /// to `cause`), the registry counter, the in-memory report — and, in
    /// strict mode, a panic.
    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        kind: ViolationKind,
        dev: DeviceId,
        iova: u64,
        detail: String,
        cause: Option<u64>,
        at: Cycles,
        core: u16,
    ) {
        let event = EventKind::SanitizerViolation {
            rule: kind.rule().into(),
            iova,
            detail: detail.clone().into(),
        };
        match cause {
            Some(c) => self.obs.trace_caused(at, core, Some(dev.0), c, event),
            None => self.obs.trace(at, core, Some(dev.0), event),
        };
        self.violations_total.inc();
        self.inner.lock().violations.push(Violation {
            kind,
            dev,
            iova,
            detail: detail.clone(),
            cause,
        });
        if self.strict {
            panic!("dmasan[{}]: {detail}", kind.rule());
        }
    }
}

impl DmaObserver for DmaSan {
    fn on_map(&self, ctx: &CoreCtx, dev: DeviceId, m: &DmaMapping, map_seq: u64) {
        let (iova, len, os_pa) = (m.iova.get(), m.len as u64, m.os_pa.get());
        let dup = {
            let mut inner = self.inner.lock();
            let st = inner.devs.entry(dev.0).or_default();
            let dup = st.os_overlap(os_pa, len);
            st.live.insert(
                iova,
                LiveMapping {
                    len,
                    dir: m.dir,
                    os_pa,
                    map_seq,
                },
            );
            st.os_live.insert(os_pa, (len, iova));
            dup
        };
        if let Some((dup_pa, dup_len, dup_iova)) = dup {
            self.report(
                ViolationKind::DoubleMap,
                dev,
                iova,
                format!(
                    "dma_map of OS buffer {os_pa:#x}+{len} overlaps live mapping \
                     {dup_pa:#x}+{dup_len} (iova {dup_iova:#x})"
                ),
                Some(map_seq),
                ctx.now(),
                ctx.core.0,
            );
        }
    }

    fn on_unmap(&self, ctx: &CoreCtx, dev: DeviceId, m: &DmaMapping, unmap_seq: u64) {
        let (iova, len) = (m.iova.get(), m.len as u64);
        enum Bad {
            Missing {
                stale: bool,
            },
            Mismatch {
                mapped_len: u64,
                mapped_dir: DmaDirection,
                cause: u64,
            },
        }
        let bad = {
            let mut inner = self.inner.lock();
            let st = inner.devs.entry(dev.0).or_default();
            match st.live.remove(iova) {
                Some(live) => {
                    if st.os_live.get(live.os_pa).is_some_and(|(_, i)| *i == iova) {
                        st.os_live.remove(live.os_pa);
                    }
                    st.retire(iova, live.len, unmap_seq);
                    if live.len != len || live.dir != m.dir {
                        Some(Bad::Mismatch {
                            mapped_len: live.len,
                            mapped_dir: live.dir,
                            cause: live.map_seq,
                        })
                    } else {
                        None
                    }
                }
                None => Some(Bad::Missing {
                    stale: st.retired_covering(iova).is_some(),
                }),
            }
        };
        match bad {
            None => {}
            Some(Bad::Mismatch {
                mapped_len,
                mapped_dir,
                cause,
            }) => self.report(
                ViolationKind::UnmapMismatch,
                dev,
                iova,
                format!(
                    "dma_unmap of iova {iova:#x} with len {len} dir {} but mapped \
                     with len {mapped_len} dir {mapped_dir}",
                    m.dir
                ),
                Some(cause),
                ctx.now(),
                ctx.core.0,
            ),
            Some(Bad::Missing { stale }) => self.report(
                ViolationKind::DoubleUnmap,
                dev,
                iova,
                if stale {
                    format!("dma_unmap of iova {iova:#x} which was already unmapped")
                } else {
                    format!("dma_unmap of iova {iova:#x} which was never mapped")
                },
                None,
                ctx.now(),
                ctx.core.0,
            ),
        }
    }

    fn on_alloc_coherent(&self, _ctx: &CoreCtx, dev: DeviceId, buf: &CoherentBuffer) {
        let mut inner = self.inner.lock();
        self.coherent_gen.fetch_add(1, Ordering::Relaxed);
        let st = inner.devs.entry(dev.0).or_default();
        st.coherent.insert(buf.iova.get(), buf.len as u64);
    }

    fn on_free_coherent(&self, ctx: &CoreCtx, dev: DeviceId, buf: &CoherentBuffer) {
        let missing = {
            let mut inner = self.inner.lock();
            self.coherent_gen.fetch_add(1, Ordering::Relaxed);
            let st = inner.devs.entry(dev.0).or_default();
            st.coherent.remove(buf.iova.get()).is_none()
        };
        if missing {
            self.report(
                ViolationKind::DoubleUnmap,
                dev,
                buf.iova.get(),
                format!(
                    "dma_free_coherent of iova {:#x} which is not an allocated \
                     coherent buffer",
                    buf.iova.get()
                ),
                None,
                ctx.now(),
                ctx.core.0,
            );
        }
    }
}

impl BusObserver for DmaSan {
    fn on_device_access(
        &self,
        dev: DeviceId,
        addr: u64,
        len: usize,
        is_write: bool,
        granted: bool,
    ) {
        let verdict = self.verdict(dev, addr, len, granted);
        let AccessVerdict::SanitizerViolation(kind) = verdict else {
            return;
        };
        let access = if is_write { "write" } else { "read" };
        let (detail, cause) = {
            let inner = self.inner.lock();
            let st = inner.devs.get(&dev.0);
            match kind {
                ViolationKind::OobAccess => {
                    let covering = st.and_then(|s| {
                        s.covering(addr)
                            .map(|(start, m)| (start, m.len, Some(m.map_seq)))
                            .or_else(|| s.coherent_covering(addr).map(|(s2, l)| (s2, l, None)))
                    });
                    let (start, mlen, cause) = covering.unwrap_or((addr, 0, None));
                    (
                        format!(
                            "device {access} of {len} B at {addr:#x} overruns the mapped \
                             window {start:#x}+{mlen}"
                        ),
                        cause,
                    )
                }
                _ => match st.and_then(|s| s.retired_covering(addr)) {
                    Some((iova, mlen, unmap_seq)) => (
                        format!(
                            "device {access} of {len} B at {addr:#x} hits stale mapping \
                             {iova:#x}+{mlen} (already unmapped)"
                        ),
                        Some(unmap_seq),
                    ),
                    None => (
                        format!(
                            "device {access} of {len} B at {addr:#x} hits memory that was \
                             never mapped for this device"
                        ),
                        None,
                    ),
                },
            }
        };
        self.report(kind, dev, addr, detail, cause, self.obs.now_hint(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_api::DmaBuf;
    use iommu::Iova;
    use memsim::PhysAddr;
    use simcore::{CoreId, CostModel};
    use std::sync::Arc;

    const DEV: DeviceId = DeviceId(0);

    fn ctx() -> CoreCtx {
        CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()))
    }

    fn mapping(iova: u64, len: usize, dir: DmaDirection, os_pa: u64) -> DmaMapping {
        DmaMapping {
            iova: Iova::new(iova),
            len,
            dir,
            os_pa: PhysAddr(os_pa),
        }
    }

    fn rig() -> (Obs, DmaSan, CoreCtx) {
        let obs = Obs::isolated();
        let san = DmaSan::lenient(obs.clone());
        (obs, san, ctx())
    }

    fn map(san: &DmaSan, c: &CoreCtx, m: &DmaMapping, seq: u64) {
        san.on_map(c, DEV, m, seq);
    }

    #[test]
    fn clean_lifecycle_records_nothing() {
        let (_, san, c) = rig();
        let m = mapping(0x1000, 1500, DmaDirection::FromDevice, 0x9000);
        map(&san, &c, &m, 1);
        san.on_device_access(DEV, 0x1000, 1500, true, true);
        san.on_unmap(&c, DEV, &m, 2);
        assert_eq!(san.violation_count(), 0);
        assert_eq!(san.check_teardown(), 0);
    }

    #[test]
    fn detects_double_map_of_same_os_buffer() {
        let (obs, san, c) = rig();
        map(
            &san,
            &c,
            &mapping(0x1000, 1500, DmaDirection::FromDevice, 0x9000),
            1,
        );
        // Second mapping overlapping the same OS bytes at a new IOVA.
        map(
            &san,
            &c,
            &mapping(0x5000, 64, DmaDirection::ToDevice, 0x9100),
            2,
        );
        assert_eq!(san.count_of(ViolationKind::DoubleMap), 1);
        let v = &san.violations()[0];
        assert_eq!(v.cause, Some(2), "chains to the second DmaMap");
        assert!(v.detail.contains("overlaps live mapping"));
        let evs = obs.tracer().events();
        assert!(evs
            .iter()
            .any(|e| matches!(&e.kind, EventKind::SanitizerViolation { rule, .. } if rule == "double_map")));
    }

    #[test]
    fn detects_double_unmap_and_distinguishes_stale() {
        let (_, san, c) = rig();
        let m = mapping(0x2000, 256, DmaDirection::ToDevice, 0xa000);
        map(&san, &c, &m, 1);
        san.on_unmap(&c, DEV, &m, 2);
        san.on_unmap(&c, DEV, &m, 3); // double
        let never = mapping(0xffff_0000, 64, DmaDirection::ToDevice, 0xb000);
        san.on_unmap(&c, DEV, &never, 4); // never mapped
        assert_eq!(san.count_of(ViolationKind::DoubleUnmap), 2);
        let v = san.violations();
        assert!(v[0].detail.contains("already unmapped"));
        assert!(v[1].detail.contains("never mapped"));
    }

    #[test]
    fn detects_unmap_size_and_direction_mismatch() {
        let (_, san, c) = rig();
        let m = mapping(0x3000, 1024, DmaDirection::FromDevice, 0xc000);
        map(&san, &c, &m, 7);
        let wrong = mapping(0x3000, 512, DmaDirection::ToDevice, 0xc000);
        san.on_unmap(&c, DEV, &wrong, 8);
        assert_eq!(san.count_of(ViolationKind::UnmapMismatch), 1);
        let v = &san.violations()[0];
        assert_eq!(v.cause, Some(7), "chains back to the originating DmaMap");
        assert!(v.detail.contains("len 512"));
        assert!(v.detail.contains("len 1024"));
    }

    #[test]
    fn detects_stale_iova_access() {
        let (_, san, c) = rig();
        let m = mapping(0x4000, 1500, DmaDirection::FromDevice, 0xd000);
        map(&san, &c, &m, 1);
        san.on_unmap(&c, DEV, &m, 2);
        // The IOMMU entry lingers (deferred invalidation) so hardware
        // grants the access — the sanitizer must still flag it.
        san.on_device_access(DEV, 0x4000 + 8, 64, true, true);
        assert_eq!(san.count_of(ViolationKind::StaleAccess), 1);
        let v = &san.violations()[0];
        assert_eq!(v.cause, Some(2), "chains to the DmaUnmap");
        assert!(v.detail.contains("stale mapping"));
        // A blocked access is the IOMMU working, not a violation.
        san.on_device_access(DEV, 0x4000, 64, true, false);
        assert_eq!(san.violation_count(), 1);
    }

    #[test]
    fn detects_sub_page_oob_access() {
        let (_, san, c) = rig();
        // A 100-byte buffer in a byte-granular shadow slot: the slot's
        // page is IOMMU-mapped, but only 100 bytes belong to the buffer.
        let m = mapping(0x8000, 100, DmaDirection::Bidirectional, 0xe000);
        map(&san, &c, &m, 1);
        san.on_device_access(DEV, 0x8000 + 90, 20, false, true); // 10 B overrun
        assert_eq!(san.count_of(ViolationKind::OobAccess), 1);
        let v = &san.violations()[0];
        assert_eq!(v.cause, Some(1));
        assert!(v.detail.contains("overruns the mapped window"));
        // In-bounds access is fine.
        san.on_device_access(DEV, 0x8000, 100, false, true);
        assert_eq!(san.violation_count(), 1);
    }

    #[test]
    fn detects_leak_at_teardown() {
        let (_, san, c) = rig();
        map(
            &san,
            &c,
            &mapping(0x6000, 2048, DmaDirection::FromDevice, 0xf000),
            1,
        );
        assert_eq!(san.live_mappings(), vec![(DEV, 0x6000, 2048)]);
        assert_eq!(san.check_teardown(), 1);
        assert_eq!(san.count_of(ViolationKind::Leak), 1);
        assert!(san.violations()[0]
            .detail
            .contains("still live at teardown"));
    }

    #[test]
    fn coherent_windows_are_legal_targets_and_leak_checked() {
        let (_, san, c) = rig();
        let ring = CoherentBuffer {
            iova: Iova::new(0x10_0000),
            pa: PhysAddr(0x20_0000),
            len: 4096,
            pages: 1,
        };
        san.on_alloc_coherent(&c, DEV, &ring);
        san.on_device_access(DEV, 0x10_0000 + 16, 16, false, true);
        assert_eq!(san.violation_count(), 0, "descriptor fetch is legitimate");
        // Overrunning the ring is still flagged.
        san.on_device_access(DEV, 0x10_0000 + 4090, 16, true, true);
        assert_eq!(san.count_of(ViolationKind::OobAccess), 1);
        // Freeing clears the window; a second free is a double-unmap.
        san.on_free_coherent(&c, DEV, &ring);
        assert_eq!(san.check_teardown(), 0);
        san.on_free_coherent(&c, DEV, &ring);
        assert_eq!(san.count_of(ViolationKind::DoubleUnmap), 1);
    }

    #[test]
    fn verdict_is_pure_classification() {
        let (_, san, c) = rig();
        let m = mapping(0x9000, 64, DmaDirection::FromDevice, 0x1_0000);
        map(&san, &c, &m, 1);
        assert_eq!(san.verdict(DEV, 0x9000, 64, true), AccessVerdict::Permitted);
        assert_eq!(
            san.verdict(DEV, 0x9000, 128, true),
            AccessVerdict::SanitizerViolation(ViolationKind::OobAccess)
        );
        assert_eq!(
            san.verdict(DEV, 0xdead_0000, 8, true),
            AccessVerdict::SanitizerViolation(ViolationKind::StaleAccess)
        );
        assert_eq!(
            san.verdict(DEV, 0xdead_0000, 8, false),
            AccessVerdict::BlockedByIommu
        );
        assert_eq!(san.violation_count(), 0, "verdict records nothing");
    }

    #[test]
    #[should_panic(expected = "dmasan[double_unmap]")]
    fn strict_mode_panics_on_violation() {
        let obs = Obs::isolated();
        let san = DmaSan::with_strict(obs, true);
        let c = ctx();
        let m = mapping(0x1000, 64, DmaDirection::ToDevice, 0x2000);
        san.on_unmap(&c, DEV, &m, 1);
    }

    #[test]
    fn dmabuf_roundtrip_is_clean_under_strict() {
        // The happy path must never trip strict mode.
        let obs = Obs::isolated();
        let san = DmaSan::with_strict(obs, true);
        let c = ctx();
        for i in 0..32u64 {
            let m = mapping(
                0x1000 + i * 0x1000,
                1500,
                DmaDirection::FromDevice,
                i * 0x4000,
            );
            let _ = DmaBuf::new(PhysAddr(i * 0x4000), 1500);
            san.on_map(&c, DEV, &m, i * 2);
            san.on_device_access(DEV, m.iova.get(), 1500, true, true);
            san.on_unmap(&c, DEV, &m, i * 2 + 1);
        }
        assert_eq!(san.check_teardown(), 0);
    }
}
