//! # dmasan — correctness tooling for the DMA-shadowing stack
//!
//! The paper's security argument (§2.2, §4) assumes the DMA API is used
//! *correctly*: every `dma_map` is paired with exactly one `dma_unmap`,
//! the device never touches bytes outside a live mapping, and the
//! invalidation machinery is properly lock-serialized. Linux guards the
//! first group of invariants with `CONFIG_DMA_API_DEBUG`; this crate is
//! the reproduction's equivalent, plus an Eraser-style lockset race
//! detector over the `obs` event stream:
//!
//! - [`DmaSan`] — a live-mapping registry fed by the [`dma_api`] observer
//!   hooks ([`dma_api::DmaObserver`], [`dma_api::BusObserver`]). It
//!   detects six dma-debug violation classes: double-map of the same OS
//!   buffer, double-unmap, unmap with the wrong size/direction, device
//!   access to an unmapped/stale IOVA, sub-page out-of-bounds access
//!   against the mapping's byte-granular window, and leak-at-teardown.
//!   Each violation is recorded as an `obs` `SanitizerViolation` event
//!   whose cause chains back to the originating `DmaMap`.
//! - [`LocksetDetector`] — replays the detail-gated `LockAcquire` /
//!   `LockRelease` / `SharedAccess` events emitted by `iommu::invalq`,
//!   `shadow_core`'s pool, and `dma_api`'s deferred flusher, and flags
//!   shared-state accesses whose candidate lockset goes empty (Eraser,
//!   SOSP'97).
//!
//! With the `strict` feature (workspace flag `dmasan-strict`) or
//! `DMASAN_STRICT=1` in the environment, [`DmaSan::new`] panics on the
//! first violation, turning every existing test into a sanitizer test.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod lockset;

pub use checker::{AccessVerdict, DmaSan, Violation, ViolationKind};
pub use lockset::{LocksetDetector, RaceReport};
