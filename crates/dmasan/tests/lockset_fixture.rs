//! Lockset regression fixtures over the *real* instrumented lock sites.
//!
//! The racy fixture drives `dma_api::DeferredFlusher` in per-core scope
//! with a single pending list shared by two cores — exactly the
//! lock-free-by-design fast path misconfigured so two cores collide on
//! one list. The detector must flag it; the properly-configured global
//! and per-core variants must stay clean.

use dma_api::{DeferPolicy, DeferredFlusher, FlushScope, PendingUnmap};
use dmasan::LocksetDetector;
use iommu::{DeviceId, InvalQueue, Iotlb, IovaPage};
use obs::Obs;
use simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::Arc;

fn ctx(core: u16) -> CoreCtx {
    CoreCtx::new(CoreId(core), Arc::new(CostModel::haswell_2_4ghz()))
}

fn entry(p: u64) -> PendingUnmap {
    PendingUnmap {
        page: IovaPage(p),
        pages: 1,
    }
}

fn detail_obs() -> Obs {
    let obs = Obs::isolated();
    obs.set_detail_enabled(true);
    obs
}

#[test]
fn seeded_racy_flusher_fixture_is_flagged() {
    let obs = detail_obs();
    // THE BUG: per-core scope sized for one core, then driven from two.
    // `list_index` maps both cores onto pending list 0, which the
    // per-core fast path touches without any lock.
    let flusher = DeferredFlusher::with_obs(
        DeferPolicy {
            batch: 1000,
            timeout: Cycles::MAX,
        },
        FlushScope::PerCore,
        1,
        obs.clone(),
    );
    let (mut c0, mut c1) = (ctx(0), ctx(1));
    for i in 0..4 {
        flusher.defer(&mut c0, entry(i), |_, _| {});
        flusher.defer(&mut c1, entry(100 + i), |_, _| {});
    }
    let reports = LocksetDetector::analyze(&obs.tracer().events());
    assert_eq!(
        reports.len(),
        1,
        "exactly the shared list races: {reports:?}"
    );
    assert_eq!(reports[0].var, "flush.pending_list[0]");
    assert_eq!(reports[0].cores, vec![0, 1]);
}

#[test]
fn global_scope_flusher_is_clean() {
    let obs = detail_obs();
    let flusher = DeferredFlusher::with_obs(
        DeferPolicy::linux_default(),
        FlushScope::Global,
        2,
        obs.clone(),
    );
    let (mut c0, mut c1) = (ctx(0), ctx(1));
    for i in 0..8 {
        flusher.defer(&mut c0, entry(i), |_, _| {});
        flusher.defer(&mut c1, entry(100 + i), |_, _| {});
    }
    assert!(
        LocksetDetector::analyze(&obs.tracer().events()).is_empty(),
        "the global list is lock-serialized"
    );
}

#[test]
fn correctly_sized_per_core_flusher_is_clean() {
    let obs = detail_obs();
    let flusher = DeferredFlusher::with_obs(
        DeferPolicy::linux_default(),
        FlushScope::PerCore,
        2,
        obs.clone(),
    );
    let (mut c0, mut c1) = (ctx(0), ctx(1));
    for i in 0..8 {
        flusher.defer(&mut c0, entry(i), |_, _| {});
        flusher.defer(&mut c1, entry(100 + i), |_, _| {});
    }
    assert!(
        LocksetDetector::analyze(&obs.tracer().events()).is_empty(),
        "each core owns its own list (single-owner exclusivity)"
    );
}

#[test]
fn invalidation_queue_is_lock_serialized() {
    let obs = detail_obs();
    let q = InvalQueue::with_obs(obs.clone());
    let tlb = simcore::sync::Mutex::new(Iotlb::new(64));
    let dev = DeviceId(0);
    let (mut c0, mut c1) = (ctx(0), ctx(1));
    for i in 0..8u64 {
        q.invalidate_pages_sync(&mut c0, &tlb, dev, &[IovaPage(i)]);
        q.invalidate_pages_sync(&mut c1, &tlb, dev, &[IovaPage(100 + i)]);
    }
    assert!(
        LocksetDetector::analyze(&obs.tracer().events()).is_empty(),
        "the invalidation queue serializes on its SimLock"
    );
}
