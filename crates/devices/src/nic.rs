//! The simulated 40 Gb/s NIC.

// lint: allow(panic) — descriptor-ring invariants are device-model bugs, not runtime errors

use dma_api::{Bus, BusError, CoherentBuffer};
use iommu::DeviceId;
use std::cell::RefCell;
use std::fmt;

/// Ethernet MTU payload size used throughout the evaluation.
pub const MTU: usize = 1500;

/// Bytes per descriptor: `addr(8) | len(4) | status(4)`.
pub const DESC_BYTES: usize = 16;

/// Descriptor status values (shared driver/device protocol).
/// `0` means empty/unposted; the driver sets `1` (ready) when posting and
/// the device writes back `2` (done).
const STATUS_READY: u32 = 1;
const STATUS_DONE: u32 = 2;

/// NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Maximum TSO buffer the driver may hand the NIC (64 KB, §6).
    pub tso_max: usize,
    /// Entries per descriptor ring.
    pub ring_entries: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            tso_max: 64 * 1024,
            ring_entries: 256,
        }
    }
}

/// NIC errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// A DMA issued by the NIC was blocked or failed.
    Dma(BusError),
    /// The targeted ring slot holds no ready descriptor.
    NoDescriptor {
        /// Ring index.
        ring: usize,
        /// Slot index within the ring.
        slot: usize,
    },
    /// The driver posted a TX buffer above the TSO limit.
    OversizedTx(usize),
    /// The ring id is not attached.
    BadRing(usize),
}

impl fmt::Display for NicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicError::Dma(e) => write!(f, "NIC DMA failed: {e}"),
            NicError::NoDescriptor { ring, slot } => {
                write!(f, "no ready descriptor in ring {ring} slot {slot}")
            }
            NicError::OversizedTx(n) => write!(f, "TX buffer of {n} bytes exceeds TSO limit"),
            NicError::BadRing(r) => write!(f, "no such ring {r}"),
        }
    }
}

impl std::error::Error for NicError {}

impl From<BusError> for NicError {
    fn from(e: BusError) -> Self {
        NicError::Dma(e)
    }
}

/// A completed receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxCompletion {
    /// Ring slot that completed.
    pub slot: usize,
    /// Bytes the NIC wrote into the posted buffer.
    pub len: usize,
}

/// A completed transmit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxCompletion {
    /// Ring slot that completed.
    pub slot: usize,
    /// Payload bytes fetched from the host.
    pub len: usize,
    /// Wire frames emitted (TSO segmentation: `ceil(len / MTU)`).
    pub frames: usize,
}

#[derive(Debug)]
struct Ring {
    /// Device-visible address of the descriptor array.
    iova: u64,
    entries: usize,
    /// Next slot the device will consume.
    next: usize,
}

/// The NIC model.
///
/// All memory traffic — descriptor fetches, descriptor write-backs, and
/// payload movement — goes through the device's [`Bus`], i.e. through the
/// IOMMU when protection is on. The driver side (posting descriptors) is
/// CPU work and uses direct physical access to the coherent ring memory.
#[derive(Debug)]
pub struct Nic {
    dev: DeviceId,
    bus: Bus,
    cfg: NicConfig,
    rx: Vec<RefCell<Ring>>,
    tx: Vec<RefCell<Ring>>,
}

impl Nic {
    /// Creates a NIC on `bus` with requester id `dev`.
    pub fn new(dev: DeviceId, bus: Bus, cfg: NicConfig) -> Self {
        Nic {
            dev,
            bus,
            cfg,
            rx: Vec::new(),
            tx: Vec::new(),
        }
    }

    /// The NIC's requester id.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// The NIC's configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Attaches an RX descriptor ring (a coherent buffer the driver
    /// allocated); returns the ring id.
    pub fn attach_rx_ring(&mut self, ring: &CoherentBuffer) -> usize {
        assert!(
            ring.len >= self.cfg.ring_entries * DESC_BYTES,
            "ring buffer too small"
        );
        self.rx.push(RefCell::new(Ring {
            iova: ring.iova.get(),
            entries: self.cfg.ring_entries,
            next: 0,
        }));
        self.rx.len() - 1
    }

    /// Attaches a TX descriptor ring; returns the ring id.
    pub fn attach_tx_ring(&mut self, ring: &CoherentBuffer) -> usize {
        assert!(
            ring.len >= self.cfg.ring_entries * DESC_BYTES,
            "ring buffer too small"
        );
        self.tx.push(RefCell::new(Ring {
            iova: ring.iova.get(),
            entries: self.cfg.ring_entries,
            next: 0,
        }));
        self.tx.len() - 1
    }

    /// Serializes a descriptor the *driver* writes into ring memory (by
    /// CPU store to the coherent buffer — see `netsim`'s driver).
    pub fn encode_descriptor(addr: u64, len: u32) -> [u8; DESC_BYTES] {
        let mut d = [0u8; DESC_BYTES];
        d[0..8].copy_from_slice(&addr.to_le_bytes());
        d[8..12].copy_from_slice(&len.to_le_bytes());
        d[12..16].copy_from_slice(&STATUS_READY.to_le_bytes());
        d
    }

    /// Decodes a descriptor's `(addr, len, status)`.
    pub fn decode_descriptor(d: &[u8]) -> (u64, u32, u32) {
        let addr = u64::from_le_bytes(d[0..8].try_into().expect("desc addr"));
        let len = u32::from_le_bytes(d[8..12].try_into().expect("desc len"));
        let status = u32::from_le_bytes(d[12..16].try_into().expect("desc status"));
        (addr, len, status)
    }

    /// Whether a decoded descriptor status means "completed by the NIC".
    pub fn is_done(status: u32) -> bool {
        status == STATUS_DONE
    }

    fn fetch_descriptor(&self, ring: &Ring, slot: usize) -> Result<(u64, u32, u32), NicError> {
        let mut raw = [0u8; DESC_BYTES];
        self.bus
            .read(self.dev, ring.iova + (slot * DESC_BYTES) as u64, &mut raw)?;
        Ok(Self::decode_descriptor(&raw))
    }

    fn write_back(&self, ring: &Ring, slot: usize, len: u32) -> Result<(), NicError> {
        let mut tail = [0u8; 8];
        tail[0..4].copy_from_slice(&len.to_le_bytes());
        tail[4..8].copy_from_slice(&STATUS_DONE.to_le_bytes());
        self.bus
            .write(self.dev, ring.iova + (slot * DESC_BYTES + 8) as u64, &tail)?;
        Ok(())
    }

    /// A frame arrives from the wire: the NIC fetches the next RX
    /// descriptor (a DMA read), DMAs the payload into the posted buffer,
    /// and writes the completion back (a DMA write).
    ///
    /// # Errors
    ///
    /// [`NicError::NoDescriptor`] if the driver hasn't replenished the
    /// ring (the frame is dropped, as on real hardware);
    /// [`NicError::Dma`] if any of the NIC's DMAs is blocked by the IOMMU.
    pub fn receive(&self, ring_id: usize, payload: &[u8]) -> Result<RxCompletion, NicError> {
        let mut ring = self
            .rx
            .get(ring_id)
            .ok_or(NicError::BadRing(ring_id))?
            .borrow_mut();
        let slot = ring.next;
        let (addr, len, status) = self.fetch_descriptor(&ring, slot)?;
        if status != STATUS_READY {
            return Err(NicError::NoDescriptor {
                ring: ring_id,
                slot,
            });
        }
        let n = payload.len().min(len as usize);
        self.bus.write(self.dev, addr, &payload[..n])?;
        self.write_back(&ring, slot, n as u32)?;
        ring.next = (slot + 1) % ring.entries;
        Ok(RxCompletion { slot, len: n })
    }

    /// The NIC processes the next TX descriptor: fetches it, DMA-reads the
    /// payload from the host, segments it into MTU-sized wire frames
    /// (TSO), and completes the descriptor.
    ///
    /// Returns the completion and the reassembled payload (so callers can
    /// verify what actually went on the wire).
    pub fn transmit(&self, ring_id: usize) -> Result<(TxCompletion, Vec<u8>), NicError> {
        let mut payload = Vec::new();
        let completion = self.transmit_into(ring_id, &mut payload)?;
        Ok((completion, payload))
    }

    /// Like [`Nic::transmit`], but gathers the wire payload into a
    /// caller-owned buffer so per-packet loops can reuse one allocation.
    /// The buffer is cleared and resized to the payload length.
    pub fn transmit_into(
        &self,
        ring_id: usize,
        payload: &mut Vec<u8>,
    ) -> Result<TxCompletion, NicError> {
        let mut ring = self
            .tx
            .get(ring_id)
            .ok_or(NicError::BadRing(ring_id))?
            .borrow_mut();
        let slot = ring.next;
        let (addr, len, status) = self.fetch_descriptor(&ring, slot)?;
        if status != STATUS_READY {
            return Err(NicError::NoDescriptor {
                ring: ring_id,
                slot,
            });
        }
        let len = len as usize;
        if len > self.cfg.tso_max {
            return Err(NicError::OversizedTx(len));
        }
        payload.clear();
        payload.resize(len, 0);
        self.bus.read(self.dev, addr, payload)?;
        self.write_back(&ring, slot, len as u32)?;
        ring.next = (slot + 1) % ring.entries;
        let frames = len.div_ceil(MTU).max(1);
        Ok(TxCompletion { slot, len, frames })
    }

    /// The NIC processes the next `n` TX descriptors as one scatter/gather
    /// chain: it fetches each descriptor, DMA-reads each fragment, and
    /// transmits the concatenation as one TSO payload (real NICs chain
    /// descriptors exactly like this for fragmented skbs).
    ///
    /// Returns the combined completion and the gathered payload.
    pub fn transmit_gather(
        &self,
        ring_id: usize,
        n: usize,
    ) -> Result<(TxCompletion, Vec<u8>), NicError> {
        let mut payload = Vec::new();
        let completion = self.transmit_gather_into(ring_id, n, &mut payload)?;
        Ok((completion, payload))
    }

    /// Like [`Nic::transmit_gather`], but gathers into a caller-owned
    /// buffer (cleared first) so hot loops can reuse one allocation.
    pub fn transmit_gather_into(
        &self,
        ring_id: usize,
        n: usize,
        payload: &mut Vec<u8>,
    ) -> Result<TxCompletion, NicError> {
        assert!(n > 0, "empty gather chain");
        let mut ring = self
            .tx
            .get(ring_id)
            .ok_or(NicError::BadRing(ring_id))?
            .borrow_mut();
        let first_slot = ring.next;
        payload.clear();
        for k in 0..n {
            let slot = (first_slot + k) % ring.entries;
            let (addr, len, status) = self.fetch_descriptor(&ring, slot)?;
            if status != STATUS_READY {
                return Err(NicError::NoDescriptor {
                    ring: ring_id,
                    slot,
                });
            }
            let len = len as usize;
            if payload.len() + len > self.cfg.tso_max {
                return Err(NicError::OversizedTx(payload.len() + len));
            }
            let start = payload.len();
            payload.resize(start + len, 0);
            self.bus.read(self.dev, addr, &mut payload[start..])?;
            self.write_back(&ring, slot, len as u32)?;
        }
        ring.next = (first_slot + n) % ring.entries;
        let len = payload.len();
        let frames = len.div_ceil(MTU).max(1);
        Ok(TxCompletion {
            slot: first_slot,
            len,
            frames,
        })
    }

    /// The slot the device will consume next on an RX ring (for driver
    /// replenish logic).
    pub fn rx_next(&self, ring_id: usize) -> usize {
        self.rx[ring_id].borrow().next
    }

    /// The slot the device will consume next on a TX ring.
    pub fn tx_next(&self, ring_id: usize) -> usize {
        self.tx[ring_id].borrow().next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_api::{DmaBuf, DmaDirection, DmaEngine, NoIommu};
    use memsim::{NumaDomain, NumaTopology, PhysMemory};
    use simcore::{CoreCtx, CoreId, CostModel};
    use std::sync::Arc;

    const DEV: DeviceId = DeviceId(0);

    struct Rig {
        mem: Arc<PhysMemory>,
        eng: NoIommu,
        nic: Nic,
        ring: CoherentBuffer,
        ctx: CoreCtx,
    }

    /// An unprotected rig: NIC on a direct bus (IOMMU engines are
    /// exercised end-to-end in netsim / integration tests).
    fn rig() -> Rig {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(256)));
        let eng = NoIommu::new(mem.clone(), DEV);
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        let ring = eng.alloc_coherent(&mut ctx, 256 * DESC_BYTES).unwrap();
        let nic = Nic::new(DEV, Bus::Direct(mem.clone()), NicConfig::default());
        Rig {
            mem,
            eng,
            nic,
            ring,
            ctx,
        }
    }

    fn post_rx(r: &Rig, slot: usize, addr: u64, len: u32) {
        let d = Nic::encode_descriptor(addr, len);
        r.mem
            .write(r.ring.pa.add((slot * DESC_BYTES) as u64), &d)
            .unwrap();
    }

    #[test]
    fn rx_delivers_into_posted_buffer() {
        let mut r = rig();
        let ring_id = r.nic.attach_rx_ring(&r.ring);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base(), MTU);
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        post_rx(&r, 0, m.iova.get(), MTU as u32);

        let pkt = vec![0xabu8; 900];
        let c = r.nic.receive(ring_id, &pkt).unwrap();
        assert_eq!(c, RxCompletion { slot: 0, len: 900 });
        assert_eq!(r.mem.read_vec(buf.pa, 900).unwrap(), pkt);

        // The completion is visible in ring memory.
        let mut d = [0u8; DESC_BYTES];
        r.mem.read(r.ring.pa, &mut d).unwrap();
        let (_, len, status) = Nic::decode_descriptor(&d);
        assert!(Nic::is_done(status));
        assert_eq!(len, 900);
    }

    #[test]
    fn rx_without_descriptor_drops() {
        let mut r = rig();
        let ring_id = r.nic.attach_rx_ring(&r.ring);
        let err = r.nic.receive(ring_id, b"frame").unwrap_err();
        assert_eq!(
            err,
            NicError::NoDescriptor {
                ring: ring_id,
                slot: 0
            }
        );
        let _ = &mut r.ctx;
    }

    #[test]
    fn rx_truncates_to_posted_length() {
        let mut r = rig();
        let ring_id = r.nic.attach_rx_ring(&r.ring);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base(), 100);
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        post_rx(&r, 0, m.iova.get(), 100);
        let c = r.nic.receive(ring_id, &vec![1u8; 500]).unwrap();
        assert_eq!(c.len, 100);
    }

    #[test]
    fn rx_ring_wraps() {
        let mut r = rig();
        let ring_id = r.nic.attach_rx_ring(&r.ring);
        let pfn = r.mem.alloc_frame(NumaDomain(0)).unwrap();
        let buf = DmaBuf::new(pfn.base(), 64);
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        for i in 0..(256 + 3) {
            let slot = i % 256;
            post_rx(&r, slot, m.iova.get(), 64);
            let c = r.nic.receive(ring_id, &[i as u8; 8]).unwrap();
            assert_eq!(c.slot, slot);
        }
        assert_eq!(r.nic.rx_next(ring_id), 3);
    }

    #[test]
    fn tx_fetches_and_segments() {
        let mut r = rig();
        let ring_id = r.nic.attach_tx_ring(&r.ring);
        let pfn = r.mem.alloc_frames(NumaDomain(0), 16).unwrap();
        let payload: Vec<u8> = (0..48_000).map(|i| (i % 253) as u8).collect();
        r.mem.write(pfn.base(), &payload).unwrap();
        let buf = DmaBuf::new(pfn.base(), payload.len());
        let m = r.eng.map(&mut r.ctx, buf, DmaDirection::ToDevice).unwrap();
        post_rx(&r, 0, m.iova.get(), payload.len() as u32);

        let (c, wire) = r.nic.transmit(ring_id).unwrap();
        assert_eq!(c.len, 48_000);
        assert_eq!(c.frames, 48_000usize.div_ceil(MTU));
        assert_eq!(wire, payload, "TSO reassembles to the original payload");
    }

    #[test]
    fn tx_rejects_oversized_buffers() {
        let mut r = rig();
        let ring_id = r.nic.attach_tx_ring(&r.ring);
        let pfn = r.mem.alloc_frames(NumaDomain(0), 17).unwrap();
        let buf = DmaBuf::new(pfn.base(), 65 * 1024);
        let m = r.eng.map(&mut r.ctx, buf, DmaDirection::ToDevice).unwrap();
        post_rx(&r, 0, m.iova.get(), (65 * 1024) as u32);
        assert_eq!(
            r.nic.transmit(ring_id).unwrap_err(),
            NicError::OversizedTx(65 * 1024)
        );
    }

    #[test]
    fn bad_ring_id_rejected() {
        let r = rig();
        assert_eq!(r.nic.receive(9, b"x").unwrap_err(), NicError::BadRing(9));
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = Nic::encode_descriptor(0xdead_beef_1234, 1500);
        let (addr, len, status) = Nic::decode_descriptor(&d);
        assert_eq!(addr, 0xdead_beef_1234);
        assert_eq!(len, 1500);
        assert_eq!(status, STATUS_READY);
        assert!(!Nic::is_done(status));
    }
}
