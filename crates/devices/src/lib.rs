//! # devices — simulated DMA-capable devices
//!
//! Device models that issue *real* DMAs through [`dma_api::Bus`] (and thus
//! through the simulated IOMMU when one is configured):
//!
//! - [`Nic`] — a 40 Gb/s-class ethernet NIC modeled after the paper's
//!   Intel XL710: per-core RX/TX descriptor rings living in coherent
//!   memory (descriptor fetches and write-backs are themselves DMAs),
//!   MTU-1500 receive buffers, and TCP segmentation offload (TSO) for TX
//!   buffers up to 64 KB.
//! - [`Ssd`] — an NVMe-style SSD with 4 KB-block DMA and the IOPS
//!   envelope the paper quotes for Intel's data-center SSDs (§5.5).
//! - [`MaliciousDevice`] — the attacker: a device that issues arbitrary
//!   DMAs (probes, scans, overwrites) to mount the attacks of §3/§4.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod malicious;
mod nic;
mod ssd;

pub use malicious::{MaliciousDevice, ScanReport};
pub use nic::{Nic, NicConfig, NicError, RxCompletion, TxCompletion, DESC_BYTES, MTU};
pub use ssd::{Ssd, SsdError, SSD_BLOCK, SSD_READ_IOPS, SSD_WRITE_IOPS};
