//! A simple NVMe-style SSD model.
//!
//! The paper's §5.5 argument for the huge-buffer hybrid rests on the
//! observation that devices with large DMA buffers have low DMA *rates*:
//! it cites Intel data-center SSDs at ≥4 KB per DMA with up to 850 K read
//! IOPS and 150 K write IOPS. This model issues those block DMAs through
//! the bus so storage-flavored workloads can be simulated; the IOPS
//! envelope constants feed the bench harness.

use dma_api::{Bus, BusError};
use iommu::DeviceId;
use simcore::sync::Mutex;
use std::collections::HashMap;
use std::fmt;

/// SSD DMA block size (minimum transfer), 4 KB.
pub const SSD_BLOCK: usize = 4096;
/// Peak random-read IOPS of the modeled drive (§5.5).
pub const SSD_READ_IOPS: u64 = 850_000;
/// Peak random-write IOPS of the modeled drive (§5.5).
pub const SSD_WRITE_IOPS: u64 = 150_000;

/// SSD errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// A host-memory DMA was blocked or failed.
    Dma(BusError),
    /// LBA beyond the device capacity.
    BadLba(u64),
    /// Transfer length is not a whole number of blocks.
    BadLength(usize),
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::Dma(e) => write!(f, "SSD DMA failed: {e}"),
            SsdError::BadLba(l) => write!(f, "LBA {l} beyond capacity"),
            SsdError::BadLength(n) => write!(f, "length {n} not block-aligned"),
        }
    }
}

impl std::error::Error for SsdError {}

impl From<BusError> for SsdError {
    fn from(e: BusError) -> Self {
        SsdError::Dma(e)
    }
}

/// The SSD model: block storage + DMA engine.
#[derive(Debug)]
pub struct Ssd {
    dev: DeviceId,
    bus: Bus,
    capacity_blocks: u64,
    media: Mutex<HashMap<u64, Box<[u8]>>>,
}

impl Ssd {
    /// Creates an SSD of `capacity_blocks` 4 KB blocks on `bus`.
    pub fn new(dev: DeviceId, bus: Bus, capacity_blocks: u64) -> Self {
        Ssd {
            dev,
            bus,
            capacity_blocks,
            media: Mutex::new(HashMap::new()),
        }
    }

    /// The SSD's requester id.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn check(&self, lba: u64, len: usize) -> Result<u64, SsdError> {
        if len == 0 || !len.is_multiple_of(SSD_BLOCK) {
            return Err(SsdError::BadLength(len));
        }
        let blocks = (len / SSD_BLOCK) as u64;
        if lba + blocks > self.capacity_blocks {
            return Err(SsdError::BadLba(lba + blocks - 1));
        }
        Ok(blocks)
    }

    /// Host read: the SSD DMA-writes `len` bytes of media content starting
    /// at `lba` into host memory at `addr` (an IOVA under protection).
    pub fn read_blocks(&self, lba: u64, addr: u64, len: usize) -> Result<(), SsdError> {
        let blocks = self.check(lba, len)?;
        let media = self.media.lock();
        for b in 0..blocks {
            let zero;
            let data: &[u8] = match media.get(&(lba + b)) {
                Some(d) => d,
                None => {
                    zero = [0u8; SSD_BLOCK];
                    &zero
                }
            };
            self.bus
                .write(self.dev, addr + b * SSD_BLOCK as u64, data)?;
        }
        Ok(())
    }

    /// Host write: the SSD DMA-reads `len` bytes from host memory at
    /// `addr` and stores them starting at `lba`.
    pub fn write_blocks(&self, lba: u64, addr: u64, len: usize) -> Result<(), SsdError> {
        let blocks = self.check(lba, len)?;
        for b in 0..blocks {
            let mut block = vec![0u8; SSD_BLOCK];
            self.bus
                .read(self.dev, addr + b * SSD_BLOCK as u64, &mut block)?;
            self.media.lock().insert(lba + b, block.into_boxed_slice());
        }
        Ok(())
    }

    /// Direct media peek for tests (no DMA).
    pub fn peek_block(&self, lba: u64) -> Vec<u8> {
        self.media
            .lock()
            .get(&lba)
            .map(|b| b.to_vec())
            .unwrap_or_else(|| vec![0u8; SSD_BLOCK])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_api::{DmaBuf, DmaDirection, DmaEngine, NoIommu};
    use memsim::{NumaDomain, NumaTopology, PhysMemory};
    use simcore::{CoreCtx, CoreId, CostModel};
    use std::sync::Arc;

    const DEV: DeviceId = DeviceId(2);

    fn rig() -> (Arc<PhysMemory>, NoIommu, Ssd, CoreCtx) {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(128)));
        let eng = NoIommu::new(mem.clone(), DEV);
        let ssd = Ssd::new(DEV, Bus::Direct(mem.clone()), 1024);
        let ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        (mem, eng, ssd, ctx)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mem, eng, ssd, mut ctx) = rig();
        let pfn = mem.alloc_frames(NumaDomain(0), 2).unwrap();
        let data: Vec<u8> = (0..2 * SSD_BLOCK).map(|i| (i % 251) as u8).collect();
        mem.write(pfn.base(), &data).unwrap();
        let buf = DmaBuf::new(pfn.base(), data.len());
        let m = eng.map(&mut ctx, buf, DmaDirection::ToDevice).unwrap();
        ssd.write_blocks(10, m.iova.get(), data.len()).unwrap();
        eng.unmap(&mut ctx, m).unwrap();
        assert_eq!(ssd.peek_block(10), data[..SSD_BLOCK]);

        // Read back into a different host buffer.
        let pfn2 = mem.alloc_frames(NumaDomain(0), 2).unwrap();
        let buf2 = DmaBuf::new(pfn2.base(), data.len());
        let m2 = eng.map(&mut ctx, buf2, DmaDirection::FromDevice).unwrap();
        ssd.read_blocks(10, m2.iova.get(), data.len()).unwrap();
        eng.unmap(&mut ctx, m2).unwrap();
        assert_eq!(mem.read_vec(pfn2.base(), data.len()).unwrap(), data);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let (mem, _eng, ssd, _) = rig();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mem.fill(pfn.base(), 0xff, SSD_BLOCK).unwrap();
        ssd.read_blocks(99, pfn.base().get(), SSD_BLOCK).unwrap();
        assert_eq!(
            mem.read_vec(pfn.base(), SSD_BLOCK).unwrap(),
            vec![0u8; SSD_BLOCK]
        );
    }

    #[test]
    fn bounds_and_alignment_checked() {
        let (mem, _eng, ssd, _) = rig();
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        assert_eq!(
            ssd.read_blocks(0, pfn.base().get(), 100).unwrap_err(),
            SsdError::BadLength(100)
        );
        assert_eq!(
            ssd.read_blocks(1024, pfn.base().get(), SSD_BLOCK)
                .unwrap_err(),
            SsdError::BadLba(1024)
        );
    }

    #[test]
    fn iops_envelope_constants() {
        // The §5.5 arithmetic: even at peak IOPS, the SSD's DMA rate is far
        // below the NIC's packet rate, so per-DMA invalidation overhead is
        // amortized.
        let nic_pkts_per_sec = 40e9 / 8.0 / 1500.0; // ≈3.3M
        assert!((SSD_READ_IOPS as f64) < nic_pkts_per_sec / 3.0);
        const { assert!(SSD_WRITE_IOPS < SSD_READ_IOPS) };
    }
}
