//! The attacker: a DMA-capable device under adversarial control (§3).
//!
//! Models the paper's threat: a compromised NIC firmware, a malicious
//! peripheral plugged into the machine, or an errant device. It issues
//! arbitrary DMAs; what those DMAs can reach is exactly what the active
//! protection scheme permits.

use dma_api::{Bus, BusError};
use dmasan::{AccessVerdict, DmaSan};
use iommu::DeviceId;
use obs::{Counter, EventKind, Obs};
use std::sync::Arc;

/// Result of scanning an address range with probe DMAs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanReport {
    /// Addresses whose probe succeeded.
    pub accessible: Vec<u64>,
    /// Probes blocked by the IOMMU or unbacked memory.
    pub blocked: u64,
}

impl ScanReport {
    /// Whether anything was reachable.
    pub fn any_accessible(&self) -> bool {
        !self.accessible.is_empty()
    }
}

/// The malicious device.
///
/// Every DMA it issues is counted (`malicious.*{dev}` metrics). Blocked
/// accesses become [`EventKind::AttackBlocked`] trace events: accesses an
/// IOMMU rejects are traced by the IOMMU itself (share its `Obs` via
/// [`MaliciousDevice::with_obs`] to see them), while accesses that die on
/// an unprotected bus (unbacked physical memory, reason `"unbacked"`) are
/// traced here, since no IOMMU ever saw them.
///
/// # Examples
///
/// ```
/// use devices::MaliciousDevice;
/// use dma_api::Bus;
/// use iommu::{DeviceId, Iommu};
/// use memsim::{NumaTopology, PhysMemory};
/// use std::sync::Arc;
///
/// let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(16)));
/// let mmu = Arc::new(Iommu::new());
/// let evil = MaliciousDevice::new(DeviceId(0), Bus::Iommu { mmu, mem });
/// // With nothing mapped, every probe is blocked by the IOMMU.
/// let report = evil.scan(0, 16 * 4096, 4096);
/// assert!(!report.any_accessible());
/// assert_eq!(report.blocked, 16);
/// ```
#[derive(Debug)]
pub struct MaliciousDevice {
    dev: DeviceId,
    bus: Bus,
    obs: Obs,
    san: Option<Arc<DmaSan>>,
    reads: Counter,
    writes: Counter,
    faults: Counter,
}

impl MaliciousDevice {
    /// Creates the attacker on `bus` with requester id `dev`.
    ///
    /// To model a *compromised* NIC (rather than a separate rogue device),
    /// construct it with the NIC's own `DeviceId` — it then enjoys every
    /// mapping the OS established for the NIC.
    ///
    /// If the bus is protected, the attacker shares the IOMMU's telemetry
    /// handle so its blocked probes land in the stack's trace.
    pub fn new(dev: DeviceId, bus: Bus) -> Self {
        fn bus_obs(bus: &Bus) -> Obs {
            match bus {
                Bus::Iommu { mmu, .. } => mmu.obs().clone(),
                Bus::Direct(_) => Obs::isolated(),
                Bus::Observed { inner, .. } => bus_obs(inner),
            }
        }
        let obs = bus_obs(&bus);
        Self::with_obs(dev, bus, obs)
    }

    /// Creates the attacker reporting into `obs` (`malicious.*{dev}`).
    pub fn with_obs(dev: DeviceId, bus: Bus, obs: Obs) -> Self {
        let d = Some(dev.0);
        MaliciousDevice {
            dev,
            bus,
            san: None,
            reads: obs.counter("malicious", "reads", d),
            writes: obs.counter("malicious", "writes", d),
            faults: obs.counter("malicious", "faults", d),
            obs,
        }
    }

    /// Attaches a sanitizer so [`MaliciousDevice::attempt_read`] /
    /// [`MaliciousDevice::attempt_write`] classify each probe against the
    /// stack's live-mapping registry (share the victim stack's checker).
    pub fn with_sanitizer(mut self, san: Arc<DmaSan>) -> Self {
        self.san = Some(san);
        self
    }

    /// The sanitizer's verdict on an access the hardware resolved as
    /// `granted` / `err`. Without a sanitizer attached, only the hardware
    /// outcome is reported.
    fn classify(&self, addr: u64, len: usize, err: Option<&BusError>) -> AccessVerdict {
        match (err, &self.san) {
            (Some(BusError::Mem(_)), _) => AccessVerdict::BlockedUnbacked,
            (Some(BusError::Fault(_)), _) => AccessVerdict::BlockedByIommu,
            (None, Some(san)) => san.verdict(self.dev, addr, len, true),
            (None, None) => AccessVerdict::Permitted,
        }
    }

    /// The attacker's requester id.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// The telemetry handle blocked probes are traced into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Records a blocked access. IOMMU faults are traced by the IOMMU
    /// itself (sharing this handle); unprotected-bus failures are traced
    /// here so every blocked DMA appears exactly once.
    fn blocked(&self, addr: u64, access: &'static str, err: &BusError) {
        self.faults.inc();
        if let BusError::Mem(_) = err {
            self.obs.trace(
                self.obs.now_hint(),
                iommu::DEVICE_SIDE_CORE,
                Some(self.dev.0),
                EventKind::AttackBlocked {
                    iova: addr,
                    access: access.into(),
                    reason: "unbacked".into(),
                },
            );
        }
    }

    /// Attempts to read `len` bytes at `addr` (IOVA under protection, raw
    /// physical otherwise).
    pub fn try_read(&self, addr: u64, len: usize) -> Result<Vec<u8>, BusError> {
        self.reads.inc();
        let mut buf = vec![0u8; len];
        match self.bus.read(self.dev, addr, &mut buf) {
            Ok(()) => Ok(buf),
            Err(e) => {
                self.blocked(addr, "read", &e);
                Err(e)
            }
        }
    }

    /// Attempts to write `data` at `addr`.
    pub fn try_write(&self, addr: u64, data: &[u8]) -> Result<(), BusError> {
        self.writes.inc();
        self.bus.write(self.dev, addr, data).inspect_err(|e| {
            self.blocked(addr, "write", e);
        })
    }

    /// Like [`MaliciousDevice::try_read`], but also returns the
    /// sanitizer's verdict: did the hardware block the probe
    /// ([`AccessVerdict::BlockedByIommu`] / [`AccessVerdict::BlockedUnbacked`]),
    /// or did it permit an access the DMA-API contract forbids
    /// ([`AccessVerdict::SanitizerViolation`])?
    pub fn attempt_read(
        &self,
        addr: u64,
        len: usize,
    ) -> (Result<Vec<u8>, BusError>, AccessVerdict) {
        let r = self.try_read(addr, len);
        let verdict = self.classify(addr, len, r.as_ref().err());
        (r, verdict)
    }

    /// Like [`MaliciousDevice::try_write`], but also returns the
    /// sanitizer's verdict on the probe.
    pub fn attempt_write(&self, addr: u64, data: &[u8]) -> (Result<(), BusError>, AccessVerdict) {
        let r = self.try_write(addr, data);
        let verdict = self.classify(addr, data.len(), r.as_ref().err());
        (r, verdict)
    }

    /// Probes every `step` bytes in `[start, end)` with small reads,
    /// reporting which addresses are reachable — the reconnaissance phase
    /// of a DMA attack.
    pub fn scan(&self, start: u64, end: u64, step: u64) -> ScanReport {
        assert!(step > 0, "scan step must be positive");
        let mut report = ScanReport::default();
        let mut addr = start;
        while addr < end {
            match self.try_read(addr, 8) {
                Ok(_) => report.accessible.push(addr),
                Err(_) => report.blocked += 1,
            }
            addr += step;
        }
        report
    }

    /// Searches readable memory at `addr..addr+len` for `needle`,
    /// returning its offset — data exfiltration.
    pub fn hunt(&self, addr: u64, len: usize, needle: &[u8]) -> Option<usize> {
        let data = self.try_read(addr, len).ok()?;
        data.windows(needle.len()).position(|w| w == needle)
    }

    /// Total (reads, writes, faulted) DMAs issued — a view over the
    /// registry's `malicious.*` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reads.get(), self.writes.get(), self.faults.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iommu::{Iommu, IovaPage, Perms};
    use memsim::{NumaDomain, NumaTopology, PhysMemory};
    use simcore::{CoreCtx, CoreId, CostModel};
    use std::sync::Arc;

    const DEV: DeviceId = DeviceId(7);

    #[test]
    fn without_iommu_everything_allocated_is_reachable() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(16)));
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mem.write(pfn.base().add(100), b"password=hunter2").unwrap();
        let evil = MaliciousDevice::new(DEV, Bus::Direct(mem.clone()));
        // Scan finds the allocated frame...
        let report = evil.scan(0, 16 * 4096, 4096);
        assert!(report.accessible.contains(&pfn.base().get()));
        // ...and the secret is exfiltrated.
        assert_eq!(evil.hunt(pfn.base().get(), 4096, b"hunter2"), Some(109));
        // And it can be corrupted.
        evil.try_write(pfn.base().add(100).get(), b"pwned!")
            .unwrap();
        assert_eq!(mem.read_vec(pfn.base().add(100), 6).unwrap(), b"pwned!");
    }

    #[test]
    fn with_iommu_only_mappings_are_reachable() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(16)));
        let mmu = Arc::new(Iommu::new());
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mmu.map_page(&mut ctx, DEV, IovaPage(0x40), pfn, Perms::ReadWrite)
            .unwrap();
        let evil = MaliciousDevice::new(
            DEV,
            Bus::Iommu {
                mmu: mmu.clone(),
                mem: mem.clone(),
            },
        );
        let report = evil.scan(0, 0x100 * 4096, 4096);
        assert_eq!(report.accessible, vec![0x40 * 4096]);
        assert_eq!(report.blocked, 0xff);
        // The faults were logged by the IOMMU.
        assert_eq!(mmu.fault_count(), 0xff_usize);
        let (r, w, f) = evil.stats();
        assert_eq!(r, 0x100);
        assert_eq!(w, 0);
        assert_eq!(f, 0xff);
        // Every blocked probe appears exactly once as an AttackBlocked
        // trace event — the attacker shares the IOMMU's tracer.
        assert!(evil.obs().same_as(mmu.obs()));
        let blocked = evil
            .obs()
            .tracer()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AttackBlocked { .. }))
            .count();
        assert_eq!(blocked, 0xff);
    }

    #[test]
    fn direct_bus_blocked_probes_are_traced_here() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(4)));
        let evil = MaliciousDevice::new(DEV, Bus::Direct(mem));
        // Nothing allocated: all probes die on unbacked memory.
        let report = evil.scan(0, 3 * 4096, 4096);
        assert_eq!(report.blocked, 3);
        let evs = evil.obs().tracer().events();
        assert_eq!(evs.len(), 3);
        assert!(evs.iter().all(|e| matches!(
            &e.kind,
            EventKind::AttackBlocked { access, reason, .. }
                if access == "read" && reason == "unbacked"
        )));
    }

    #[test]
    fn verdicts_classify_hardware_and_contract_outcomes() {
        use dma_api::{DmaDirection, DmaMapping, DmaObserver};
        use dmasan::ViolationKind;
        use iommu::Iova;

        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(16)));
        let mmu = Arc::new(Iommu::new());
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
        mmu.map_page(&mut ctx, DEV, IovaPage(0x40), pfn, Perms::ReadWrite)
            .unwrap();
        // The DMA API only vouches for 100 bytes of that page.
        let san = Arc::new(DmaSan::lenient(mmu.obs().clone()));
        let iova = 0x40 * 4096u64;
        san.on_map(
            &ctx,
            DEV,
            &DmaMapping {
                iova: Iova::new(iova),
                len: 100,
                dir: DmaDirection::FromDevice,
                os_pa: pfn.base(),
            },
            1,
        );
        let evil = MaliciousDevice::new(
            DEV,
            Bus::Iommu {
                mmu: mmu.clone(),
                mem: mem.clone(),
            },
        )
        .with_sanitizer(san);

        let (r, v) = evil.attempt_read(iova, 100);
        assert!(r.is_ok());
        assert_eq!(v, AccessVerdict::Permitted);
        // The IOMMU's page granularity permits the overrun; the
        // byte-granular sanitizer calls it out.
        let (r, v) = evil.attempt_read(iova + 96, 16);
        assert!(r.is_ok());
        assert_eq!(
            v,
            AccessVerdict::SanitizerViolation(ViolationKind::OobAccess)
        );
        let (r, v) = evil.attempt_read(0, 8);
        assert!(r.is_err());
        assert_eq!(v, AccessVerdict::BlockedByIommu);

        // On an unprotected bus, unbacked memory is the only defense.
        let bare = MaliciousDevice::new(
            DEV,
            Bus::Direct(Arc::new(PhysMemory::new(NumaTopology::tiny(4)))),
        );
        let (r, v) = bare.attempt_write(2 * 4096, b"x");
        assert!(r.is_err());
        assert_eq!(v, AccessVerdict::BlockedUnbacked);
    }

    #[test]
    fn hunt_fails_on_blocked_memory() {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(16)));
        let mmu = Arc::new(Iommu::new());
        let evil = MaliciousDevice::new(DEV, Bus::Iommu { mmu, mem });
        assert_eq!(evil.hunt(0x1000, 64, b"x"), None);
    }
}
