//! # memsim — simulated physical memory
//!
//! A paged physical address space with *real backing bytes*, so that every
//! DMA and every shadow-buffer copy in the workspace moves actual data and
//! correctness can be observed rather than asserted.
//!
//! The crate provides:
//!
//! - [`PhysMemory`] — the machine's RAM: lazily backed 4 KB frames, a
//!   per-NUMA-domain frame allocator (including contiguous multi-frame
//!   allocation for 64 KB shadow buffers), and byte-level read/write/copy.
//! - [`NumaTopology`] — the paper's dual-socket layout: cores 0–7 on
//!   domain 0, cores 8–15 on domain 1 (configurable).
//! - [`Kmalloc`] — a slab allocator in the spirit of the kernel's
//!   `kmalloc` \[13\]: it satisfies multiple small allocations from the same
//!   page. This co-location is precisely what makes page-granularity IOMMU
//!   protection unsafe (§4 "No sub-page protection") and is exercised by
//!   the `attacks` crate.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod kmalloc;
mod numa;
mod phys;

pub use addr::{Pfn, PhysAddr, PAGE_SHIFT, PAGE_SIZE};
pub use kmalloc::{Kmalloc, KmallocStats};
pub use numa::{NumaDomain, NumaTopology};
pub use phys::{MemError, MemStats, PhysMemory};
