//! A `kmalloc`-style slab allocator over [`PhysMemory`].
//!
//! Like the kernel's slab allocator \[13\], small allocations of the same
//! size class are packed together onto shared pages. Consequently a DMA
//! buffer allocated with `kmalloc` can share its page with unrelated
//! kernel data — the root cause of the paper's "no sub-page protection"
//! weakness (§4): mapping that page in the IOMMU exposes the co-located
//! data to the device.

// lint: allow(panic) — slab metadata invariants are allocator bugs, not runtime errors

use crate::{MemError, NumaDomain, Pfn, PhysAddr, PhysMemory, PAGE_SIZE};
use simcore::sync::Mutex;
use simcore::FxHashMap;
use std::sync::Arc;

/// kmalloc size classes (bytes). Requests are rounded up to a class;
/// larger requests fall back to whole pages.
const CLASSES: [usize; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Empty slab pages retained per (domain, class) before spilling back to
/// [`PhysMemory`] — like SLUB's per-cpu partial lists. One-skb-in-flight
/// workloads otherwise bounce a page through the frame allocator (free,
/// re-alloc, re-zero) on every single packet.
const EMPTY_CACHE_PAGES: usize = 8;

/// Allocation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KmallocStats {
    /// Live allocations.
    pub live: u64,
    /// Total bytes requested by live allocations.
    pub live_bytes: u64,
    /// Pages currently owned by slabs or large allocations.
    pub pages: u64,
    /// Empty slab pages retained for reuse (not counted in `pages`).
    pub cached_pages: u64,
    /// Total alloc calls.
    pub allocs: u64,
    /// Total free calls.
    pub frees: u64,
}

#[derive(Debug)]
struct Slab {
    domain: NumaDomain,
    class: usize, // index into CLASSES
    /// Bitmask of free slots (bit `i` set = slot `i` free). The largest
    /// class count is 4096/32 = 128 slots, exactly a `u128` — no heap
    /// allocation per slab page.
    free_slots: u128,
    used: u16,
}

#[derive(Debug, Clone, Copy)]
enum AllocKind {
    Slab { class: usize },
    Pages { n: u64 },
}

#[derive(Debug, Clone, Copy)]
struct AllocInfo {
    size: usize,
    kind: AllocKind,
}

#[derive(Debug, Default)]
struct Inner {
    /// Slab state by owning frame.
    slabs: FxHashMap<u64, Slab>,
    /// Frames with free slots, per (domain, class).
    partial: FxHashMap<(u16, usize), Vec<u64>>,
    /// Fully-empty slab pages retained per (domain, class), reused LIFO
    /// before asking [`PhysMemory`] for a fresh frame.
    empty: FxHashMap<(u16, usize), Vec<u64>>,
    /// Live allocations by address.
    live: FxHashMap<u64, AllocInfo>,
    stats: KmallocStats,
}

/// The slab allocator.
///
/// # Examples
///
/// ```
/// use memsim::{Kmalloc, NumaDomain, NumaTopology, PhysMemory};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(64)));
/// let km = Kmalloc::new(mem);
/// let a = km.alloc(100, NumaDomain(0))?;
/// let b = km.alloc(100, NumaDomain(0))?;
/// // Same size class ⇒ same page: the co-location behind the paper's
/// // "no sub-page protection" weakness (§4).
/// assert_eq!(a.pfn(), b.pfn());
/// km.free(a)?;
/// km.free(b)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Kmalloc {
    mem: Arc<PhysMemory>,
    inner: Mutex<Inner>,
}

impl Kmalloc {
    /// Creates an allocator over the given physical memory.
    pub fn new(mem: Arc<PhysMemory>) -> Self {
        Kmalloc {
            mem,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The underlying physical memory.
    pub fn mem(&self) -> &Arc<PhysMemory> {
        &self.mem
    }

    /// Allocates `size` bytes on `domain`.
    ///
    /// Small sizes are rounded to a slab class and may share a page with
    /// other allocations; sizes above 4 KB get dedicated whole pages.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn alloc(&self, size: usize, domain: NumaDomain) -> Result<PhysAddr, MemError> {
        assert!(size > 0, "kmalloc(0)");
        let mut inner = self.inner.lock();
        let pa = if let Some(class) = CLASSES.iter().position(|&c| c >= size) {
            self.alloc_slab_object(&mut inner, class, size, domain)?
        } else {
            let n = (size as u64).div_ceil(PAGE_SIZE as u64);
            let pfn = self.mem.alloc_frames(domain, n)?;
            inner.stats.pages += n;
            let pa = pfn.base();
            inner.live.insert(
                pa.get(),
                AllocInfo {
                    size,
                    kind: AllocKind::Pages { n },
                },
            );
            pa
        };
        inner.stats.allocs += 1;
        inner.stats.live += 1;
        inner.stats.live_bytes += size as u64;
        Ok(pa)
    }

    fn alloc_slab_object(
        &self,
        inner: &mut Inner,
        class: usize,
        size: usize,
        domain: NumaDomain,
    ) -> Result<PhysAddr, MemError> {
        let key = (domain.0, class);
        // One-skb-per-page workloads grow a fresh slab on nearly every
        // alloc, so the grow path builds the `Slab` in hand and inserts it
        // once (slot already taken) instead of insert-then-re-look-up.
        let (pfn, slot) = if let Some(&p) = inner.partial.get(&key).and_then(|v| v.last()) {
            let pfn = Pfn(p);
            let slab = inner.slabs.get_mut(&pfn.0).expect("partial slab exists");
            debug_assert!(slab.free_slots != 0, "partial slab has a slot");
            let slot = slab.free_slots.trailing_zeros() as u16;
            slab.free_slots &= slab.free_slots - 1;
            slab.used += 1;
            if slab.free_slots == 0 {
                let v = inner.partial.get_mut(&key).expect("key exists");
                v.retain(|&p| p != pfn.0);
            }
            (pfn, slot)
        } else {
            // Grow: a cached empty page if one exists (no frame-allocator
            // round trip, no re-zero), else a fresh frame; slot 0 is handed
            // out immediately.
            let pfn = if let Some(p) = inner.empty.get_mut(&key).and_then(Vec::pop) {
                inner.stats.cached_pages -= 1;
                Pfn(p)
            } else {
                self.mem.alloc_frame(domain)?
            };
            inner.stats.pages += 1;
            let slots = (PAGE_SIZE / CLASSES[class]) as u32;
            let free_slots = if slots == 128 {
                u128::MAX
            } else {
                (1u128 << slots) - 1
            };
            let slab = Slab {
                domain,
                class,
                free_slots: free_slots & !1,
                used: 1,
            };
            let still_partial = slab.free_slots != 0;
            inner.slabs.insert(pfn.0, slab);
            if still_partial {
                inner.partial.entry(key).or_default().push(pfn.0);
            }
            (pfn, 0)
        };
        let pa = pfn.base().add(slot as u64 * CLASSES[class] as u64);
        inner.live.insert(
            pa.get(),
            AllocInfo {
                size,
                kind: AllocKind::Slab { class },
            },
        );
        Ok(pa)
    }

    /// Frees the allocation at `pa`, returning its requested size.
    ///
    /// The freed bytes are poisoned with `0x6b` (like the kernel's SLAB
    /// poisoning) so use-after-free reads are detectable in tests and
    /// attack scenarios. A page whose last object is freed is retained on
    /// a small per-(domain, class) cache — like SLUB's per-cpu partial
    /// lists — and reused by the next allocation of that class; once the
    /// cache is full the page is returned to [`PhysMemory`], which zeroes
    /// frames on reallocation. [`Kmalloc::reap`] releases the cache.
    pub fn free(&self, pa: PhysAddr) -> Result<usize, MemError> {
        let mut inner = self.inner.lock();
        let info = inner
            .live
            .remove(&pa.get())
            .ok_or(MemError::BadFree(pa.pfn()))?;
        inner.stats.frees += 1;
        inner.stats.live -= 1;
        inner.stats.live_bytes -= info.size as u64;
        match info.kind {
            AllocKind::Pages { n } => {
                self.mem.free_frames(pa.pfn(), n)?;
                inner.stats.pages -= n;
            }
            AllocKind::Slab { class } => {
                let pfn = pa.pfn();
                // Remove-first: the one-skb-per-page hot path empties the
                // slab on this free, so taking the entry out now saves the
                // second hash lookup; a still-used slab is reinserted.
                let mut slab = inner.slabs.remove(&pfn.0).expect("slab exists for object");
                debug_assert_eq!(slab.class, class, "object freed into wrong class");
                let slot = (pa.page_offset() / CLASSES[class]) as u32;
                let was_full = slab.free_slots == 0;
                slab.free_slots |= 1u128 << slot;
                slab.used -= 1;
                let key = (slab.domain.0, class);
                if slab.used == 0 {
                    if let Some(v) = inner.partial.get_mut(&key) {
                        v.retain(|&p| p != pfn.0);
                    }
                    inner.stats.pages -= 1;
                    let cache = inner.empty.entry(key).or_default();
                    if cache.len() < EMPTY_CACHE_PAGES {
                        // Retain the empty page for the next alloc of this
                        // class. The page is reused *without* re-zeroing, so
                        // the freed slot must carry poison for use-after-free
                        // detection (every other slot already does, from its
                        // own free).
                        static POISON: [u8; 4096] = [0x6bu8; 4096];
                        self.mem.write(pa, &POISON[..CLASSES[class]])?;
                        cache.push(pfn.0);
                        inner.stats.cached_pages += 1;
                    } else {
                        // Cache full: back to PhysMemory, which zeroes
                        // frames on reallocation (no poison needed).
                        self.mem.free_frames(pfn, 1)?;
                    }
                } else {
                    inner.slabs.insert(pfn.0, slab);
                    // Poison the released slot (the page survives, so a
                    // use-after-free read must see 0x6b, not stale data).
                    static POISON: [u8; 4096] = [0x6bu8; 4096];
                    self.mem.write(pa, &POISON[..CLASSES[class]])?;
                    if was_full {
                        inner.partial.entry(key).or_default().push(pfn.0);
                    }
                }
            }
        }
        Ok(info.size)
    }

    /// Live allocations co-located on the same page as `pa`, excluding
    /// `pa` itself. Each entry is `(address, requested size)`.
    ///
    /// Used by the attack scenarios to find victim data sharing a page with
    /// a DMA buffer.
    pub fn neighbors_on_page(&self, pa: PhysAddr) -> Vec<(PhysAddr, usize)> {
        let inner = self.inner.lock();
        let pfn = pa.pfn();
        let mut out: Vec<(PhysAddr, usize)> = inner
            .live
            .iter()
            .filter(|(&a, _)| PhysAddr(a).pfn() == pfn && a != pa.get())
            .map(|(&a, info)| (PhysAddr(a), info.size))
            .collect();
        out.sort_by_key(|(a, _)| a.get());
        out
    }

    /// The requested size of the live allocation at `pa`, if any.
    pub fn size_of(&self, pa: PhysAddr) -> Option<usize> {
        self.inner.lock().live.get(&pa.get()).map(|i| i.size)
    }

    /// Releases all cached empty slab pages back to [`PhysMemory`],
    /// returning how many were freed — the slab-shrinker path, for
    /// memory-pressure scenarios and teardown hygiene.
    pub fn reap(&self) -> u64 {
        let mut inner = self.inner.lock();
        let pages: Vec<u64> = inner.empty.values_mut().flat_map(std::mem::take).collect();
        let n = pages.len() as u64;
        for p in pages {
            self.mem.free_frames(Pfn(p), 1).expect("reap cached page");
        }
        inner.stats.cached_pages -= n;
        n
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> KmallocStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NumaTopology;

    fn km(frames: u64) -> Kmalloc {
        Kmalloc::new(Arc::new(PhysMemory::new(NumaTopology::tiny(frames))))
    }

    const D0: NumaDomain = NumaDomain(0);

    #[test]
    fn small_allocations_share_a_page() {
        let k = km(16);
        let a = k.alloc(100, D0).unwrap(); // class 128
        let b = k.alloc(128, D0).unwrap();
        assert_eq!(a.pfn(), b.pfn(), "same class objects pack onto one page");
        assert_ne!(a, b);
        // They are visible to each other via neighbors_on_page.
        let n = k.neighbors_on_page(a);
        assert_eq!(n, vec![(b, 128)]);
    }

    #[test]
    fn different_classes_use_different_pages() {
        let k = km(16);
        let a = k.alloc(100, D0).unwrap(); // class 128
        let b = k.alloc(1000, D0).unwrap(); // class 1024
        assert_ne!(a.pfn(), b.pfn());
    }

    #[test]
    fn objects_do_not_overlap() {
        let k = km(64);
        let mut addrs = Vec::new();
        for _ in 0..100 {
            addrs.push((k.alloc(64, D0).unwrap(), 64usize));
        }
        addrs.sort_by_key(|(a, _)| a.get());
        for w in addrs.windows(2) {
            assert!(w[0].0.get() + w[0].1 as u64 <= w[1].0.get(), "overlap");
        }
    }

    #[test]
    fn writes_to_one_object_do_not_clobber_neighbors() {
        let k = km(16);
        let a = k.alloc(64, D0).unwrap();
        let b = k.alloc(64, D0).unwrap();
        k.mem().write(b, &[7u8; 64]).unwrap();
        k.mem().write(a, &[9u8; 64]).unwrap();
        assert_eq!(k.mem().read_vec(b, 64).unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn large_allocations_get_dedicated_pages() {
        let k = km(32);
        let a = k.alloc(10_000, D0).unwrap(); // 3 pages
        assert!(a.is_page_aligned());
        assert!(k.neighbors_on_page(a).is_empty());
        assert_eq!(k.size_of(a), Some(10_000));
        assert_eq!(k.free(a).unwrap(), 10_000);
    }

    #[test]
    fn free_returns_slot_for_reuse() {
        let k = km(4);
        let a = k.alloc(4096, D0).unwrap(); // class 4096: one object per page
        k.free(a).unwrap();
        let b = k.alloc(4096, D0).unwrap();
        // Frame freed and reallocated (possibly same one).
        assert_eq!(k.stats().live, 1);
        k.free(b).unwrap();
        assert_eq!(k.stats().live, 0);
        assert_eq!(k.stats().pages, 0);
    }

    #[test]
    fn freed_objects_are_poisoned() {
        let k = km(16);
        let a = k.alloc(64, D0).unwrap();
        let _b = k.alloc(64, D0).unwrap(); // keep slab alive
        k.mem().write(a, b"sensitive-data!!").unwrap();
        k.free(a).unwrap();
        // The slab page is still allocated; the freed slot is poisoned.
        assert_eq!(k.mem().read_vec(a, 4).unwrap(), vec![0x6b; 4]);
    }

    #[test]
    fn double_free_detected() {
        let k = km(16);
        let a = k.alloc(64, D0).unwrap();
        let _b = k.alloc(64, D0).unwrap();
        k.free(a).unwrap();
        assert!(matches!(k.free(a), Err(MemError::BadFree(_))));
    }

    #[test]
    fn empty_slab_page_is_cached_then_reaped() {
        let k = km(4);
        let a = k.alloc(2048, D0).unwrap();
        let b = k.alloc(2048, D0).unwrap();
        assert_eq!(a.pfn(), b.pfn());
        assert_eq!(k.stats().pages, 1);
        k.free(a).unwrap();
        assert_eq!(k.stats().pages, 1, "page kept while b lives");
        k.free(b).unwrap();
        assert_eq!(k.stats().pages, 0, "page leaves the slab when it empties");
        assert_eq!(k.stats().cached_pages, 1, "…onto the empty-page cache");
        assert!(
            k.mem().is_allocated(a.pfn()),
            "cached page still owns its frame"
        );
        assert_eq!(k.reap(), 1);
        assert_eq!(k.stats().cached_pages, 0);
        assert!(
            !k.mem().is_allocated(a.pfn()),
            "reap returns it to PhysMemory"
        );
    }

    #[test]
    fn cached_empty_page_is_reused_without_phys_round_trip() {
        let k = km(4);
        let a = k.alloc(2048, D0).unwrap();
        k.free(a).unwrap();
        assert_eq!(k.stats().cached_pages, 1);
        let b = k.alloc(2048, D0).unwrap();
        assert_eq!(b.pfn(), a.pfn(), "next alloc reuses the cached page");
        assert_eq!(k.stats().cached_pages, 0);
        k.free(b).unwrap();
    }

    #[test]
    fn emptied_page_slots_are_poisoned_on_the_cache() {
        let k = km(4);
        let a = k.alloc(2048, D0).unwrap();
        k.mem().write(a, b"sensitive-data!!").unwrap();
        k.free(a).unwrap();
        // The page sits on the empty cache with its frame still allocated;
        // a use-after-free read must see poison, not the old payload.
        assert_eq!(k.mem().read_vec(a, 4).unwrap(), vec![0x6b; 4]);
    }

    #[test]
    fn empty_cache_spills_to_phys_when_full() {
        let k = km(64);
        // Fill more than EMPTY_CACHE_PAGES single-object pages, then free
        // them all: the overflow must go back to PhysMemory.
        let n = EMPTY_CACHE_PAGES + 3;
        let addrs: Vec<_> = (0..n).map(|_| k.alloc(4096, D0).unwrap()).collect();
        for a in &addrs {
            k.free(*a).unwrap();
        }
        let st = k.stats();
        assert_eq!(st.pages, 0);
        assert_eq!(st.cached_pages, EMPTY_CACHE_PAGES as u64);
        let spilled = addrs
            .iter()
            .filter(|a| !k.mem().is_allocated(a.pfn()))
            .count();
        assert_eq!(spilled, 3, "overflow pages released to PhysMemory");
    }

    #[test]
    fn slab_refills_after_page_fills() {
        let k = km(64);
        // 4096/2048 = 2 slots per page; allocate 5 → 3 pages.
        let addrs: Vec<_> = (0..5).map(|_| k.alloc(2048, D0).unwrap()).collect();
        let pages: std::collections::HashSet<_> = addrs.iter().map(|a| a.pfn()).collect();
        assert_eq!(pages.len(), 3);
    }

    #[test]
    fn stats_track_bytes() {
        let k = km(16);
        let a = k.alloc(100, D0).unwrap();
        let b = k.alloc(200, D0).unwrap();
        assert_eq!(k.stats().live_bytes, 300);
        k.free(a).unwrap();
        k.free(b).unwrap();
        assert_eq!(k.stats().live_bytes, 0);
        assert_eq!(k.stats().allocs, 2);
        assert_eq!(k.stats().frees, 2);
    }

    #[test]
    #[should_panic(expected = "kmalloc(0)")]
    fn zero_alloc_panics() {
        let _ = km(4).alloc(0, D0);
    }
}
