//! The simulated physical memory: frames, allocator, byte access.

use crate::{NumaDomain, NumaTopology, Pfn, PhysAddr, PAGE_SIZE};
use simcore::sync::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Errors from physical memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No free frames (of the requested contiguity) in the domain.
    OutOfMemory {
        /// The domain the allocation targeted.
        domain: NumaDomain,
        /// Contiguous frames requested.
        frames: u64,
    },
    /// An access touched a frame that is not allocated.
    Unallocated(Pfn),
    /// An access fell outside the physical address space.
    OutOfBounds(PhysAddr),
    /// A free targeted a frame that was not allocated.
    BadFree(Pfn),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { domain, frames } => {
                write!(f, "out of memory: {frames} contiguous frames on {domain}")
            }
            MemError::Unallocated(pfn) => write!(f, "access to unallocated frame {pfn}"),
            MemError::OutOfBounds(pa) => write!(f, "access beyond physical memory at {pa}"),
            MemError::BadFree(pfn) => write!(f, "free of unallocated frame {pfn}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Frame-allocation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Frames currently allocated.
    pub allocated_frames: u64,
    /// High-water mark of allocated frames.
    pub peak_frames: u64,
    /// Total allocation calls.
    pub allocs: u64,
    /// Total free calls.
    pub frees: u64,
}

#[derive(Debug, Default)]
struct DomainAllocator {
    /// Free runs: start pfn -> run length, coalesced on free.
    runs: BTreeMap<u64, u64>,
}

impl DomainAllocator {
    fn new(start: Pfn, end: Pfn) -> Self {
        let mut runs = BTreeMap::new();
        if end.0 > start.0 {
            runs.insert(start.0, end.0 - start.0);
        }
        DomainAllocator { runs }
    }

    fn alloc(&mut self, n: u64) -> Option<Pfn> {
        let (&start, &len) = self.runs.iter().find(|(_, &len)| len >= n)?;
        self.runs.remove(&start);
        if len > n {
            self.runs.insert(start + n, len - n);
        }
        Some(Pfn(start))
    }

    fn free(&mut self, pfn: Pfn, n: u64) {
        let start = pfn.0;
        let end = start + n;
        // Coalesce with the predecessor and successor runs when adjacent.
        let mut new_start = start;
        let mut new_len = n;
        if let Some((&ps, &pl)) = self.runs.range(..start).next_back() {
            if ps + pl == start {
                self.runs.remove(&ps);
                new_start = ps;
                new_len += pl;
            }
        }
        if let Some(&sl) = self.runs.get(&end) {
            self.runs.remove(&end);
            new_len += sl;
        }
        self.runs.insert(new_start, new_len);
    }
}

#[derive(Debug)]
struct MemInner {
    /// Backing bytes of allocated frames, created zeroed on allocation.
    frames: HashMap<u64, Box<[u8]>>,
    domains: Vec<DomainAllocator>,
    stats: MemStats,
}

/// The machine's physical memory.
///
/// Thread-safe (a single internal lock) so it can be shared between the OS
/// side and device models, and used from real threads in stress tests. All
/// byte accesses require the touched frames to be allocated; devices probing
/// unallocated memory get [`MemError::Unallocated`].
pub struct PhysMemory {
    topology: NumaTopology,
    inner: Mutex<MemInner>,
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PhysMemory")
            .field("topology", &self.topology)
            .field("allocated_frames", &inner.stats.allocated_frames)
            .finish()
    }
}

impl PhysMemory {
    /// Creates physical memory with the given topology.
    pub fn new(topology: NumaTopology) -> Self {
        let domains = (0..topology.domains())
            .map(|d| {
                let (s, e) = topology.frame_range(NumaDomain(d));
                DomainAllocator::new(s, e)
            })
            .collect();
        PhysMemory {
            topology,
            inner: Mutex::new(MemInner {
                frames: HashMap::new(),
                domains,
                stats: MemStats::default(),
            }),
        }
    }

    /// The machine topology.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Allocates one zeroed frame on `domain`.
    pub fn alloc_frame(&self, domain: NumaDomain) -> Result<Pfn, MemError> {
        self.alloc_frames(domain, 1)
    }

    /// Allocates `n` physically contiguous zeroed frames on `domain`,
    /// returning the first.
    pub fn alloc_frames(&self, domain: NumaDomain, n: u64) -> Result<Pfn, MemError> {
        assert!(n > 0, "zero-frame allocation");
        let mut inner = self.inner.lock();
        let alloc = inner
            .domains
            .get_mut(domain.index())
            .unwrap_or_else(|| panic!("no such domain {domain}"))
            .alloc(n);
        let pfn = alloc.ok_or(MemError::OutOfMemory { domain, frames: n })?;
        for i in 0..n {
            let prev = inner
                .frames
                .insert(pfn.0 + i, vec![0u8; PAGE_SIZE].into_boxed_slice());
            debug_assert!(prev.is_none(), "frame double-allocated");
        }
        inner.stats.allocs += 1;
        inner.stats.allocated_frames += n;
        inner.stats.peak_frames = inner.stats.peak_frames.max(inner.stats.allocated_frames);
        Ok(pfn)
    }

    /// Frees `n` contiguous frames starting at `pfn`.
    pub fn free_frames(&self, pfn: Pfn, n: u64) -> Result<(), MemError> {
        assert!(n > 0, "zero-frame free");
        let mut inner = self.inner.lock();
        for i in 0..n {
            if !inner.frames.contains_key(&(pfn.0 + i)) {
                return Err(MemError::BadFree(Pfn(pfn.0 + i)));
            }
        }
        for i in 0..n {
            inner.frames.remove(&(pfn.0 + i));
        }
        let domain = self.topology.domain_of_pfn(pfn);
        inner.domains[domain.index()].free(pfn, n);
        inner.stats.frees += 1;
        inner.stats.allocated_frames -= n;
        Ok(())
    }

    /// Whether a frame is currently allocated.
    pub fn is_allocated(&self, pfn: Pfn) -> bool {
        self.inner.lock().frames.contains_key(&pfn.0)
    }

    /// Reads `buf.len()` bytes starting at `pa` (may cross frames).
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let inner = self.inner.lock();
        let mut off = 0usize;
        while off < buf.len() {
            let cur = pa.add(off as u64);
            self.check_bounds(cur)?;
            let frame = inner
                .frames
                .get(&cur.pfn().0)
                .ok_or(MemError::Unallocated(cur.pfn()))?;
            let in_page = cur.page_offset();
            let take = (PAGE_SIZE - in_page).min(buf.len() - off);
            buf[off..off + take].copy_from_slice(&frame[in_page..in_page + take]);
            off += take;
        }
        Ok(())
    }

    /// Writes `data` starting at `pa` (may cross frames).
    pub fn write(&self, pa: PhysAddr, data: &[u8]) -> Result<(), MemError> {
        let mut inner = self.inner.lock();
        let mut off = 0usize;
        while off < data.len() {
            let cur = pa.add(off as u64);
            self.check_bounds(cur)?;
            let frame = inner
                .frames
                .get_mut(&cur.pfn().0)
                .ok_or(MemError::Unallocated(cur.pfn()))?;
            let in_page = cur.page_offset();
            let take = (PAGE_SIZE - in_page).min(data.len() - off);
            frame[in_page..in_page + take].copy_from_slice(&data[off..off + take]);
            off += take;
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` within physical memory (the
    /// real data movement behind every shadow-buffer copy).
    pub fn copy(&self, src: PhysAddr, dst: PhysAddr, len: usize) -> Result<(), MemError> {
        let mut chunk = [0u8; PAGE_SIZE];
        let mut off = 0usize;
        while off < len {
            let take = PAGE_SIZE.min(len - off);
            self.read(src.add(off as u64), &mut chunk[..take])?;
            self.write(dst.add(off as u64), &chunk[..take])?;
            off += take;
        }
        Ok(())
    }

    /// Fills `len` bytes at `pa` with `byte`.
    pub fn fill(&self, pa: PhysAddr, byte: u8, len: usize) -> Result<(), MemError> {
        let chunk = [byte; PAGE_SIZE];
        let mut off = 0usize;
        while off < len {
            let take = PAGE_SIZE.min(len - off);
            self.write(pa.add(off as u64), &chunk[..take])?;
            off += take;
        }
        Ok(())
    }

    /// Reads `len` bytes at `pa` into a fresh vector.
    pub fn read_vec(&self, pa: PhysAddr, len: usize) -> Result<Vec<u8>, MemError> {
        let mut v = vec![0u8; len];
        self.read(pa, &mut v)?;
        Ok(v)
    }

    /// Allocation statistics snapshot.
    pub fn stats(&self) -> MemStats {
        self.inner.lock().stats
    }

    fn check_bounds(&self, pa: PhysAddr) -> Result<(), MemError> {
        if pa.pfn().0 >= self.topology.total_frames() {
            Err(MemError::OutOfBounds(pa))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(frames: u64) -> PhysMemory {
        PhysMemory::new(NumaTopology::tiny(frames))
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let m = mem(16);
        let pfn = m.alloc_frame(NumaDomain(0)).unwrap();
        let pa = pfn.base().add(100);
        m.write(pa, b"hello world").unwrap();
        assert_eq!(m.read_vec(pa, 11).unwrap(), b"hello world");
    }

    #[test]
    fn frames_start_zeroed() {
        let m = mem(4);
        let pfn = m.alloc_frame(NumaDomain(0)).unwrap();
        assert_eq!(
            m.read_vec(pfn.base(), PAGE_SIZE).unwrap(),
            vec![0u8; PAGE_SIZE]
        );
    }

    #[test]
    fn cross_frame_access() {
        let m = mem(16);
        let pfn = m.alloc_frames(NumaDomain(0), 2).unwrap();
        let pa = pfn.base().add(PAGE_SIZE as u64 - 3);
        m.write(pa, b"abcdef").unwrap();
        assert_eq!(m.read_vec(pa, 6).unwrap(), b"abcdef");
    }

    #[test]
    fn unallocated_access_fails() {
        let m = mem(16);
        let err = m.read_vec(PhysAddr(0), 1).unwrap_err();
        assert_eq!(err, MemError::Unallocated(Pfn(0)));
        let err = m.write(PhysAddr(4096), b"x").unwrap_err();
        assert_eq!(err, MemError::Unallocated(Pfn(1)));
    }

    #[test]
    fn out_of_bounds_access_fails() {
        let m = mem(2);
        let err = m.read_vec(PhysAddr(3 * 4096), 1).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }

    #[test]
    fn contiguous_allocation_is_contiguous() {
        let m = mem(32);
        let a = m.alloc_frames(NumaDomain(0), 16).unwrap();
        // The run must be fully allocated.
        for i in 0..16 {
            assert!(m.is_allocated(a.add(i)));
        }
        // Write across the whole 64 KB region.
        let data = vec![0x5au8; 16 * PAGE_SIZE];
        m.write(a.base(), &data).unwrap();
        assert_eq!(m.read_vec(a.base(), data.len()).unwrap(), data);
    }

    #[test]
    fn oom_when_no_contiguous_run() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 3).unwrap(); // [0,3)
        let _b = m.alloc_frames(NumaDomain(0), 2).unwrap(); // [3,5)
        m.free_frames(a, 3).unwrap(); // free [0,3)
                                      // 3 + 3 free frames exist ([0,3) and [5,8)) but not 4 contiguous... wait,
                                      // [5,8) is 3 frames. Ask for 4 contiguous: must fail.
        let err = m.alloc_frames(NumaDomain(0), 4).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { frames: 4, .. }));
        // 3 contiguous still works.
        assert!(m.alloc_frames(NumaDomain(0), 3).is_ok());
    }

    #[test]
    fn free_coalesces_runs() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 8).unwrap();
        m.free_frames(a, 4).unwrap();
        m.free_frames(a.add(4), 4).unwrap();
        // After coalescing we can allocate all 8 again.
        assert!(m.alloc_frames(NumaDomain(0), 8).is_ok());
    }

    #[test]
    fn double_free_fails() {
        let m = mem(4);
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        m.free_frames(a, 1).unwrap();
        assert_eq!(m.free_frames(a, 1).unwrap_err(), MemError::BadFree(a));
    }

    #[test]
    fn freed_frames_lose_contents() {
        let m = mem(4);
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        m.write(a.base(), b"secret").unwrap();
        m.free_frames(a, 1).unwrap();
        let b = m.alloc_frame(NumaDomain(0)).unwrap();
        assert_eq!(b, a, "allocator reuses the freed frame");
        // Reallocated frames are zeroed.
        assert_eq!(m.read_vec(b.base(), 6).unwrap(), vec![0u8; 6]);
    }

    #[test]
    fn numa_domains_are_disjoint() {
        let m = PhysMemory::new(NumaTopology::new(2, 2, 8));
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        let b = m.alloc_frame(NumaDomain(1)).unwrap();
        assert_eq!(m.topology().domain_of_pfn(a), NumaDomain(0));
        assert_eq!(m.topology().domain_of_pfn(b), NumaDomain(1));
    }

    #[test]
    fn stats_track_allocation() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 4).unwrap();
        assert_eq!(m.stats().allocated_frames, 4);
        assert_eq!(m.stats().peak_frames, 4);
        m.free_frames(a, 4).unwrap();
        assert_eq!(m.stats().allocated_frames, 0);
        assert_eq!(m.stats().peak_frames, 4);
    }

    #[test]
    fn copy_moves_real_bytes() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 2).unwrap();
        let b = m.alloc_frames(NumaDomain(0), 2).unwrap();
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        m.write(a.base(), &data).unwrap();
        m.copy(a.base(), b.base(), data.len()).unwrap();
        assert_eq!(m.read_vec(b.base(), data.len()).unwrap(), data);
    }

    #[test]
    fn fill_works() {
        let m = mem(4);
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        m.fill(a.base().add(10), 0xee, 100).unwrap();
        assert_eq!(m.read_vec(a.base().add(10), 100).unwrap(), vec![0xee; 100]);
        assert_eq!(m.read_vec(a.base(), 10).unwrap(), vec![0u8; 10]);
    }
}
