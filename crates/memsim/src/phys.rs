//! The simulated physical memory: frames, allocator, byte access.

use crate::{NumaDomain, NumaTopology, Pfn, PhysAddr, PAGE_SIZE};
use simcore::sync::Mutex;
use std::fmt;

/// Errors from physical memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No free frames (of the requested contiguity) in the domain.
    OutOfMemory {
        /// The domain the allocation targeted.
        domain: NumaDomain,
        /// Contiguous frames requested.
        frames: u64,
    },
    /// An access touched a frame that is not allocated.
    Unallocated(Pfn),
    /// An access fell outside the physical address space.
    OutOfBounds(PhysAddr),
    /// A free targeted a frame that was not allocated.
    BadFree(Pfn),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { domain, frames } => {
                write!(f, "out of memory: {frames} contiguous frames on {domain}")
            }
            MemError::Unallocated(pfn) => write!(f, "access to unallocated frame {pfn}"),
            MemError::OutOfBounds(pa) => write!(f, "access beyond physical memory at {pa}"),
            MemError::BadFree(pfn) => write!(f, "free of unallocated frame {pfn}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Frame-allocation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Frames currently allocated.
    pub allocated_frames: u64,
    /// High-water mark of allocated frames.
    pub peak_frames: u64,
    /// Total allocation calls.
    pub allocs: u64,
    /// Total free calls.
    pub frees: u64,
}

#[derive(Debug, Default)]
struct DomainAllocator {
    /// Free runs as `(start pfn, length)`, sorted by start and coalesced
    /// on free. Steady-state run counts are tiny (long-lived allocations
    /// plus one hole churned by the packet loop), so a sorted vec beats a
    /// BTreeMap on every operation while keeping the identical first-fit
    /// order — which is observable through reallocated frame numbers and
    /// must not change.
    runs: Vec<(u64, u64)>,
}

impl DomainAllocator {
    fn new(start: Pfn, end: Pfn) -> Self {
        let mut runs = Vec::new();
        if end.0 > start.0 {
            runs.push((start.0, end.0 - start.0));
        }
        DomainAllocator { runs }
    }

    fn alloc(&mut self, n: u64) -> Option<Pfn> {
        let i = self.runs.iter().position(|&(_, len)| len >= n)?;
        let (start, len) = self.runs[i];
        if len > n {
            self.runs[i] = (start + n, len - n);
        } else {
            self.runs.remove(i);
        }
        Some(Pfn(start))
    }

    fn free(&mut self, pfn: Pfn, n: u64) {
        let start = pfn.0;
        let end = start + n;
        // Coalesce with the predecessor and successor runs when adjacent.
        let i = self.runs.partition_point(|&(s, _)| s < start);
        let merge_prev = i > 0 && {
            let (ps, pl) = self.runs[i - 1];
            ps + pl == start
        };
        let merge_next = i < self.runs.len() && self.runs[i].0 == end;
        match (merge_prev, merge_next) {
            (true, true) => {
                let nl = self.runs[i].1;
                self.runs[i - 1].1 += n + nl;
                self.runs.remove(i);
            }
            (true, false) => self.runs[i - 1].1 += n,
            (false, true) => self.runs[i] = (start, n + self.runs[i].1),
            (false, false) => self.runs.insert(i, (start, n)),
        }
    }
}

/// Frames per second-level chunk of the frame table.
const CHUNK_BITS: u32 = 9;
const CHUNK: usize = 1 << CHUNK_BITS;

/// One allocated frame's backing bytes plus a dirty high-water mark:
/// the largest `offset + len` any write has touched since the bytes were
/// last all-zero. Recycling zeroes only that prefix instead of the whole
/// page — an MTU-sized skb dirties ~1.5 KB of its 4 KB frame, so the
/// per-packet alloc/free cycle re-zeroes ~1.5 KB, not 4 KB.
#[derive(Debug)]
struct Frame {
    data: Box<[u8]>,
    dirty: usize,
}

impl Frame {
    fn zeroed() -> Self {
        Frame {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            dirty: 0,
        }
    }

    /// Restores the all-zero state (cheap when little was written).
    fn rezero(&mut self) {
        self.data[..self.dirty].fill(0);
        self.dirty = 0;
    }
}

/// Backing store for allocated frames: a two-level dense table (chunks
/// of 512 frame slots, allocated on demand), so the per-byte-access
/// frame lookup is two array indexes instead of a hash. Frame numbers
/// are dense by construction (the NUMA ranges are contiguous), which a
/// hash map can't exploit.
#[derive(Debug, Default)]
struct FrameTable {
    chunks: Vec<Option<Box<[Option<Frame>]>>>,
}

impl FrameTable {
    fn get(&self, pfn: u64) -> Option<&[u8]> {
        self.chunks
            .get((pfn >> CHUNK_BITS) as usize)?
            .as_ref()?
            .get(pfn as usize & (CHUNK - 1))?
            .as_ref()
            .map(|f| &*f.data)
    }

    fn get_mut(&mut self, pfn: u64) -> Option<&mut Frame> {
        self.chunks
            .get_mut((pfn >> CHUNK_BITS) as usize)?
            .as_mut()?
            .get_mut(pfn as usize & (CHUNK - 1))?
            .as_mut()
    }

    fn contains(&self, pfn: u64) -> bool {
        self.get(pfn).is_some()
    }

    /// Installs `frame` at `pfn`, returning the slot's previous content.
    fn insert(&mut self, pfn: u64, frame: Frame) -> Option<Frame> {
        let ci = (pfn >> CHUNK_BITS) as usize;
        if ci >= self.chunks.len() {
            self.chunks.resize_with(ci + 1, || None);
        }
        let chunk = self.chunks[ci].get_or_insert_with(|| (0..CHUNK).map(|_| None).collect());
        chunk[pfn as usize & (CHUNK - 1)].replace(frame)
    }

    fn remove(&mut self, pfn: u64) -> Option<Frame> {
        self.chunks
            .get_mut((pfn >> CHUNK_BITS) as usize)?
            .as_mut()?
            .get_mut(pfn as usize & (CHUNK - 1))?
            .take()
    }
}

/// Freed frame boxes kept for reuse (bounded at 1 MB of backing store);
/// reused frames are re-zeroed, preserving "frames start zeroed".
const RECYCLE_CAP: usize = 256;

/// Frame-store shards. Byte accesses lock only the shard owning the
/// touched frame, so concurrently streaming cores (which touch disjoint
/// skb and shadow frames) never serialize on one global lock. The low
/// pfn bits pick the shard — adjacent frames spread across shards — and
/// each shard's table is indexed by `pfn >> SHARD_BITS`, keeping its
/// two-level chunks dense.
const SHARD_BITS: u32 = 6;
const SHARDS: usize = 1 << SHARD_BITS;

fn shard_key(pfn: u64) -> (usize, u64) {
    ((pfn & (SHARDS as u64 - 1)) as usize, pfn >> SHARD_BITS)
}

#[derive(Debug)]
struct AllocInner {
    /// Freed frames awaiting reuse (contents stale; re-zeroed on alloc).
    recycled: Vec<Frame>,
    domains: Vec<DomainAllocator>,
    stats: MemStats,
}

/// The machine's physical memory.
///
/// Thread-safe — allocator state sits behind one lock, frame contents
/// behind per-shard locks — so it can be shared between the OS side and
/// device models, and used from real threads in stress tests. All byte
/// accesses require the touched frames to be allocated; devices probing
/// unallocated memory get [`MemError::Unallocated`].
pub struct PhysMemory {
    topology: NumaTopology,
    shards: Vec<Mutex<FrameTable>>,
    alloc: Mutex<AllocInner>,
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.alloc.lock();
        f.debug_struct("PhysMemory")
            .field("topology", &self.topology)
            .field("allocated_frames", &inner.stats.allocated_frames)
            .finish()
    }
}

impl PhysMemory {
    /// Creates physical memory with the given topology.
    pub fn new(topology: NumaTopology) -> Self {
        let domains = (0..topology.domains())
            .map(|d| {
                let (s, e) = topology.frame_range(NumaDomain(d));
                DomainAllocator::new(s, e)
            })
            .collect();
        PhysMemory {
            topology,
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FrameTable::default()))
                .collect(),
            alloc: Mutex::new(AllocInner {
                recycled: Vec::new(),
                domains,
                stats: MemStats::default(),
            }),
        }
    }

    /// The machine topology.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Allocates one zeroed frame on `domain`.
    pub fn alloc_frame(&self, domain: NumaDomain) -> Result<Pfn, MemError> {
        self.alloc_frames(domain, 1)
    }

    /// Allocates `n` physically contiguous zeroed frames on `domain`,
    /// returning the first.
    pub fn alloc_frames(&self, domain: NumaDomain, n: u64) -> Result<Pfn, MemError> {
        assert!(n > 0, "zero-frame allocation");
        if n == 1 {
            // Per-packet fast path: reuse one recycled frame box without
            // the `split_off` heap allocation of the general path.
            let (pfn, recycled) = {
                let mut inner = self.alloc.lock();
                let alloc = inner
                    .domains
                    .get_mut(domain.index())
                    .unwrap_or_else(|| panic!("no such domain {domain}"))
                    .alloc(1);
                let pfn = alloc.ok_or(MemError::OutOfMemory { domain, frames: 1 })?;
                let recycled = inner.recycled.pop();
                inner.stats.allocs += 1;
                inner.stats.allocated_frames += 1;
                inner.stats.peak_frames = inner.stats.peak_frames.max(inner.stats.allocated_frames);
                (pfn, recycled)
            };
            let frame = match recycled {
                Some(mut f) => {
                    f.rezero();
                    f
                }
                None => Frame::zeroed(),
            };
            let (s, key) = shard_key(pfn.0);
            let prev = self.shards[s].lock().insert(key, frame);
            debug_assert!(prev.is_none(), "frame double-allocated");
            return Ok(pfn);
        }
        let (pfn, mut pool) = {
            let mut inner = self.alloc.lock();
            let alloc = inner
                .domains
                .get_mut(domain.index())
                .unwrap_or_else(|| panic!("no such domain {domain}"))
                .alloc(n);
            let pfn = alloc.ok_or(MemError::OutOfMemory { domain, frames: n })?;
            let keep = inner.recycled.len().saturating_sub(n as usize);
            let pool = inner.recycled.split_off(keep);
            inner.stats.allocs += 1;
            inner.stats.allocated_frames += n;
            inner.stats.peak_frames = inner.stats.peak_frames.max(inner.stats.allocated_frames);
            (pfn, pool)
        };
        // The allocated run is exclusively ours now; install the frames
        // without holding the allocator lock.
        for i in 0..n {
            let frame = match pool.pop() {
                Some(mut f) => {
                    f.rezero();
                    f
                }
                None => Frame::zeroed(),
            };
            let (s, key) = shard_key(pfn.0 + i);
            let prev = self.shards[s].lock().insert(key, frame);
            debug_assert!(prev.is_none(), "frame double-allocated");
        }
        Ok(pfn)
    }

    /// Frees `n` contiguous frames starting at `pfn`.
    pub fn free_frames(&self, pfn: Pfn, n: u64) -> Result<(), MemError> {
        assert!(n > 0, "zero-frame free");
        if n == 1 {
            // Per-packet fast path: no pre-pass, no staging vector.
            let (s, key) = shard_key(pfn.0);
            let frame = self.shards[s]
                .lock()
                .remove(key)
                .ok_or(MemError::BadFree(pfn))?;
            let domain = self.topology.domain_of_pfn(pfn);
            let mut inner = self.alloc.lock();
            inner.domains[domain.index()].free(pfn, 1);
            inner.stats.frees += 1;
            inner.stats.allocated_frames -= 1;
            if inner.recycled.len() < RECYCLE_CAP {
                inner.recycled.push(frame);
            }
            return Ok(());
        }
        {
            // Pre-check so a bad free of a partially-allocated run frees
            // nothing at all.
            for i in 0..n {
                let (s, key) = shard_key(pfn.0 + i);
                if !self.shards[s].lock().contains(key) {
                    return Err(MemError::BadFree(Pfn(pfn.0 + i)));
                }
            }
        }
        let mut freed = Vec::with_capacity(n.min(RECYCLE_CAP as u64) as usize);
        for i in 0..n {
            let (s, key) = shard_key(pfn.0 + i);
            match self.shards[s].lock().remove(key) {
                Some(f) => {
                    if freed.len() < RECYCLE_CAP {
                        freed.push(f);
                    }
                }
                None => return Err(MemError::BadFree(Pfn(pfn.0 + i))),
            }
        }
        let domain = self.topology.domain_of_pfn(pfn);
        let mut inner = self.alloc.lock();
        inner.domains[domain.index()].free(pfn, n);
        inner.stats.frees += 1;
        inner.stats.allocated_frames -= n;
        let room = RECYCLE_CAP.saturating_sub(inner.recycled.len());
        inner.recycled.extend(freed.into_iter().take(room));
        Ok(())
    }

    /// Whether a frame is currently allocated.
    pub fn is_allocated(&self, pfn: Pfn) -> bool {
        let (s, key) = shard_key(pfn.0);
        self.shards[s].lock().contains(key)
    }

    /// Reads `buf.len()` bytes starting at `pa` (may cross frames).
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let mut off = 0usize;
        while off < buf.len() {
            let cur = pa.add(off as u64);
            self.check_bounds(cur)?;
            let (s, key) = shard_key(cur.pfn().0);
            let shard = self.shards[s].lock();
            let frame = shard.get(key).ok_or(MemError::Unallocated(cur.pfn()))?;
            let in_page = cur.page_offset();
            let take = (PAGE_SIZE - in_page).min(buf.len() - off);
            buf[off..off + take].copy_from_slice(&frame[in_page..in_page + take]);
            off += take;
        }
        Ok(())
    }

    /// Writes `data` starting at `pa` (may cross frames).
    pub fn write(&self, pa: PhysAddr, data: &[u8]) -> Result<(), MemError> {
        let mut off = 0usize;
        while off < data.len() {
            let cur = pa.add(off as u64);
            self.check_bounds(cur)?;
            let (s, key) = shard_key(cur.pfn().0);
            let mut shard = self.shards[s].lock();
            let frame = shard.get_mut(key).ok_or(MemError::Unallocated(cur.pfn()))?;
            let in_page = cur.page_offset();
            let take = (PAGE_SIZE - in_page).min(data.len() - off);
            frame.data[in_page..in_page + take].copy_from_slice(&data[off..off + take]);
            frame.dirty = frame.dirty.max(in_page + take);
            off += take;
        }
        Ok(())
    }

    /// Compares the bytes at `pa` with `data` without copying them out —
    /// the allocation-free verify used on per-packet paths.
    pub fn equals(&self, pa: PhysAddr, data: &[u8]) -> Result<bool, MemError> {
        let mut off = 0usize;
        while off < data.len() {
            let cur = pa.add(off as u64);
            self.check_bounds(cur)?;
            let (s, key) = shard_key(cur.pfn().0);
            let shard = self.shards[s].lock();
            let frame = shard.get(key).ok_or(MemError::Unallocated(cur.pfn()))?;
            let in_page = cur.page_offset();
            let take = (PAGE_SIZE - in_page).min(data.len() - off);
            if frame[in_page..in_page + take] != data[off..off + take] {
                return Ok(false);
            }
            off += take;
        }
        Ok(true)
    }

    /// Copies `len` bytes from `src` to `dst` within physical memory (the
    /// real data movement behind every shadow-buffer copy). Works
    /// frame-pair by frame-pair, locking the source and destination shards
    /// together (in shard-index order, so concurrent copies cannot
    /// deadlock) and moving each contiguous run with one `memcpy` — no
    /// scratch staging, no second pass over the bytes.
    pub fn copy(&self, src: PhysAddr, dst: PhysAddr, len: usize) -> Result<(), MemError> {
        let mut off = 0usize;
        while off < len {
            let s_pa = src.add(off as u64);
            let d_pa = dst.add(off as u64);
            self.check_bounds(s_pa)?;
            self.check_bounds(d_pa)?;
            let si = s_pa.page_offset();
            let di = d_pa.page_offset();
            let take = (PAGE_SIZE - si).min(PAGE_SIZE - di).min(len - off);
            let (ss, sk) = shard_key(s_pa.pfn().0);
            let (ds, dk) = shard_key(d_pa.pfn().0);
            if ss == ds {
                // Both frames live in one shard (or are the same frame):
                // stage this run through the stack so we never need two
                // borrows of one table. Rare — shards interleave by pfn.
                let mut tmp = [0u8; PAGE_SIZE];
                let mut shard = self.shards[ss].lock();
                let sf = shard.get(sk).ok_or(MemError::Unallocated(s_pa.pfn()))?;
                tmp[..take].copy_from_slice(&sf[si..si + take]);
                let df = shard.get_mut(dk).ok_or(MemError::Unallocated(d_pa.pfn()))?;
                df.data[di..di + take].copy_from_slice(&tmp[..take]);
                df.dirty = df.dirty.max(di + take);
            } else {
                let mut g_lo = self.shards[ss.min(ds)].lock();
                let mut g_hi = self.shards[ss.max(ds)].lock();
                let (src_table, dst_table) = if ss < ds {
                    (&*g_lo, &mut *g_hi)
                } else {
                    (&*g_hi, &mut *g_lo)
                };
                let sf = src_table.get(sk).ok_or(MemError::Unallocated(s_pa.pfn()))?;
                let df = dst_table
                    .get_mut(dk)
                    .ok_or(MemError::Unallocated(d_pa.pfn()))?;
                df.data[di..di + take].copy_from_slice(&sf[si..si + take]);
                df.dirty = df.dirty.max(di + take);
            }
            off += take;
        }
        Ok(())
    }

    /// Fills `len` bytes at `pa` with `byte`.
    pub fn fill(&self, pa: PhysAddr, byte: u8, len: usize) -> Result<(), MemError> {
        let chunk = [byte; PAGE_SIZE];
        let mut off = 0usize;
        while off < len {
            let take = PAGE_SIZE.min(len - off);
            self.write(pa.add(off as u64), &chunk[..take])?;
            off += take;
        }
        Ok(())
    }

    /// Reads `len` bytes at `pa` into a fresh vector.
    pub fn read_vec(&self, pa: PhysAddr, len: usize) -> Result<Vec<u8>, MemError> {
        let mut v = vec![0u8; len];
        self.read(pa, &mut v)?;
        Ok(v)
    }

    /// Allocation statistics snapshot.
    pub fn stats(&self) -> MemStats {
        self.alloc.lock().stats
    }

    fn check_bounds(&self, pa: PhysAddr) -> Result<(), MemError> {
        if pa.pfn().0 >= self.topology.total_frames() {
            Err(MemError::OutOfBounds(pa))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(frames: u64) -> PhysMemory {
        PhysMemory::new(NumaTopology::tiny(frames))
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let m = mem(16);
        let pfn = m.alloc_frame(NumaDomain(0)).unwrap();
        let pa = pfn.base().add(100);
        m.write(pa, b"hello world").unwrap();
        assert_eq!(m.read_vec(pa, 11).unwrap(), b"hello world");
    }

    #[test]
    fn frames_start_zeroed() {
        let m = mem(4);
        let pfn = m.alloc_frame(NumaDomain(0)).unwrap();
        assert_eq!(
            m.read_vec(pfn.base(), PAGE_SIZE).unwrap(),
            vec![0u8; PAGE_SIZE]
        );
    }

    #[test]
    fn cross_frame_access() {
        let m = mem(16);
        let pfn = m.alloc_frames(NumaDomain(0), 2).unwrap();
        let pa = pfn.base().add(PAGE_SIZE as u64 - 3);
        m.write(pa, b"abcdef").unwrap();
        assert_eq!(m.read_vec(pa, 6).unwrap(), b"abcdef");
    }

    #[test]
    fn unallocated_access_fails() {
        let m = mem(16);
        let err = m.read_vec(PhysAddr(0), 1).unwrap_err();
        assert_eq!(err, MemError::Unallocated(Pfn(0)));
        let err = m.write(PhysAddr(4096), b"x").unwrap_err();
        assert_eq!(err, MemError::Unallocated(Pfn(1)));
    }

    #[test]
    fn out_of_bounds_access_fails() {
        let m = mem(2);
        let err = m.read_vec(PhysAddr(3 * 4096), 1).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }

    #[test]
    fn contiguous_allocation_is_contiguous() {
        let m = mem(32);
        let a = m.alloc_frames(NumaDomain(0), 16).unwrap();
        // The run must be fully allocated.
        for i in 0..16 {
            assert!(m.is_allocated(a.add(i)));
        }
        // Write across the whole 64 KB region.
        let data = vec![0x5au8; 16 * PAGE_SIZE];
        m.write(a.base(), &data).unwrap();
        assert_eq!(m.read_vec(a.base(), data.len()).unwrap(), data);
    }

    #[test]
    fn oom_when_no_contiguous_run() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 3).unwrap(); // [0,3)
        let _b = m.alloc_frames(NumaDomain(0), 2).unwrap(); // [3,5)
        m.free_frames(a, 3).unwrap(); // free [0,3)
                                      // 3 + 3 free frames exist ([0,3) and [5,8)) but not 4 contiguous... wait,
                                      // [5,8) is 3 frames. Ask for 4 contiguous: must fail.
        let err = m.alloc_frames(NumaDomain(0), 4).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { frames: 4, .. }));
        // 3 contiguous still works.
        assert!(m.alloc_frames(NumaDomain(0), 3).is_ok());
    }

    #[test]
    fn free_coalesces_runs() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 8).unwrap();
        m.free_frames(a, 4).unwrap();
        m.free_frames(a.add(4), 4).unwrap();
        // After coalescing we can allocate all 8 again.
        assert!(m.alloc_frames(NumaDomain(0), 8).is_ok());
    }

    #[test]
    fn double_free_fails() {
        let m = mem(4);
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        m.free_frames(a, 1).unwrap();
        assert_eq!(m.free_frames(a, 1).unwrap_err(), MemError::BadFree(a));
    }

    #[test]
    fn freed_frames_lose_contents() {
        let m = mem(4);
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        m.write(a.base(), b"secret").unwrap();
        m.free_frames(a, 1).unwrap();
        let b = m.alloc_frame(NumaDomain(0)).unwrap();
        assert_eq!(b, a, "allocator reuses the freed frame");
        // Reallocated frames are zeroed.
        assert_eq!(m.read_vec(b.base(), 6).unwrap(), vec![0u8; 6]);
    }

    #[test]
    fn numa_domains_are_disjoint() {
        let m = PhysMemory::new(NumaTopology::new(2, 2, 8));
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        let b = m.alloc_frame(NumaDomain(1)).unwrap();
        assert_eq!(m.topology().domain_of_pfn(a), NumaDomain(0));
        assert_eq!(m.topology().domain_of_pfn(b), NumaDomain(1));
    }

    #[test]
    fn stats_track_allocation() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 4).unwrap();
        assert_eq!(m.stats().allocated_frames, 4);
        assert_eq!(m.stats().peak_frames, 4);
        m.free_frames(a, 4).unwrap();
        assert_eq!(m.stats().allocated_frames, 0);
        assert_eq!(m.stats().peak_frames, 4);
    }

    #[test]
    fn copy_moves_real_bytes() {
        let m = mem(8);
        let a = m.alloc_frames(NumaDomain(0), 2).unwrap();
        let b = m.alloc_frames(NumaDomain(0), 2).unwrap();
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        m.write(a.base(), &data).unwrap();
        m.copy(a.base(), b.base(), data.len()).unwrap();
        assert_eq!(m.read_vec(b.base(), data.len()).unwrap(), data);
    }

    #[test]
    fn fill_works() {
        let m = mem(4);
        let a = m.alloc_frame(NumaDomain(0)).unwrap();
        m.fill(a.base().add(10), 0xee, 100).unwrap();
        assert_eq!(m.read_vec(a.base().add(10), 100).unwrap(), vec![0xee; 100]);
        assert_eq!(m.read_vec(a.base(), 10).unwrap(), vec![0u8; 10]);
    }
}
