//! Physical addresses and page frames.

// lint: allow(panic) — address-overflow invariants are constructor contracts, documented under # Panics

use std::fmt;

/// Size of a physical page / IOMMU mapping granule, 4 KB.
pub const PAGE_SIZE: usize = 4096;
/// `log2(PAGE_SIZE)`.
pub const PAGE_SHIFT: u32 = 12;

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Creates a physical address.
    pub const fn new(a: u64) -> Self {
        PhysAddr(a)
    }

    /// Raw address value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The frame containing this address.
    pub const fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing frame.
    pub const fn page_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }

    /// Whether the address is page-aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.0 & (PAGE_SIZE as u64 - 1) == 0
    }

    /// Address advanced by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow.
    #[allow(clippy::should_implement_trait)] // `add` mirrors pointer::add
    pub fn add(self, n: u64) -> PhysAddr {
        PhysAddr(self.0.checked_add(n).expect("physical address overflow"))
    }

    /// Rounds down to the page boundary.
    pub const fn page_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(PAGE_SIZE as u64 - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// A page frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl Pfn {
    /// Creates a page frame number.
    pub const fn new(n: u64) -> Self {
        Pfn(n)
    }

    /// Raw frame number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The base physical address of this frame.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// The frame `n` frames after this one.
    #[allow(clippy::should_implement_trait)] // `add` mirrors pointer::add
    pub fn add(self, n: u64) -> Pfn {
        Pfn(self.0.checked_add(n).expect("pfn overflow"))
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// Number of pages needed to hold `bytes` bytes.
#[allow(dead_code)]
pub(crate) fn pages_for(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(PAGE_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfn_and_offset() {
        let pa = PhysAddr(0x12345);
        assert_eq!(pa.pfn(), Pfn(0x12));
        assert_eq!(pa.page_offset(), 0x345);
        assert_eq!(pa.page_base(), PhysAddr(0x12000));
        assert!(!pa.is_page_aligned());
        assert!(pa.page_base().is_page_aligned());
    }

    #[test]
    fn pfn_base_roundtrip() {
        let pfn = Pfn(7);
        assert_eq!(pfn.base(), PhysAddr(7 * 4096));
        assert_eq!(pfn.base().pfn(), pfn);
        assert_eq!(pfn.add(3), Pfn(10));
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(65536), 16);
    }

    #[test]
    fn display() {
        assert_eq!(PhysAddr(0x1000).to_string(), "pa:0x1000");
        assert_eq!(Pfn(1).to_string(), "pfn:0x1");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        PhysAddr(u64::MAX).add(1);
    }
}
