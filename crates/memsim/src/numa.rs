//! NUMA topology: cores, domains and frame placement.

use crate::{Pfn, PAGE_SIZE};
use simcore::CoreId;
use std::fmt;

/// A NUMA domain (socket) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NumaDomain(pub u16);

impl NumaDomain {
    /// Creates a domain id.
    pub const fn new(d: u16) -> Self {
        NumaDomain(d)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NumaDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "numa{}", self.0)
    }
}

/// Machine topology: how cores and physical frames map onto NUMA domains.
///
/// The default matches the paper's testbed: 2 sockets × 8 cores, with each
/// socket's DIMMs forming one domain; frames are split evenly between the
/// domains (lower half on domain 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    cores: u16,
    domains: u16,
    total_frames: u64,
}

impl NumaTopology {
    /// Creates a topology of `cores` cores spread evenly over `domains`
    /// domains, with `total_frames` physical frames split evenly.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or if `cores % domains != 0`.
    pub fn new(cores: u16, domains: u16, total_frames: u64) -> Self {
        assert!(cores > 0 && domains > 0 && total_frames > 0);
        assert!(
            cores.is_multiple_of(domains),
            "cores must divide evenly into domains"
        );
        assert!(
            total_frames >= domains as u64,
            "need at least one frame per domain"
        );
        NumaTopology {
            cores,
            domains,
            total_frames,
        }
    }

    /// The paper's testbed: 16 cores, 2 domains, 32 GB of RAM.
    pub fn dual_socket_haswell() -> Self {
        NumaTopology::new(16, 2, (32u64 << 30) / PAGE_SIZE as u64)
    }

    /// A small single-domain topology for unit tests.
    pub fn tiny(frames: u64) -> Self {
        NumaTopology::new(1, 1, frames)
    }

    /// Number of cores.
    pub fn cores(&self) -> u16 {
        self.cores
    }

    /// Number of NUMA domains.
    pub fn domains(&self) -> u16 {
        self.domains
    }

    /// Total physical frames.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// The domain a core belongs to (cores are packed: 0–7 → domain 0...).
    pub fn domain_of_core(&self, core: CoreId) -> NumaDomain {
        let per = self.cores / self.domains;
        NumaDomain((core.0 % self.cores) / per)
    }

    /// The domain a frame belongs to (frames are split contiguously).
    pub fn domain_of_pfn(&self, pfn: Pfn) -> NumaDomain {
        let per = self.frames_per_domain();
        let d = (pfn.0 / per).min(self.domains as u64 - 1);
        NumaDomain(d as u16)
    }

    /// Frames per domain (the last domain absorbs any remainder).
    pub fn frames_per_domain(&self) -> u64 {
        self.total_frames / self.domains as u64
    }

    /// The frame range `[start, end)` of a domain.
    pub fn frame_range(&self, domain: NumaDomain) -> (Pfn, Pfn) {
        let per = self.frames_per_domain();
        let start = per * domain.0 as u64;
        let end = if domain.0 + 1 == self.domains {
            self.total_frames
        } else {
            start + per
        };
        (Pfn(start), Pfn(end))
    }
}

impl Default for NumaTopology {
    fn default() -> Self {
        NumaTopology::dual_socket_haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_socket_core_mapping() {
        let t = NumaTopology::dual_socket_haswell();
        assert_eq!(t.domain_of_core(CoreId(0)), NumaDomain(0));
        assert_eq!(t.domain_of_core(CoreId(7)), NumaDomain(0));
        assert_eq!(t.domain_of_core(CoreId(8)), NumaDomain(1));
        assert_eq!(t.domain_of_core(CoreId(15)), NumaDomain(1));
    }

    #[test]
    fn frame_split() {
        let t = NumaTopology::new(4, 2, 100);
        assert_eq!(t.frame_range(NumaDomain(0)), (Pfn(0), Pfn(50)));
        assert_eq!(t.frame_range(NumaDomain(1)), (Pfn(50), Pfn(100)));
        assert_eq!(t.domain_of_pfn(Pfn(0)), NumaDomain(0));
        assert_eq!(t.domain_of_pfn(Pfn(49)), NumaDomain(0));
        assert_eq!(t.domain_of_pfn(Pfn(50)), NumaDomain(1));
        assert_eq!(t.domain_of_pfn(Pfn(99)), NumaDomain(1));
    }

    #[test]
    fn uneven_frames_go_to_last_domain() {
        let t = NumaTopology::new(2, 2, 101);
        assert_eq!(t.frame_range(NumaDomain(1)), (Pfn(50), Pfn(101)));
        assert_eq!(t.domain_of_pfn(Pfn(100)), NumaDomain(1));
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn cores_must_divide() {
        NumaTopology::new(3, 2, 10);
    }
}
