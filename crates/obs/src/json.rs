//! Minimal in-tree JSON value, encoder and parser.
//!
//! The workspace builds with no external dependencies, so the JSON-lines
//! sink carries its own ~200-line JSON implementation. Only what the
//! telemetry schema needs is supported — objects, arrays, strings,
//! integers (kept exact as `u64`/`i64`, never coerced through `f64`),
//! floats, bools and null. Object key order is preserved, which makes
//! `encode(parse(encode(x))) == encode(x)` hold exactly.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer, kept exact.
    UInt(u64),
    /// Negative integer, kept exact.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Convenience: value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Convenience: value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Encodes to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Debug formatting keeps a trailing `.0` on integral
                    // floats so the value re-parses as a float.
                    let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our schema;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x80 => {
                // Consume a whole run of plain ASCII in one step — the
                // run is valid UTF-8 by construction, so validation cost
                // stays linear in the document size (validating the full
                // remaining slice per character is quadratic, minutes on
                // a multi-megabyte chrome trace).
                let start = *pos;
                while matches!(b.get(*pos), Some(&c) if c < 0x80 && c != b'"' && c != b'\\') {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?);
            }
            Some(_) => {
                // One multi-byte UTF-8 character: at most 4 bytes, so
                // only a bounded window is validated.
                let end = (*pos + 4).min(b.len());
                let window = &b[*pos..end];
                let s = match std::str::from_utf8(window) {
                    Ok(s) => s,
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&window[..e.valid_up_to()])
                            .map_err(|_| "invalid utf-8")?
                    }
                    Err(_) => return Err("invalid utf-8".into()),
                };
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            if let Ok(v) = stripped.parse::<u64>() {
                if v <= i64::MAX as u64 {
                    return Ok(Json::Int(-(v as i64)));
                }
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number '{text}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"a":1,"b":-2,"c":1.5,"d":"x\"y\n","e":[true,false,null],"f":{}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.encode(), src);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b"), Some(&Json::Int(-2)));
        assert_eq!(v.get("c"), Some(&Json::Float(1.5)));
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let src = format!("{{\"v\":{big}}}");
        let v = Json::parse(&src).unwrap();
        assert_eq!(v.get("v").unwrap().as_u64(), Some(big));
        assert_eq!(v.encode(), src);
    }

    #[test]
    fn integral_float_keeps_point() {
        let v = Json::Float(3.0);
        assert_eq!(v.encode(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn multibyte_strings_roundtrip() {
        // Exercises the ASCII-run fast path interleaved with 2-, 3- and
        // 4-byte UTF-8 sequences and escapes.
        let v = Json::Str("héllo → w\\orld 🦀 end".into());
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        // A multi-byte char hard against end-of-input.
        assert_eq!(Json::parse("\"🦀\"").unwrap(), Json::Str("🦀".into()));
        // Input ending mid-string is rejected, not mis-decoded.
        assert!(Json::parse("\"ü").is_err());
        // 4-byte window cutting into the following char still decodes.
        assert_eq!(Json::parse("\"é🦀é\"").unwrap(), Json::Str("é🦀é".into()));
    }

    #[test]
    fn escapes_control_chars() {
        let v = Json::Str("a\u{1}b".into());
        assert_eq!(v.encode(), "\"a\\u0001b\"");
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }
}
