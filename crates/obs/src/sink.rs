//! Pluggable sinks: a pretty-table text reporter and a JSON-lines
//! exporter/importer.
//!
//! ## JSON-lines schema (`BENCH_*.json` trajectory format)
//!
//! One JSON object per line; every line carries a `type` discriminator so
//! bench runs are machine-comparable across PRs:
//!
//! - `{"type":"run", ...}` — one header line of run metadata
//!   (workload, engine, cores, message size, throughput...).
//! - `{"type":"metric","kind":"counter"|"gauge","key":"pool.acquires{dev0}",
//!    "subsystem":...,"name":...,"device":...,"value":N}`
//! - `{"type":"metric","kind":"histogram",...,"count":N,"sum":S,
//!    "buckets":[[upper,count],...]}`
//! - `{"type":"event","seq":N,"at":CYCLES,"core":N,"device":N|null,
//!    "cause":N|null,"event":"DmaMap",...kind fields...}`
//!
//! [`parse_jsonl`] + [`event_from_json`] invert the export losslessly.

use crate::json::Json;
use crate::metrics::{MetricKey, RegistrySnapshot};
use crate::trace::{Event, EventKind, TraceStats};
use simcore::Cycles;
use std::borrow::Cow;
use std::fmt::Write as _;

fn device_json(d: Option<u16>) -> Json {
    match d {
        Some(d) => Json::UInt(d as u64),
        None => Json::Null,
    }
}

fn metric_obj(key: &MetricKey, kind: &str) -> Vec<(String, Json)> {
    vec![
        ("type".into(), Json::Str("metric".into())),
        ("kind".into(), Json::Str(kind.into())),
        ("key".into(), Json::Str(key.to_string())),
        ("subsystem".into(), Json::Str(key.subsystem.into())),
        ("name".into(), Json::Str(key.name.into())),
        ("device".into(), device_json(key.device)),
    ]
}

/// Renders every metric in `snap` as JSON-lines values.
pub fn metric_lines(snap: &RegistrySnapshot) -> Vec<Json> {
    let mut out = Vec::new();
    for (k, v) in &snap.counters {
        let mut obj = metric_obj(k, "counter");
        obj.push(("value".into(), Json::UInt(*v)));
        out.push(Json::Obj(obj));
    }
    for (k, v) in &snap.gauges {
        let mut obj = metric_obj(k, "gauge");
        obj.push((
            "value".into(),
            if *v >= 0 {
                Json::UInt(*v as u64)
            } else {
                Json::Int(*v)
            },
        ));
        out.push(Json::Obj(obj));
    }
    for (k, h) in &snap.histograms {
        let mut obj = metric_obj(k, "histogram");
        obj.push(("count".into(), Json::UInt(h.count)));
        obj.push(("sum".into(), Json::UInt(h.sum)));
        obj.push((
            "buckets".into(),
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(bound, c)| Json::Arr(vec![Json::UInt(bound), Json::UInt(c)]))
                    .collect(),
            ),
        ));
        out.push(Json::Obj(obj));
    }
    out
}

/// Renders one trace event as a JSON-lines value.
pub fn event_line(e: &Event) -> Json {
    let mut obj = vec![
        ("type".into(), Json::Str("event".into())),
        ("seq".into(), Json::UInt(e.seq)),
        ("at".into(), Json::UInt(e.at.0)),
        ("core".into(), Json::UInt(e.core as u64)),
        ("device".into(), device_json(e.device)),
        (
            "cause".into(),
            match e.cause {
                Some(c) => Json::UInt(c),
                None => Json::Null,
            },
        ),
        ("event".into(), Json::Str(e.kind.name().into())),
    ];
    match &e.kind {
        EventKind::DmaMap { iova, len, dir } => {
            obj.push(("iova".into(), Json::UInt(*iova)));
            obj.push(("len".into(), Json::UInt(*len)));
            obj.push(("dir".into(), Json::Str(dir.to_string())));
        }
        EventKind::DmaUnmap { iova, len } => {
            obj.push(("iova".into(), Json::UInt(*iova)));
            obj.push(("len".into(), Json::UInt(*len)));
        }
        EventKind::IotlbInvalidate { pages, wait_cycles } => {
            obj.push(("pages".into(), Json::UInt(*pages)));
            obj.push(("wait_cycles".into(), Json::UInt(*wait_cycles)));
        }
        EventKind::PoolGrow { class, bytes } => {
            obj.push(("class".into(), Json::UInt(*class)));
            obj.push(("bytes".into(), Json::UInt(*bytes)));
        }
        EventKind::PoolShrink { bytes } => {
            obj.push(("bytes".into(), Json::UInt(*bytes)));
        }
        EventKind::FallbackAcquire { iova, len } => {
            obj.push(("iova".into(), Json::UInt(*iova)));
            obj.push(("len".into(), Json::UInt(*len)));
        }
        EventKind::AttackBlocked {
            iova,
            access,
            reason,
        } => {
            obj.push(("iova".into(), Json::UInt(*iova)));
            obj.push(("access".into(), Json::Str(access.to_string())));
            obj.push(("reason".into(), Json::Str(reason.to_string())));
        }
        EventKind::LockContention { lock, spin_cycles } => {
            obj.push(("lock".into(), Json::Str(lock.to_string())));
            obj.push(("spin_cycles".into(), Json::UInt(*spin_cycles)));
        }
        EventKind::SanitizerViolation { rule, iova, detail } => {
            obj.push(("rule".into(), Json::Str(rule.to_string())));
            obj.push(("iova".into(), Json::UInt(*iova)));
            obj.push(("detail".into(), Json::Str(detail.to_string())));
        }
        EventKind::LockAcquire { lock } => {
            obj.push(("lock".into(), Json::Str(lock.to_string())));
        }
        EventKind::LockRelease { lock } => {
            obj.push(("lock".into(), Json::Str(lock.to_string())));
        }
        EventKind::SharedAccess { var, write } => {
            obj.push(("var".into(), Json::Str(var.to_string())));
            obj.push(("write".into(), Json::Bool(*write)));
        }
    }
    Json::Obj(obj)
}

fn need_u64(j: &Json, k: &str) -> Result<u64, String> {
    j.get(k)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid '{k}'"))
}

fn need_str(j: &Json, k: &str) -> Result<String, String> {
    j.get(k)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing/invalid '{k}'"))
}

/// Parses an `event` JSON-lines value back into an [`Event`] (inverse of
/// [`event_line`]).
pub fn event_from_json(j: &Json) -> Result<Event, String> {
    if j.get("type").and_then(Json::as_str) != Some("event") {
        return Err("not an event line".into());
    }
    let kind = match need_str(j, "event")?.as_str() {
        "DmaMap" => EventKind::DmaMap {
            iova: need_u64(j, "iova")?,
            len: need_u64(j, "len")?,
            dir: Cow::Owned(need_str(j, "dir")?),
        },
        "DmaUnmap" => EventKind::DmaUnmap {
            iova: need_u64(j, "iova")?,
            len: need_u64(j, "len")?,
        },
        "IotlbInvalidate" => EventKind::IotlbInvalidate {
            pages: need_u64(j, "pages")?,
            wait_cycles: need_u64(j, "wait_cycles")?,
        },
        "PoolGrow" => EventKind::PoolGrow {
            class: need_u64(j, "class")?,
            bytes: need_u64(j, "bytes")?,
        },
        "PoolShrink" => EventKind::PoolShrink {
            bytes: need_u64(j, "bytes")?,
        },
        "FallbackAcquire" => EventKind::FallbackAcquire {
            iova: need_u64(j, "iova")?,
            len: need_u64(j, "len")?,
        },
        "AttackBlocked" => EventKind::AttackBlocked {
            iova: need_u64(j, "iova")?,
            access: Cow::Owned(need_str(j, "access")?),
            reason: Cow::Owned(need_str(j, "reason")?),
        },
        "LockContention" => EventKind::LockContention {
            lock: Cow::Owned(need_str(j, "lock")?),
            spin_cycles: need_u64(j, "spin_cycles")?,
        },
        "SanitizerViolation" => EventKind::SanitizerViolation {
            rule: Cow::Owned(need_str(j, "rule")?),
            iova: need_u64(j, "iova")?,
            detail: Cow::Owned(need_str(j, "detail")?),
        },
        "LockAcquire" => EventKind::LockAcquire {
            lock: Cow::Owned(need_str(j, "lock")?),
        },
        "LockRelease" => EventKind::LockRelease {
            lock: Cow::Owned(need_str(j, "lock")?),
        },
        "SharedAccess" => EventKind::SharedAccess {
            var: Cow::Owned(need_str(j, "var")?),
            write: match j.get("write") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("missing/invalid 'write'".into()),
            },
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(Event {
        seq: need_u64(j, "seq")?,
        at: Cycles(need_u64(j, "at")?),
        core: need_u64(j, "core")? as u16,
        device: match j.get("device") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or("invalid 'device'")? as u16),
        },
        cause: match j.get("cause") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or("invalid 'cause'")?),
        },
        kind,
    })
}

/// Exports a run header, every metric and every event as a JSON-lines
/// document (one object per line, trailing newline).
///
/// The header surfaces the tracer's retention stats
/// (`trace_retained` / `trace_sampled_out` / `trace_dropped` /
/// `trace_sample_period`) so every trajectory file states how complete
/// its event record is.
pub fn export_jsonl(
    run: &[(&str, Json)],
    snap: &RegistrySnapshot,
    events: &[Event],
    trace: &TraceStats,
) -> String {
    let mut header = vec![("type".to_string(), Json::Str("run".into()))];
    header.extend(run.iter().map(|(k, v)| (k.to_string(), v.clone())));
    header.push(("trace_retained".into(), Json::UInt(trace.retained)));
    header.push(("trace_sampled_out".into(), Json::UInt(trace.sampled_out)));
    header.push(("trace_dropped".into(), Json::UInt(trace.dropped)));
    header.push((
        "trace_sample_period".into(),
        Json::UInt(trace.sample_period),
    ));
    let mut out = Json::Obj(header).encode();
    out.push('\n');
    for line in metric_lines(snap) {
        out.push_str(&line.encode());
        out.push('\n');
    }
    for e in events {
        out.push_str(&event_line(e).encode());
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines document into its constituent values.
pub fn parse_jsonl(s: &str) -> Result<Vec<Json>, String> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| Json::parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Renders the snapshot as an aligned text table: counters and gauges as
/// `metric value` rows, histograms with count/mean/p50/p99 (upper-bound
/// and interpolated tail). When `trace` is given, trailing rows report
/// the tracer's retained/sampled-out/dropped counts so no report
/// silently hides an incomplete event record.
pub fn render_table(snap: &RegistrySnapshot, trace: Option<&TraceStats>) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for (k, v) in &snap.counters {
        rows.push((k.to_string(), v.to_string()));
    }
    for (k, v) in &snap.gauges {
        rows.push((k.to_string(), v.to_string()));
    }
    for (k, h) in &snap.histograms {
        rows.push((
            k.to_string(),
            format!(
                "count={} mean={:.1} p50<={} p99<={} p99~={:.1}",
                h.count,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.99),
                h.percentile_interp(0.99)
            ),
        ));
    }
    if let Some(t) = trace {
        rows.push(("trace.retained".into(), t.retained.to_string()));
        rows.push((
            "trace.sampled_out".into(),
            format!("{} (period {})", t.sampled_out, t.sample_period),
        ));
        rows.push(("trace.dropped".into(), t.dropped.to_string()));
    }
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:<width$}  {v}");
    }
    out
}

/// Renders recent events (up to `limit`, newest last) as indented lines,
/// marking cause chains.
pub fn render_events(events: &[Event], limit: usize) -> String {
    let start = events.len().saturating_sub(limit);
    let mut out = String::new();
    for e in &events[start..] {
        let dev = match e.device {
            Some(d) => format!(" dev{d}"),
            None => String::new(),
        };
        let _ = writeln!(out, "  #{:<6} {}{} {:?}", e.seq, e, dev, e.kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricKey, Registry};
    use crate::trace::Tracer;

    fn sample_events() -> Vec<Event> {
        let t = Tracer::default();
        let m = t.record(
            Cycles(10),
            0,
            Some(0),
            EventKind::DmaMap {
                iova: 0x1000,
                len: 1500,
                dir: Cow::Borrowed("from_device"),
            },
        );
        let inv = t.record_caused(
            Cycles(20),
            0,
            Some(0),
            m,
            EventKind::IotlbInvalidate {
                pages: 1,
                wait_cycles: 300,
            },
        );
        t.record_caused(
            Cycles(30),
            0,
            Some(0),
            inv,
            EventKind::DmaUnmap {
                iova: 0x1000,
                len: 1500,
            },
        );
        t.record(
            Cycles(40),
            1,
            Some(7),
            EventKind::AttackBlocked {
                iova: 0xdead_b000,
                access: Cow::Borrowed("read"),
                reason: Cow::Borrowed("not_mapped"),
            },
        );
        t.record(
            Cycles(50),
            2,
            None,
            EventKind::LockContention {
                lock: Cow::Borrowed("invalq"),
                spin_cycles: 120,
            },
        );
        t.record(
            Cycles(60),
            2,
            None,
            EventKind::LockAcquire {
                lock: Cow::Borrowed("invalq"),
            },
        );
        t.record(
            Cycles(61),
            2,
            None,
            EventKind::SharedAccess {
                var: Cow::Borrowed("invalq.commands"),
                write: true,
            },
        );
        t.record(
            Cycles(62),
            2,
            None,
            EventKind::LockRelease {
                lock: Cow::Borrowed("invalq"),
            },
        );
        t.record(
            Cycles(70),
            0,
            Some(0),
            EventKind::SanitizerViolation {
                rule: Cow::Borrowed("double_unmap"),
                iova: 0x1000,
                detail: Cow::Borrowed("iova 0x1000 already unmapped"),
            },
        );
        t.events()
    }

    #[test]
    fn jsonl_roundtrip_lossless() {
        let r = Registry::new();
        r.counter(MetricKey::new("pool", "acquires", Some(0)))
            .add(42);
        r.gauge(MetricKey::new("pool", "in_flight", Some(0)))
            .set(-3);
        let h = r.histogram(MetricKey::new("dma", "map_cycles", Some(0)));
        for v in [0, 1, 100, 5000] {
            h.record(v);
        }
        let events = sample_events();
        let stats = TraceStats {
            retained: events.len() as u64,
            sampled_out: 7,
            dropped: 0,
            sample_period: 1,
        };
        let doc = export_jsonl(
            &[("workload", Json::Str("tcp_stream_rx".into()))],
            &r.snapshot(),
            &events,
            &stats,
        );
        let lines = parse_jsonl(&doc).unwrap();
        assert_eq!(lines.len(), 1 + 3 + events.len());

        // The run header surfaces the tracer's retention stats.
        let header = &lines[0];
        assert_eq!(
            header.get("trace_retained").and_then(Json::as_u64),
            Some(events.len() as u64)
        );
        assert_eq!(
            header.get("trace_sampled_out").and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(header.get("trace_dropped").and_then(Json::as_u64), Some(0));
        assert_eq!(
            header.get("trace_sample_period").and_then(Json::as_u64),
            Some(1)
        );

        // Byte-for-byte stability through a parse/re-encode cycle.
        let reencoded: String = lines.iter().map(|l| format!("{}\n", l.encode())).collect();
        assert_eq!(doc, reencoded);

        // Events decode back to structurally equal values.
        let decoded: Vec<Event> = lines
            .iter()
            .filter(|l| l.get("type").and_then(Json::as_str) == Some("event"))
            .map(|l| event_from_json(l).unwrap())
            .collect();
        assert_eq!(decoded, events);
    }

    #[test]
    fn table_renders_all_metrics() {
        let r = Registry::new();
        r.counter(MetricKey::new("a", "count", None)).add(5);
        r.histogram(MetricKey::new("b", "sizes", Some(1)))
            .record(64);
        let table = render_table(&r.snapshot(), None);
        assert!(table.contains("a.count"));
        assert!(table.contains("b.sizes{dev1}"));
        assert!(table.contains("count=1"));
    }

    #[test]
    fn table_surfaces_trace_stats() {
        let r = Registry::new();
        r.counter(MetricKey::new("a", "count", None)).add(5);
        let stats = TraceStats {
            retained: 40,
            sampled_out: 120,
            dropped: 3,
            sample_period: 4,
        };
        let table = render_table(&r.snapshot(), Some(&stats));
        assert!(table.contains("trace.retained"), "got: {table}");
        assert!(table.contains("40"));
        assert!(table.contains("120 (period 4)"));
        assert!(table.contains("trace.dropped"));
    }
}
