//! # obs — unified telemetry for the DMA-shadowing stack
//!
//! The paper's argument is entirely about *where cycles go* (Figures 5, 8
//! and 10 break packet-processing time into copy-mgmt / spinlock / IOTLB
//! invalidation / page-table / memcpy phases). This crate is the single
//! observability layer every subsystem reports into:
//!
//! - [`Registry`] — counters, gauges and log-bucketed histograms keyed by
//!   `(subsystem, name, device)`; see [`MetricKey`] for the
//!   `subsystem.name{device}` naming convention.
//! - [`Tracer`] — a bounded ring buffer of structured [`Event`]s
//!   (`DmaMap`/`DmaUnmap`, `IotlbInvalidate`, `PoolGrow`/`PoolShrink`,
//!   `FallbackAcquire`, `AttackBlocked`, lock-contention spins) with
//!   cause-chain spans.
//! - [`sink`] — a pretty-table text reporter and a JSON-lines exporter
//!   (`BENCH_*.json` trajectory format) with a lossless importer.
//! - [`breakdown`] — bridges [`simcore::Breakdown`] phase accounting onto
//!   the registry.
//! - [`profile`] — a hierarchical virtual-time profiler: nested scopes
//!   accumulate per-phase cycles into call trees keyed
//!   `engine × core × device`, with flamegraph and Chrome trace-event
//!   (Perfetto) exporters.
//! - [`flight`] — a flight recorder that dumps the last-N trace events,
//!   the registry snapshot and the profile trees as replayable JSONL on
//!   panics and security events.
//!
//! All timestamps are **simulated cycles** ([`simcore::Cycles`]); `obs`
//! deliberately never reads host wall-clock time, keeping experiments
//! deterministic. The crate has zero external dependencies.
//!
//! ## Threading model
//!
//! An [`Obs`] handle bundles one registry + one tracer and clones cheaply
//! (two `Arc`s). A simulation stack creates one `Obs` and hands clones to
//! every component; components created standalone (unit tests) default to
//! [`Obs::isolated`] so their numbers never bleed across tests.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod trace;

pub use flight::FlightRecorder;
pub use json::Json;
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricKey,
    Registry, RegistrySnapshot, HIST_BUCKETS,
};
pub use profile::{ProfileNode, ProfileSnapshot, Profiler, SpanEvent};
pub use trace::{
    current_cause, span, Event, EventKind, SpanGuard, TraceStats, Tracer, DEFAULT_TRACE_CAPACITY,
};

use simcore::sync::RwLock;
use simcore::Cycles;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A schedule-interception hook: called with every detail-gated event kind
/// recorded while detail events are enabled. The `modelcheck` crate installs
/// one to turn instrumented lock sites into preemption points.
pub type YieldHook = Arc<dyn Fn(&EventKind) + Send + Sync>;

#[derive(Default)]
struct YieldHookCell(RwLock<Option<YieldHook>>);

impl std::fmt::Debug for YieldHookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("YieldHookCell")
            .field(&self.0.read().is_some())
            .finish()
    }
}

/// A cheaply clonable handle bundling the metric [`Registry`] and the
/// event [`Tracer`] for one simulation stack.
#[derive(Debug, Clone)]
pub struct Obs {
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
    /// Latest virtual time any instrumented OS-side operation reported;
    /// device-side events (which carry no `CoreCtx`) are stamped with it.
    now_hint: Arc<AtomicU64>,
    /// Gates high-volume detail events (lockset `LockAcquire` /
    /// `LockRelease` / `SharedAccess`); off by default so benchmarks and
    /// ordinary runs never pay for or overflow the ring with them.
    detail: Arc<AtomicBool>,
    /// Fast flag mirroring `yield_hook.is_some()`, checked before the
    /// `RwLock` so ordinary runs pay one relaxed load.
    has_yield_hook: Arc<AtomicBool>,
    /// The installed schedule-interception hook, if any.
    yield_hook: Arc<YieldHookCell>,
    /// The hierarchical virtual-time profiler (disabled by default).
    profiler: Arc<Profiler>,
    /// The flight recorder (disarmed by default).
    flight: Arc<FlightRecorder>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::isolated()
    }
}

impl Obs {
    /// A fresh, private registry + tracer (default ring capacity).
    ///
    /// Components constructed without an explicit `Obs` use this so
    /// concurrent tests never share counters.
    pub fn isolated() -> Self {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh handle whose tracer retains at most `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs {
            registry: Arc::new(Registry::new()),
            tracer: Arc::new(Tracer::with_capacity(capacity)),
            now_hint: Arc::new(AtomicU64::new(0)),
            detail: Arc::new(AtomicBool::new(false)),
            has_yield_hook: Arc::new(AtomicBool::new(false)),
            yield_hook: Arc::new(YieldHookCell::default()),
            profiler: Arc::new(Profiler::new()),
            flight: Arc::new(FlightRecorder::default()),
        }
    }

    /// Installs (or, with `None`, removes) the schedule-interception hook.
    ///
    /// While a hook is installed and detail events are enabled, every
    /// detail-gated `trace` call invokes it with the event kind *after*
    /// recording — the `modelcheck` executor uses this to hand control to
    /// its scheduler at instrumented lock-acquisition points.
    pub fn set_yield_hook(&self, hook: Option<YieldHook>) {
        self.has_yield_hook.store(hook.is_some(), Ordering::SeqCst);
        *self.yield_hook.0.write() = hook;
    }

    fn fire_yield_hook(&self, kind: &EventKind) {
        if self.has_yield_hook.load(Ordering::SeqCst) {
            let hook = self.yield_hook.0.read().clone();
            if let Some(hook) = hook {
                hook(kind);
            }
        }
    }

    /// Enables or disables high-volume detail events (lockset
    /// instrumentation). Disabled by default.
    pub fn set_detail_enabled(&self, on: bool) {
        self.detail.store(on, Ordering::Relaxed);
    }

    /// True when detail events (lockset instrumentation) are enabled.
    pub fn detail_enabled(&self) -> bool {
        self.detail.load(Ordering::Relaxed)
    }

    /// Keeps 1 in `period` trace cause chains (see [`trace`] module docs);
    /// `0`/`1` mean "record everything". Metrics and security events are
    /// never sampled.
    pub fn set_trace_sampling(&self, period: u64) {
        self.tracer.set_sample_period(period);
    }

    /// Advances the shared virtual-time hint (monotonic).
    pub fn set_now_hint(&self, at: Cycles) {
        self.now_hint.fetch_max(at.0, Ordering::Relaxed);
    }

    /// Latest virtual time reported via [`Obs::set_now_hint`].
    pub fn now_hint(&self) -> Cycles {
        Cycles(self.now_hint.load(Ordering::Relaxed))
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The hierarchical profiler (see [`profile::task_scope`]).
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.profiler
    }

    /// The flight recorder (see [`flight::dump_now`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Shorthand: get-or-create a counter.
    pub fn counter(
        &self,
        subsystem: &'static str,
        name: &'static str,
        device: Option<u16>,
    ) -> Counter {
        self.registry
            .counter(MetricKey::new(subsystem, name, device))
    }

    /// Shorthand: get-or-create a gauge.
    pub fn gauge(&self, subsystem: &'static str, name: &'static str, device: Option<u16>) -> Gauge {
        self.registry.gauge(MetricKey::new(subsystem, name, device))
    }

    /// Shorthand: get-or-create a histogram.
    pub fn histogram(
        &self,
        subsystem: &'static str,
        name: &'static str,
        device: Option<u16>,
    ) -> Histogram {
        self.registry
            .histogram(MetricKey::new(subsystem, name, device))
    }

    /// Shorthand: record a trace event, returning its sequence number.
    ///
    /// If a [yield hook](Obs::set_yield_hook) is installed, it fires after
    /// recording a `LockAcquire` event. All instrumented lock sites emit
    /// `LockAcquire` *before* taking the underlying lock, so a hook that
    /// blocks here never holds a host lock — the property the model
    /// checker's schedule-controlled executor relies on.
    #[inline]
    pub fn trace(&self, at: Cycles, core: u16, device: Option<u16>, kind: EventKind) -> u64 {
        let security = kind.is_security();
        let name = kind.name();
        // Only lock-acquire events need `kind` after recording (for the
        // yield hook) — every other event moves it straight into the
        // tracer without a clone.
        let seq = if matches!(kind, EventKind::LockAcquire { .. }) {
            let seq = self.tracer.record(at, core, device, kind.clone());
            self.fire_yield_hook(&kind);
            seq
        } else {
            self.tracer.record(at, core, device, kind)
        };
        if security && self.flight.armed() {
            flight::dump_now(self, name);
        }
        seq
    }

    /// Shorthand: record a trace event caused by event `cause`.
    pub fn trace_caused(
        &self,
        at: Cycles,
        core: u16,
        device: Option<u16>,
        cause: u64,
        kind: EventKind,
    ) -> u64 {
        let security = kind.is_security();
        let name = kind.name();
        let seq = self.tracer.record_caused(at, core, device, cause, kind);
        if security && self.flight.armed() {
            flight::dump_now(self, name);
        }
        seq
    }

    /// True when `other` shares this handle's registry and tracer.
    pub fn same_as(&self, other: &Obs) -> bool {
        Arc::ptr_eq(&self.registry, &other.registry) && Arc::ptr_eq(&self.tracer, &other.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Obs::isolated();
        let b = a.clone();
        a.counter("x", "y", None).inc();
        assert_eq!(b.registry().snapshot().counter("x", "y", None), Some(1));
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Obs::isolated()));
    }

    #[test]
    fn cached_handles_survive_registry_adoption() {
        // The hot-path pattern: components resolve handles once at
        // construction, then a stack re-homes them onto a shared registry
        // via adopt_*. The cached handle must keep feeding the shared view.
        let private = Obs::isolated();
        let cached_ctr = private.counter("pool", "acquires", Some(0));
        let cached_gauge = private.gauge("pool", "in_flight", Some(0));
        cached_ctr.add(3);
        cached_gauge.add(2);

        let shared = Obs::isolated();
        shared
            .registry()
            .adopt_counter(MetricKey::new("pool", "acquires", Some(0)), &cached_ctr);
        shared
            .registry()
            .adopt_gauge(MetricKey::new("pool", "in_flight", Some(0)), &cached_gauge);

        // Updates through the ORIGINAL cached handles land in the shared
        // registry — no re-resolution on the hot path.
        cached_ctr.inc();
        cached_gauge.set_max(9);
        let snap = shared.registry().snapshot();
        assert_eq!(snap.counter("pool", "acquires", Some(0)), Some(4));
        assert_eq!(snap.gauge("pool", "in_flight", Some(0)), Some(9));
    }

    #[test]
    fn trace_sampling_is_shared_across_clones() {
        let a = Obs::isolated();
        a.clone().set_trace_sampling(8);
        assert_eq!(a.tracer().sample_period(), 8);
    }
}
