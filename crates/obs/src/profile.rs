//! Hierarchical virtual-time profiler: nested scopes accumulate per-phase
//! cycles into a call tree keyed `engine × core × device`.
//!
//! The paper's Figure 5 decomposes packet time into eight fixed
//! [`Phase`] categories. This module generalizes that one hand-wired
//! breakdown into an arbitrary-depth **call tree**: every scope records
//! the per-phase [`CoreCtx::breakdown`] delta it observed, split into
//! *self* cycles (charged directly in the scope) and *total* cycles
//! (self + everything charged in child scopes).
//!
//! - [`task_scope`] opens a *root* scope for one engine's task step (the
//!   netsim RX/TX loop bodies). It binds the host thread to the
//!   profiler handle so callees need no `Obs` plumbing.
//! - [`scope`] opens a nested scope anywhere below a root — the DMA
//!   engines, the IOMMU invalidation queue, the shadow pool, the driver.
//!   With no root open on the thread (unit tests, teardown, deferred
//!   flushes) a `scope` is a pass-through, which is exactly what keeps
//!   the profile tree byte-identical to the registry's published
//!   breakdown: both see only what runs under a measured task.
//! - [`note_reset`] re-bases every open scope after a warm-up
//!   [`CoreCtx::reset_stats`] and clears the task's tree, so
//!   steady-state trees cover precisely the measured window.
//!
//! The **depth-1 cut** of the tree — per-phase totals summed over root
//! nodes — reproduces the Figure 5 [`Breakdown`] exactly; see
//! [`ProfileSnapshot::breakdown_cut`].
//!
//! Exports: [`ProfileSnapshot::render`] (text table),
//! [`ProfileSnapshot::to_json_lines`] (replayable JSONL),
//! [`flamegraph`] (collapsed-stack format) and [`chrome_trace`]
//! (Chrome trace-event JSON, loadable in Perfetto via the span log).
//!
//! All timestamps are simulated cycles; the profiler never reads host
//! wall-clock time, and a disabled profiler costs one relaxed load per
//! root scope (nested scopes only check thread-local state).

use crate::breakdown::phase_slug;
use crate::json::Json;
use crate::Obs;
use simcore::sync::Mutex;
use simcore::{Breakdown, CoreCtx, Cycles, Phase};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Number of phase cells per node, one per [`Phase::ALL`] entry (cell `i`
/// belongs to `Phase::ALL[i]`, the paper's legend order).
pub const PHASE_COUNT: usize = 8;

/// Default bound on retained span-log entries (begin/end pairs for the
/// Chrome trace exporter).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 20;

fn cells(b: &Breakdown) -> [u64; PHASE_COUNT] {
    let mut out = [0u64; PHASE_COUNT];
    for (i, p) in Phase::ALL.iter().enumerate() {
        out[i] = b.get(*p).0;
    }
    out
}

/// Identity of one profile tree: which engine ran on which core against
/// which device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    engine: &'static str,
    core: u16,
    device: Option<u16>,
}

/// One open scope on the thread's stack.
struct Frame {
    label: &'static str,
    /// Breakdown cells at scope entry (or at the last [`note_reset`]).
    enter: [u64; PHASE_COUNT],
    /// Cycles attributed to already-closed child scopes; subtracted from
    /// this scope's delta to obtain its self time.
    consumed: [u64; PHASE_COUNT],
    /// Whether a span-log `begin` entry was emitted (and so an `end`
    /// entry must be, to keep B/E pairs matched).
    span_logged: bool,
}

/// Thread-local binding of a running task to its profiler.
struct TaskCtx {
    profiler: Arc<Profiler>,
    key: Key,
    frames: Vec<Frame>,
}

thread_local! {
    static TASK: RefCell<Option<TaskCtx>> = const { RefCell::new(None) };
    /// Mirror of `TASK.is_some()`. `TaskCtx` holds an `Arc`, so `TASK`
    /// is a lazily-registered (destructor-tracked) thread-local; this
    /// plain `Cell<bool>` is const-initialized with no destructor, so
    /// the pass-through check every instrumented library call makes when
    /// no profiled task is running costs one thread-local load.
    static ROOT_OPEN: Cell<bool> = const { Cell::new(false) };
}

fn set_root_open(open: bool) {
    ROOT_OPEN.with(|c| c.set(open));
}

/// Clears the thread's task binding if `task_scope`'s body unwinds, so a
/// panicking experiment cannot poison the next one on this thread.
struct RootGuard;

impl Drop for RootGuard {
    fn drop(&mut self) {
        TASK.with(|t| {
            t.borrow_mut().take();
        });
        set_root_open(false);
    }
}

/// Pops one frame without recording if `scope`'s body unwinds.
struct FrameGuard;

impl Drop for FrameGuard {
    fn drop(&mut self) {
        TASK.with(|t| {
            if let Some(task) = t.borrow_mut().as_mut() {
                task.frames.pop();
            }
        });
    }
}

/// Internal tree node; labels stay `&'static str` on the hot path.
#[derive(Debug, Default)]
struct Node {
    count: u64,
    self_cycles: [u64; PHASE_COUNT],
    children: Vec<(&'static str, Node)>,
}

impl Node {
    fn child_mut(&mut self, label: &'static str) -> &mut Node {
        if let Some(i) = self.children.iter().position(|(l, _)| *l == label) {
            return &mut self.children[i].1;
        }
        self.children.push((label, Node::default()));
        let last = self.children.len() - 1;
        &mut self.children[last].1
    }

    fn to_public(&self, label: &str) -> ProfileNode {
        ProfileNode {
            label: label.to_string(),
            count: self.count,
            self_cycles: self.self_cycles,
            children: self.children.iter().map(|(l, n)| n.to_public(l)).collect(),
        }
    }
}

/// One span-log entry: a scope begin or end, in record order.
///
/// The log is only populated while [`Profiler::set_span_log`] is on; it
/// feeds [`chrome_trace`]. Entries from one core are strictly nested
/// (the simulator interleaves virtual cores between task steps only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Engine the enclosing task runs (paper name, e.g. `"copy"`).
    pub engine: &'static str,
    /// Virtual core executing the scope.
    pub core: u16,
    /// Device the task drives, if any.
    pub device: Option<u16>,
    /// Scope label (e.g. `"dma_map"`).
    pub label: &'static str,
    /// Virtual time of the begin/end.
    pub at: Cycles,
    /// True for a scope entry, false for its exit.
    pub begin: bool,
}

struct ProfInner {
    /// Per-key synthetic containers whose children are task-root nodes.
    trees: Vec<(Key, Node)>,
    spans: Vec<SpanEvent>,
    span_capacity: usize,
    span_dropped: u64,
}

/// The stack-wide profiler: call trees plus an optional span log.
///
/// One lives inside every [`Obs`] handle (see [`Obs::profiler`]); it is
/// disabled by default so ordinary runs and benchmarks pay one relaxed
/// load per task step.
pub struct Profiler {
    enabled: AtomicBool,
    spans_enabled: AtomicBool,
    inner: Mutex<ProfInner>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Profiler")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("trees", &inner.trees.len())
            .field("spans", &inner.spans.len())
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// Creates a disabled profiler with the default span-log capacity.
    pub fn new() -> Self {
        Profiler {
            enabled: AtomicBool::new(false),
            spans_enabled: AtomicBool::new(false),
            inner: Mutex::new(ProfInner {
                trees: Vec::new(),
                spans: Vec::new(),
                span_capacity: DEFAULT_SPAN_CAPACITY,
                span_dropped: 0,
            }),
        }
    }

    /// Enables or disables call-tree collection. Checked once per
    /// [`task_scope`]; nested [`scope`]s follow their root's decision.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True when call-tree collection is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the span log feeding [`chrome_trace`]. Toggle
    /// only between runs: turning it off mid-span loses end entries.
    pub fn set_span_log(&self, on: bool) {
        self.spans_enabled.store(on, Ordering::Relaxed);
    }

    /// True when the span log is recording.
    pub fn span_log(&self) -> bool {
        self.spans_enabled.load(Ordering::Relaxed)
    }

    /// Caps retained span-log entries. When the cap is hit, further span
    /// *begins* are dropped (and counted); ends of already-logged spans
    /// are always retained so B/E pairs stay matched.
    pub fn set_span_capacity(&self, cap: usize) {
        self.inner.lock().span_capacity = cap.max(1);
    }

    /// Span-log begins dropped because the capacity was reached.
    pub fn span_dropped(&self) -> u64 {
        self.inner.lock().span_dropped
    }

    /// Snapshot of the retained span log, in record order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.inner.lock().spans.clone()
    }

    /// Point-in-time copy of every collected call tree.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let inner = self.inner.lock();
        let mut roots = Vec::new();
        for (key, container) in &inner.trees {
            for (label, node) in &container.children {
                roots.push(ProfileRoot {
                    engine: key.engine.to_string(),
                    core: key.core,
                    device: key.device,
                    node: node.to_public(label),
                });
            }
        }
        ProfileSnapshot { roots }
    }

    /// Discards all trees and the span log (keeps enable flags).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.trees.clear();
        inner.spans.clear();
        inner.span_dropped = 0;
    }

    fn log_begin(&self, key: Key, label: &'static str, at: Cycles) -> bool {
        if !self.spans_enabled.load(Ordering::Relaxed) {
            return false;
        }
        let mut inner = self.inner.lock();
        if inner.spans.len() >= inner.span_capacity {
            inner.span_dropped += 1;
            return false;
        }
        inner.spans.push(SpanEvent {
            engine: key.engine,
            core: key.core,
            device: key.device,
            label,
            at,
            begin: true,
        });
        true
    }

    fn log_end(&self, key: Key, label: &'static str, at: Cycles) {
        // Ends of logged begins bypass the capacity check so B/E pairs
        // stay matched; the overshoot is bounded by the nesting depth.
        self.inner.lock().spans.push(SpanEvent {
            engine: key.engine,
            core: key.core,
            device: key.device,
            label,
            at,
            begin: false,
        });
    }

    fn record_exit(
        &self,
        key: Key,
        path: &[&'static str],
        enter: &[u64; PHASE_COUNT],
        consumed: &[u64; PHASE_COUNT],
        exit: &[u64; PHASE_COUNT],
    ) -> [u64; PHASE_COUNT] {
        let mut delta = [0u64; PHASE_COUNT];
        let mut selfc = [0u64; PHASE_COUNT];
        for i in 0..PHASE_COUNT {
            delta[i] = exit[i].saturating_sub(enter[i]);
            selfc[i] = delta[i].saturating_sub(consumed[i]);
        }
        let mut inner = self.inner.lock();
        let mut node = if let Some(i) = inner.trees.iter().position(|(k, _)| *k == key) {
            &mut inner.trees[i].1
        } else {
            inner.trees.push((key, Node::default()));
            let last = inner.trees.len() - 1;
            &mut inner.trees[last].1
        };
        for l in path {
            node = node.child_mut(l);
        }
        node.count += 1;
        for (cell, add) in node.self_cycles.iter_mut().zip(selfc) {
            *cell = cell.saturating_add(add);
        }
        delta
    }

    fn reset_tree(&self, key: Key) {
        self.inner.lock().trees.retain(|(k, _)| *k != key);
    }
}

/// Opens the *root* profiling scope for one task step of `engine`
/// against `device` on `ctx`'s core, and runs `f` under it.
///
/// A disabled profiler makes this a pass-through (one relaxed load). If
/// a root is already open on this thread the call degrades to a nested
/// [`scope`]. The root's profiler handle travels in thread-local state,
/// so everything `f` calls can use [`scope`] without an [`Obs`].
pub fn task_scope<R>(
    obs: &Obs,
    ctx: &mut CoreCtx,
    engine: &'static str,
    device: Option<u16>,
    label: &'static str,
    f: impl FnOnce(&mut CoreCtx) -> R,
) -> R {
    let prof = obs.profiler();
    if !prof.enabled() {
        return f(ctx);
    }
    if ROOT_OPEN.with(|c| c.get()) {
        return scope(ctx, label, f);
    }
    let key = Key {
        engine,
        core: ctx.core.0,
        device,
    };
    let span_logged = prof.log_begin(key, label, ctx.now());
    TASK.with(|t| {
        *t.borrow_mut() = Some(TaskCtx {
            profiler: Arc::clone(prof),
            key,
            frames: vec![Frame {
                label,
                enter: cells(&ctx.breakdown),
                consumed: [0; PHASE_COUNT],
                span_logged,
            }],
        })
    });
    set_root_open(true);
    let guard = RootGuard;
    let r = f(ctx);
    std::mem::forget(guard);
    set_root_open(false);
    let exit = cells(&ctx.breakdown);
    let end = ctx.now();
    if let Some(task) = TASK.with(|t| t.borrow_mut().take()) {
        if let Some(frame) = task.frames.last() {
            task.profiler.record_exit(
                task.key,
                &[frame.label],
                &frame.enter,
                &frame.consumed,
                &exit,
            );
            if frame.span_logged {
                task.profiler.log_end(task.key, frame.label, end);
            }
        }
    }
    r
}

/// Opens a nested profiling scope labelled `label` and runs `f` under it.
///
/// Pass-through when no [`task_scope`] root is open on this thread —
/// instrumented library code (DMA engines, the invalidation queue, the
/// shadow pool) calls this unconditionally and only pays when a
/// profiled task is running above it.
pub fn scope<R>(ctx: &mut CoreCtx, label: &'static str, f: impl FnOnce(&mut CoreCtx) -> R) -> R {
    if !ROOT_OPEN.with(|c| c.get()) {
        return f(ctx);
    }
    let bound = TASK.with(|t| {
        t.borrow()
            .as_ref()
            .map(|task| (Arc::clone(&task.profiler), task.key))
    });
    let (prof, key) = match bound {
        Some(b) => b,
        None => return f(ctx),
    };
    let span_logged = prof.log_begin(key, label, ctx.now());
    TASK.with(|t| {
        if let Some(task) = t.borrow_mut().as_mut() {
            task.frames.push(Frame {
                label,
                enter: cells(&ctx.breakdown),
                consumed: [0; PHASE_COUNT],
                span_logged,
            });
        }
    });
    let guard = FrameGuard;
    let r = f(ctx);
    std::mem::forget(guard);
    let exit = cells(&ctx.breakdown);
    let end = ctx.now();
    TASK.with(|t| {
        let mut b = t.borrow_mut();
        if let Some(task) = b.as_mut() {
            if let Some(frame) = task.frames.pop() {
                let mut path: Vec<&'static str> = task.frames.iter().map(|fr| fr.label).collect();
                path.push(frame.label);
                let delta = task.profiler.record_exit(
                    task.key,
                    &path,
                    &frame.enter,
                    &frame.consumed,
                    &exit,
                );
                if let Some(parent) = task.frames.last_mut() {
                    for (cell, add) in parent.consumed.iter_mut().zip(delta) {
                        *cell = cell.saturating_add(add);
                    }
                }
                if frame.span_logged {
                    task.profiler.log_end(task.key, frame.label, end);
                }
            }
        }
    });
    r
}

/// Re-bases every open scope after a warm-up [`CoreCtx::reset_stats`]
/// and clears this task's collected tree.
///
/// Call immediately after `reset_stats()` inside the measured task so
/// the steady-state tree matches the registry's published breakdown
/// byte for byte. No-op when no root scope is open.
pub fn note_reset(ctx: &CoreCtx) {
    TASK.with(|t| {
        let mut b = t.borrow_mut();
        if let Some(task) = b.as_mut() {
            let now = cells(&ctx.breakdown);
            for fr in task.frames.iter_mut() {
                fr.enter = now;
                fr.consumed = [0; PHASE_COUNT];
            }
            task.profiler.reset_tree(task.key);
        }
    });
}

/// One node of an exported call tree: label, hit count, per-phase self
/// cycles and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileNode {
    /// Scope label (e.g. `"dma_map"`).
    pub label: String,
    /// Times the scope was entered (after the last warm-up reset).
    pub count: u64,
    /// Cycles charged directly in this scope, per [`Phase::ALL`] cell.
    pub self_cycles: [u64; PHASE_COUNT],
    /// Child scopes, in first-entered order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Self cycles summed over all phases.
    pub fn self_total(&self) -> u64 {
        self.self_cycles.iter().sum()
    }

    /// Per-phase cycles including every descendant.
    pub fn total_cycles(&self) -> [u64; PHASE_COUNT] {
        let mut out = self.self_cycles;
        for c in &self.children {
            let t = c.total_cycles();
            for i in 0..PHASE_COUNT {
                out[i] = out[i].saturating_add(t[i]);
            }
        }
        out
    }

    /// Total cycles (self + descendants) summed over all phases.
    pub fn total(&self) -> u64 {
        self.total_cycles().iter().sum()
    }

    /// This node's self cycles as a [`Breakdown`].
    pub fn self_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            b.record(*p, Cycles(self.self_cycles[i]));
        }
        b
    }

    /// Child with the given label, if present.
    pub fn child(&self, label: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.label == label)
    }

    /// Accumulates `other` (same logical node) into `self`, merging
    /// children by label.
    pub fn merge_from(&mut self, other: &ProfileNode) {
        self.count += other.count;
        for i in 0..PHASE_COUNT {
            self.self_cycles[i] = self.self_cycles[i].saturating_add(other.self_cycles[i]);
        }
        for oc in &other.children {
            if let Some(c) = self.children.iter_mut().find(|c| c.label == oc.label) {
                c.merge_from(oc);
            } else {
                self.children.push(oc.clone());
            }
        }
    }
}

/// One collected tree: the task root node plus its identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRoot {
    /// Engine name (paper name, e.g. `"copy"`, `"identity+"`).
    pub engine: String,
    /// Virtual core the task ran on.
    pub core: u16,
    /// Device the task drove, if any.
    pub device: Option<u16>,
    /// The task-root call-tree node.
    pub node: ProfileNode,
}

/// Point-in-time copy of every call tree a [`Profiler`] collected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileSnapshot {
    /// All collected trees, one per `engine × core × device × task`.
    pub roots: Vec<ProfileRoot>,
}

impl ProfileSnapshot {
    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Distinct engine names, in first-seen order.
    pub fn engines(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.roots {
            if !out.contains(&r.engine) {
                out.push(r.engine.clone());
            }
        }
        out
    }

    /// The **depth-1 cut**: per-phase totals over every root whose
    /// device matches, as a [`Breakdown`].
    ///
    /// When root scopes wrap whole task steps this is byte-identical to
    /// the breakdown the experiment publishes into the registry (the
    /// Figure 5 bars) — the acceptance invariant `profile_report`
    /// asserts.
    pub fn breakdown_cut(&self, device: Option<u16>) -> Breakdown {
        let mut b = Breakdown::new();
        for r in &self.roots {
            if r.device != device {
                continue;
            }
            let t = r.node.total_cycles();
            for (i, p) in Phase::ALL.iter().enumerate() {
                b.record(*p, Cycles(t[i]));
            }
        }
        b
    }

    /// Merges matching roots (optionally restricted to one engine) into
    /// a single synthetic tree whose children are the task roots merged
    /// by label across cores and devices.
    pub fn merged(&self, engine: Option<&str>) -> ProfileNode {
        let mut out = ProfileNode {
            label: engine.unwrap_or("all").to_string(),
            ..ProfileNode::default()
        };
        for r in &self.roots {
            if let Some(e) = engine {
                if r.engine != e {
                    continue;
                }
            }
            if let Some(c) = out.children.iter_mut().find(|c| c.label == r.node.label) {
                c.merge_from(&r.node);
            } else {
                out.children.push(r.node.clone());
            }
        }
        out
    }

    /// Exports each root as one `{"type":"profile",...}` JSON value
    /// (JSONL-ready; inverse of [`ProfileSnapshot::from_json_lines`]).
    pub fn to_json_lines(&self) -> Vec<Json> {
        self.roots
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("type".into(), Json::Str("profile".into())),
                    ("engine".into(), Json::Str(r.engine.clone())),
                    ("core".into(), Json::UInt(r.core as u64)),
                    (
                        "device".into(),
                        match r.device {
                            Some(d) => Json::UInt(d as u64),
                            None => Json::Null,
                        },
                    ),
                    ("tree".into(), node_json(&r.node)),
                ])
            })
            .collect()
    }

    /// Rebuilds a snapshot from parsed JSONL values, skipping lines
    /// whose `type` is not `"profile"`.
    pub fn from_json_lines(lines: &[Json]) -> Result<ProfileSnapshot, String> {
        let mut roots = Vec::new();
        for l in lines {
            if l.get("type").and_then(Json::as_str) != Some("profile") {
                continue;
            }
            let engine = l
                .get("engine")
                .and_then(Json::as_str)
                .ok_or("profile line: missing 'engine'")?
                .to_string();
            let core = l
                .get("core")
                .and_then(Json::as_u64)
                .ok_or("profile line: missing 'core'")? as u16;
            let device = match l.get("device") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or("profile line: invalid 'device'")? as u16),
            };
            let tree = l.get("tree").ok_or("profile line: missing 'tree'")?;
            roots.push(ProfileRoot {
                engine,
                core,
                device,
                node: node_from_json(tree)?,
            });
        }
        Ok(ProfileSnapshot { roots })
    }

    /// Renders per-engine phase totals (the depth-1 cut) and the merged
    /// call tree as an aligned text table. `clock_ghz` converts cycle
    /// totals to microseconds for the summary rows.
    pub fn render(&self, clock_ghz: f64) -> String {
        let mut out = String::new();
        for engine in self.engines() {
            let merged = self.merged(Some(&engine));
            let totals = merged.total_cycles();
            let grand: u64 = totals.iter().sum();
            let _ = writeln!(out, "=== profile: {engine} ===");
            let _ = writeln!(out, "  phase totals (depth-1 cut):");
            for (i, p) in Phase::ALL.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    {:<22} {:>14}  {:>5.1}%",
                    p.label(),
                    totals[i],
                    100.0 * totals[i] as f64 / grand.max(1) as f64
                );
            }
            let _ = writeln!(
                out,
                "    {:<22} {:>14}  ({:.1} us)",
                "total",
                grand,
                Cycles(grand).to_micros(clock_ghz)
            );
            let _ = writeln!(out, "  call tree (total cyc / self cyc, count):");
            for c in &merged.children {
                render_node(&mut out, c, 2, grand);
            }
        }
        out
    }

    /// Renders a node-by-node comparison of `self` (before) against
    /// `after`, for BENCH_HOST regression triage.
    pub fn render_diff(&self, after: &ProfileSnapshot) -> String {
        let mut engines = self.engines();
        for e in after.engines() {
            if !engines.contains(&e) {
                engines.push(e);
            }
        }
        let mut out = String::new();
        for engine in engines {
            let a = self.merged(Some(&engine));
            let b = after.merged(Some(&engine));
            let _ = writeln!(out, "=== diff: {engine} (total cycles) ===");
            let _ = writeln!(
                out,
                "  {:<34} {:>14} {:>14} {:>9}",
                "node", "before", "after", "delta"
            );
            diff_node(&mut out, &a, &b, 1);
        }
        out
    }
}

fn render_node(out: &mut String, n: &ProfileNode, depth: usize, grand: u64) {
    let total = n.total();
    let _ = writeln!(
        out,
        "  {:indent$}{:<width$} {:>12} / {:>12}  n={} ({:.1}%)",
        "",
        n.label,
        total,
        n.self_total(),
        n.count,
        100.0 * total as f64 / grand.max(1) as f64,
        indent = depth * 2,
        width = 28usize.saturating_sub(depth * 2),
    );
    for c in &n.children {
        render_node(out, c, depth + 1, grand);
    }
}

fn diff_node(out: &mut String, a: &ProfileNode, b: &ProfileNode, depth: usize) {
    let (ta, tb) = (a.total(), b.total());
    let delta = if ta == 0 {
        if tb == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (tb as f64 - ta as f64) / ta as f64
    };
    let _ = writeln!(
        out,
        "  {:indent$}{:<width$} {:>14} {:>14} {:>+8.1}%",
        "",
        a.label,
        ta,
        tb,
        delta,
        indent = depth * 2,
        width = 34usize.saturating_sub(depth * 2),
    );
    let empty = ProfileNode::default();
    for ca in &a.children {
        let cb = b.child(&ca.label).unwrap_or(&empty);
        diff_node(out, ca, cb, depth + 1);
    }
    for cb in &b.children {
        if a.child(&cb.label).is_none() {
            let ca = ProfileNode {
                label: cb.label.clone(),
                ..ProfileNode::default()
            };
            diff_node(out, &ca, cb, depth + 1);
        }
    }
}

fn node_json(n: &ProfileNode) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(n.label.clone())),
        ("count".into(), Json::UInt(n.count)),
        (
            "self".into(),
            Json::Arr(n.self_cycles.iter().map(|&v| Json::UInt(v)).collect()),
        ),
        (
            "children".into(),
            Json::Arr(n.children.iter().map(node_json).collect()),
        ),
    ])
}

fn node_from_json(j: &Json) -> Result<ProfileNode, String> {
    let label = j
        .get("label")
        .and_then(Json::as_str)
        .ok_or("profile node: missing 'label'")?
        .to_string();
    let count = j
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("profile node: missing 'count'")?;
    let mut self_cycles = [0u64; PHASE_COUNT];
    match j.get("self") {
        Some(Json::Arr(a)) if a.len() == PHASE_COUNT => {
            for (i, v) in a.iter().enumerate() {
                self_cycles[i] = v.as_u64().ok_or("profile node: invalid 'self' cell")?;
            }
        }
        _ => return Err("profile node: missing/invalid 'self'".into()),
    }
    let children = match j.get("children") {
        Some(Json::Arr(a)) => a
            .iter()
            .map(node_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("profile node: missing 'children'".into()),
    };
    Ok(ProfileNode {
        label,
        count,
        self_cycles,
        children,
    })
}

/// Renders the snapshot in collapsed-stack flamegraph format:
/// `engine;task;scope;...;phase self_cycles`, one line per stack, with
/// the leaf frame naming the phase the cycles were charged to. Stacks
/// are aggregated across cores and devices and sorted for determinism.
pub fn flamegraph(snap: &ProfileSnapshot) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for r in &snap.roots {
        flame_walk(&mut agg, &r.engine, &r.node);
    }
    let mut out = String::new();
    for (stack, v) in agg {
        let _ = writeln!(out, "{stack} {v}");
    }
    out
}

fn flame_walk(agg: &mut BTreeMap<String, u64>, prefix: &str, n: &ProfileNode) {
    let path = format!("{prefix};{}", n.label);
    for (i, p) in Phase::ALL.iter().enumerate() {
        if n.self_cycles[i] > 0 {
            *agg.entry(format!("{path};{}", phase_slug(*p))).or_insert(0) += n.self_cycles[i];
        }
    }
    for c in &n.children {
        flame_walk(agg, &path, c);
    }
}

/// Converts a span log into a Chrome trace-event JSON document
/// (Perfetto-loadable): engines become processes, cores become threads,
/// scopes become `B`/`E` duration events with `ts` in virtual
/// microseconds at `clock_ghz`.
pub fn chrome_trace(spans: &[SpanEvent], clock_ghz: f64) -> Json {
    let mut engines: Vec<&str> = Vec::new();
    let mut events: Vec<Json> = Vec::new();
    for s in spans {
        let pid = match engines.iter().position(|e| *e == s.engine) {
            Some(i) => i as u64 + 1,
            None => {
                engines.push(s.engine);
                let pid = engines.len() as u64;
                events.push(Json::Obj(vec![
                    ("name".into(), Json::Str("process_name".into())),
                    ("ph".into(), Json::Str("M".into())),
                    ("pid".into(), Json::UInt(pid)),
                    (
                        "args".into(),
                        Json::Obj(vec![("name".into(), Json::Str(s.engine.into()))]),
                    ),
                ]));
                pid
            }
        };
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(s.label.into())),
            ("cat".into(), Json::Str("sim".into())),
            (
                "ph".into(),
                Json::Str(if s.begin { "B".into() } else { "E".into() }),
            ),
            ("ts".into(), Json::Float(s.at.to_micros(clock_ghz))),
            ("pid".into(), Json::UInt(pid)),
            ("tid".into(), Json::UInt(s.core as u64)),
        ]));
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Validates a Chrome trace-event document: every `B` has a matching
/// `E` with the same name, properly nested per `(pid, tid)` track.
/// Returns the number of matched pairs.
pub fn validate_chrome_trace(doc: &Json) -> Result<u64, String> {
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(a)) => a,
        _ => return Err("missing 'traceEvents' array".into()),
    };
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut pairs = 0u64;
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event missing 'ph'")?;
        if ph == "M" {
            continue;
        }
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event missing 'name'")?;
        let pid = e.get("pid").and_then(Json::as_u64).ok_or("missing 'pid'")?;
        let tid = e.get("tid").and_then(Json::as_u64).ok_or("missing 'tid'")?;
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => match stack.pop() {
                Some(open) if open == name => pairs += 1,
                Some(open) => {
                    return Err(format!(
                        "mismatched E '{name}' closes '{open}' on ({pid},{tid})"
                    ))
                }
                None => return Err(format!("E '{name}' with no open B on ({pid},{tid})")),
            },
            other => return Err(format!("unsupported phase '{other}'")),
        }
    }
    for ((pid, tid), stack) in stacks {
        if !stack.is_empty() {
            return Err(format!("unclosed spans {stack:?} on ({pid},{tid})"));
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{CoreId, CostModel};

    fn ctx(core: u16) -> CoreCtx {
        CoreCtx::new(CoreId(core), Arc::new(CostModel::haswell_2_4ghz()))
    }

    fn charged_obs() -> Obs {
        let obs = Obs::isolated();
        obs.profiler().set_enabled(true);
        obs
    }

    #[test]
    fn disabled_profiler_is_passthrough() {
        let obs = Obs::isolated();
        let mut c = ctx(0);
        let r = task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::Memcpy, Cycles(10));
            42
        });
        assert_eq!(r, 42);
        assert!(obs.profiler().snapshot().is_empty());
    }

    #[test]
    fn nested_scopes_split_self_and_total() {
        let obs = charged_obs();
        let mut c = ctx(0);
        task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::RxParsing, Cycles(100));
            scope(ctx, "dma_map", |ctx| {
                ctx.charge(Phase::CopyMgmt, Cycles(30));
                scope(ctx, "memcpy", |ctx| {
                    ctx.charge(Phase::Memcpy, Cycles(50));
                });
                ctx.charge(Phase::CopyMgmt, Cycles(5));
            });
            ctx.charge(Phase::Other, Cycles(7));
        });
        let snap = obs.profiler().snapshot();
        assert_eq!(snap.roots.len(), 1);
        let root = &snap.roots[0];
        assert_eq!(root.engine, "copy");
        assert_eq!(root.device, Some(0));
        let rx = &root.node;
        assert_eq!(rx.label, "rx");
        assert_eq!(rx.count, 1);
        // Self excludes everything charged under dma_map.
        assert_eq!(rx.self_total(), 107);
        assert_eq!(rx.total(), 192);
        let map = rx.child("dma_map").ok_or("missing dma_map").unwrap();
        assert_eq!(map.self_total(), 35);
        assert_eq!(map.total(), 85);
        let mc = map.child("memcpy").ok_or("missing memcpy").unwrap();
        assert_eq!(mc.self_total(), 50);
        // Depth-1 cut matches the ctx breakdown exactly.
        let cut = snap.breakdown_cut(Some(0));
        assert_eq!(cut, c.breakdown);
    }

    #[test]
    fn scope_without_root_is_passthrough() {
        let mut c = ctx(0);
        let r = scope(&mut c, "orphan", |ctx| {
            ctx.charge(Phase::Other, Cycles(1));
            7
        });
        assert_eq!(r, 7);
    }

    #[test]
    fn repeated_steps_accumulate_counts() {
        let obs = charged_obs();
        let mut c = ctx(3);
        for _ in 0..5 {
            task_scope(&obs, &mut c, "identity+", None, "tx", |ctx| {
                scope(ctx, "dma_map", |ctx| {
                    ctx.charge(Phase::IommuPageTableMgmt, Cycles(11));
                });
            });
        }
        let snap = obs.profiler().snapshot();
        assert_eq!(snap.roots.len(), 1);
        assert_eq!(snap.roots[0].core, 3);
        assert_eq!(snap.roots[0].node.count, 5);
        let map = snap.roots[0]
            .node
            .child("dma_map")
            .cloned()
            .unwrap_or_default();
        assert_eq!(map.count, 5);
        assert_eq!(map.total(), 55);
    }

    #[test]
    fn note_reset_rebases_open_scopes_and_clears_tree() {
        let obs = charged_obs();
        let mut c = ctx(0);
        // Warm-up step collected into the tree, then a mid-step reset.
        task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::Memcpy, Cycles(1000));
        });
        task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::Memcpy, Cycles(500));
            ctx.reset_stats();
            note_reset(ctx);
            ctx.charge(Phase::RxParsing, Cycles(40));
        });
        let snap = obs.profiler().snapshot();
        // Only post-reset cycles survive, matching the post-reset ctx.
        assert_eq!(snap.breakdown_cut(Some(0)), c.breakdown);
        assert_eq!(snap.roots[0].node.total(), 40);
    }

    #[test]
    fn two_engines_two_trees() {
        let obs = charged_obs();
        let mut c = ctx(0);
        task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::Memcpy, Cycles(10));
        });
        task_scope(&obs, &mut c, "identity+", Some(0), "rx", |ctx| {
            ctx.charge(Phase::InvalidateIotlb, Cycles(20));
        });
        let snap = obs.profiler().snapshot();
        assert_eq!(snap.engines(), vec!["copy", "identity+"]);
        assert_eq!(snap.merged(Some("copy")).total(), 10);
        assert_eq!(snap.merged(Some("identity+")).total(), 20);
        assert_eq!(snap.merged(None).total(), 30);
    }

    #[test]
    fn json_lines_roundtrip() {
        let obs = charged_obs();
        let mut c = ctx(1);
        task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::RxParsing, Cycles(9));
            scope(ctx, "deliver", |ctx| {
                ctx.charge(Phase::CopyUser, Cycles(33));
            });
        });
        let snap = obs.profiler().snapshot();
        let lines = snap.to_json_lines();
        // Through an encode/parse cycle, as the flight recorder replays it.
        let parsed: Vec<Json> = lines
            .iter()
            .map(|l| Json::parse(&l.encode()).ok().unwrap_or(Json::Null))
            .collect();
        let back = ProfileSnapshot::from_json_lines(&parsed)
            .ok()
            .unwrap_or_default();
        assert_eq!(back, snap);
    }

    #[test]
    fn flamegraph_lines_are_phase_leafed() {
        let obs = charged_obs();
        let mut c = ctx(0);
        task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            scope(ctx, "dma_map", |ctx| {
                ctx.charge(Phase::Memcpy, Cycles(64));
            });
            ctx.charge(Phase::RxParsing, Cycles(8));
        });
        let fg = flamegraph(&obs.profiler().snapshot());
        assert!(fg.contains("copy;rx;dma_map;memcpy 64"), "got: {fg}");
        assert!(fg.contains("copy;rx;rx_parsing 8"), "got: {fg}");
    }

    #[test]
    fn chrome_trace_has_matched_pairs() {
        let obs = charged_obs();
        obs.profiler().set_span_log(true);
        let mut c = ctx(0);
        for _ in 0..3 {
            task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
                scope(ctx, "dma_map", |ctx| {
                    ctx.charge(Phase::Memcpy, Cycles(10));
                });
                scope(ctx, "deliver", |ctx| {
                    ctx.charge(Phase::CopyUser, Cycles(10));
                });
            });
        }
        let spans = obs.profiler().spans();
        assert_eq!(spans.len(), 3 * 3 * 2, "3 steps x 3 scopes x B/E");
        let doc = chrome_trace(&spans, 2.4);
        // Survives an encode/parse cycle and validates.
        let parsed = Json::parse(&doc.encode()).ok().unwrap_or(Json::Null);
        let pairs = validate_chrome_trace(&parsed);
        assert_eq!(pairs, Ok(9));
    }

    #[test]
    fn span_capacity_keeps_pairs_matched() {
        let obs = charged_obs();
        obs.profiler().set_span_log(true);
        obs.profiler().set_span_capacity(3);
        let mut c = ctx(0);
        for _ in 0..4 {
            task_scope(&obs, &mut c, "copy", None, "rx", |ctx| {
                scope(ctx, "inner", |ctx| ctx.charge(Phase::Other, Cycles(1)));
            });
        }
        assert!(obs.profiler().span_dropped() > 0);
        let doc = chrome_trace(&obs.profiler().spans(), 2.4);
        assert!(validate_chrome_trace(&doc).is_ok());
    }

    #[test]
    fn unwinding_scope_cleans_thread_state() {
        let obs = charged_obs();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c = ctx(0);
            task_scope(&obs, &mut c, "copy", None, "rx", |ctx| {
                scope(ctx, "boom", |_| panic!("injected"));
            });
        }));
        assert!(caught.is_err());
        // The thread binding is gone: a fresh task works normally.
        let mut c = ctx(0);
        task_scope(&obs, &mut c, "copy", None, "rx", |ctx| {
            ctx.charge(Phase::Other, Cycles(5));
        });
        let snap = obs.profiler().snapshot();
        let rx = snap.merged(Some("copy"));
        assert_eq!(rx.total(), 5);
    }

    #[test]
    fn diff_render_alignment() {
        let mut a = ProfileSnapshot::default();
        let mut b = ProfileSnapshot::default();
        let mk = |v: u64| ProfileRoot {
            engine: "copy".into(),
            core: 0,
            device: None,
            node: ProfileNode {
                label: "rx".into(),
                count: 1,
                self_cycles: [v, 0, 0, 0, 0, 0, 0, 0],
                children: vec![],
            },
        };
        a.roots.push(mk(100));
        b.roots.push(mk(150));
        let d = a.render_diff(&b);
        assert!(d.contains("rx"), "got: {d}");
        assert!(d.contains("+50.0%"), "got: {d}");
    }

    #[test]
    fn render_mentions_all_phases() {
        let obs = charged_obs();
        let mut c = ctx(0);
        task_scope(&obs, &mut c, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::Memcpy, Cycles(240));
        });
        let text = obs.profiler().snapshot().render(2.4);
        for p in Phase::ALL {
            assert!(text.contains(p.label()), "missing {}", p.label());
        }
        assert!(text.contains("=== profile: copy ==="));
    }
}
