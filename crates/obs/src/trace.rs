//! Bounded ring-buffer event tracer.
//!
//! Every structurally interesting action in the stack — a DMA map, an
//! IOTLB invalidation, a pool grow, a blocked malicious access — is
//! recorded as a timestamped [`Event`]. Events form **cause chains**: an
//! event may name the `seq` of the event that caused it, so a single
//! `DmaUnmap` can be attributed to the `IotlbInvalidate` (and its wait)
//! it triggered.
//!
//! The buffer is bounded: when full, the oldest events are dropped and
//! counted in [`Tracer::dropped`], so tracing never grows without bound
//! during long experiments.
//!
//! # Sampling
//!
//! At one trace event per packet-side action, the ring's `Mutex` sits on
//! the per-packet hot path. [`Tracer::set_sample_period`] keeps 1-in-N
//! **cause chains**: the keep/drop decision is made once at each chain
//! head and inherited by every event recorded under its span (or naming
//! it as an explicit cause), so retained chains are always complete —
//! a kept `DmaUnmap` never loses its `IotlbInvalidate` children.
//! Sampled-out events still consume a sequence number (counted in
//! [`Tracer::sampled_out`], separate from ring-overflow drops) but skip
//! the lock entirely. Security events ([`EventKind::AttackBlocked`],
//! [`EventKind::SanitizerViolation`]) always bypass sampling.

use simcore::sync::Mutex;
use simcore::Cycles;
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Structured payload of a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A buffer was mapped for DMA.
    DmaMap {
        /// Device-visible address of the mapping.
        iova: u64,
        /// Mapping length in bytes.
        len: u64,
        /// Transfer direction (`to_device`, `from_device`, `bidirectional`).
        dir: Cow<'static, str>,
    },
    /// A DMA mapping was destroyed.
    DmaUnmap {
        /// Device-visible address of the mapping.
        iova: u64,
        /// Mapping length in bytes.
        len: u64,
    },
    /// The IOMMU invalidation queue completed a synchronous invalidation.
    IotlbInvalidate {
        /// Pages invalidated (0 for a full device flush).
        pages: u64,
        /// Cycles spent waiting on the wait descriptor.
        wait_cycles: u64,
    },
    /// The shadow pool grew a size class.
    PoolGrow {
        /// Size class index.
        class: u64,
        /// Bytes of shadow memory added.
        bytes: u64,
    },
    /// The shadow pool released memory back (reclaim).
    PoolShrink {
        /// Bytes of shadow memory returned.
        bytes: u64,
    },
    /// The shadow pool fell back to a transient strict mapping.
    FallbackAcquire {
        /// Device-visible address of the fallback mapping.
        iova: u64,
        /// Mapping length in bytes.
        len: u64,
    },
    /// The IOMMU blocked a device access — a (potential) DMA attack.
    AttackBlocked {
        /// Address the device attempted to touch.
        iova: u64,
        /// Attempted access (`read` / `write`).
        access: Cow<'static, str>,
        /// Why it was blocked (`not_mapped` / `permission_denied`).
        reason: Cow<'static, str>,
    },
    /// A virtual-time lock acquisition spun on contention.
    LockContention {
        /// Which lock (e.g. `invalq`).
        lock: Cow<'static, str>,
        /// Cycles spent spinning.
        spin_cycles: u64,
    },
    /// The DMA sanitizer (`dmasan`) detected a DMA-API misuse.
    SanitizerViolation {
        /// Which dma-debug rule fired (`double_map`, `double_unmap`,
        /// `unmap_mismatch`, `stale_access`, `oob_access`, `leak`).
        rule: Cow<'static, str>,
        /// Device-visible address the violation concerns.
        iova: u64,
        /// Human-readable description of the violation.
        detail: Cow<'static, str>,
    },
    /// A lock was acquired (lockset instrumentation; detail-gated).
    LockAcquire {
        /// Which lock (e.g. `iommu-invalidation-queue`).
        lock: Cow<'static, str>,
    },
    /// A lock was released (lockset instrumentation; detail-gated).
    LockRelease {
        /// Which lock (e.g. `iommu-invalidation-queue`).
        lock: Cow<'static, str>,
    },
    /// A shared variable was touched (lockset instrumentation;
    /// detail-gated). The Eraser-style detector intersects the locks
    /// held across these accesses.
    SharedAccess {
        /// Which shared variable (e.g. `invalq.commands`).
        var: Cow<'static, str>,
        /// True for a write access, false for a read.
        write: bool,
    },
}

impl EventKind {
    /// Stable name used by sinks (`"DmaMap"`, `"AttackBlocked"`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::DmaMap { .. } => "DmaMap",
            EventKind::DmaUnmap { .. } => "DmaUnmap",
            EventKind::IotlbInvalidate { .. } => "IotlbInvalidate",
            EventKind::PoolGrow { .. } => "PoolGrow",
            EventKind::PoolShrink { .. } => "PoolShrink",
            EventKind::FallbackAcquire { .. } => "FallbackAcquire",
            EventKind::AttackBlocked { .. } => "AttackBlocked",
            EventKind::LockContention { .. } => "LockContention",
            EventKind::SanitizerViolation { .. } => "SanitizerViolation",
            EventKind::LockAcquire { .. } => "LockAcquire",
            EventKind::LockRelease { .. } => "LockRelease",
            EventKind::SharedAccess { .. } => "SharedAccess",
        }
    }

    /// True for security events ([`EventKind::AttackBlocked`],
    /// [`EventKind::SanitizerViolation`]), which always bypass sampling
    /// and can trigger the flight recorder.
    pub fn is_security(&self) -> bool {
        matches!(
            self,
            EventKind::AttackBlocked { .. } | EventKind::SanitizerViolation { .. }
        )
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (unique per tracer, never reused).
    pub seq: u64,
    /// Virtual timestamp (simulated cycles) when the event occurred.
    pub at: Cycles,
    /// Virtual core that performed the action.
    pub core: u16,
    /// Device the action concerns, if any.
    pub device: Option<u16>,
    /// `seq` of the event that caused this one, forming a cause chain.
    pub cause: Option<u64>,
    /// Structured payload.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] core{} {}{}",
            self.at.0,
            self.core,
            self.kind.name(),
            match self.cause {
                Some(c) => format!(" (cause #{c})"),
                None => String::new(),
            }
        )
    }
}

/// Recent per-thread sampling decisions, so a chain head's keep/drop
/// verdict is visible to children naming it as an explicit cause (the
/// cause seq is always minted on the same host thread, moments earlier).
const DECISION_RING: usize = 32;

/// Maximum span nesting depth. Spans are opened by structural layering
/// (a `DmaUnmap` wrapping its invalidation), never recursion, so the
/// real depth is 1–2; 32 leaves a wide margin.
const MAX_SPAN_DEPTH: usize = 32;

/// Per-thread span/decision state. All fields are `Cell`s of `Copy`
/// data so the `thread_local!` is const-initialized with no destructor:
/// accesses compile to plain thread-local loads/stores, with no
/// lazy-init or borrow-flag bookkeeping on the per-event hot path
/// (this sits under every trace record, including sampled-out ones).
struct SpanTls {
    /// Number of open spans; `stack[..depth]` are live, innermost last.
    depth: Cell<usize>,
    /// Open spans as `(seq, kept)`.
    stack: [Cell<(u64, bool)>; MAX_SPAN_DEPTH],
    /// Ring of the last [`DECISION_RING`] `(seq, kept)` verdicts.
    decisions: [Cell<(u64, bool)>; DECISION_RING],
}

impl SpanTls {
    fn note_decision(&self, seq: u64, kept: bool) {
        self.decisions[(seq % DECISION_RING as u64) as usize].set((seq, kept));
    }

    /// Whether `seq` was kept when recorded on this thread; unknown (old
    /// or cross-thread) seqs default to kept so chains are never
    /// over-pruned.
    fn decision_for(&self, seq: u64) -> bool {
        let (s, kept) = self.decisions[(seq % DECISION_RING as u64) as usize].get();
        s != seq || kept
    }

    fn current_cause_entry(&self) -> Option<(u64, bool)> {
        let d = self.depth.get();
        (d > 0).then(|| self.stack[d - 1].get())
    }
}

thread_local! {
    static SPAN_TLS: SpanTls = const {
        SpanTls {
            depth: Cell::new(0),
            stack: [const { Cell::new((u64::MAX, true)) }; MAX_SPAN_DEPTH],
            decisions: [const { Cell::new((u64::MAX, true)) }; DECISION_RING],
        }
    };
}

/// RAII guard marking the enclosing event as the *cause* of every event
/// recorded (on this host thread) until the guard drops.
///
/// This is how cause chains cross layer boundaries without threading a
/// span id through every signature: the DMA layer records a `DmaUnmap`,
/// opens a span on its seq, and the invalidation-queue events recorded
/// underneath automatically point back at it. The simulator interleaves
/// virtual cores on one host thread only *between* steps, so span
/// nesting is always well-bracketed.
#[derive(Debug)]
pub struct SpanGuard {
    _priv: (),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_TLS.with(|t| t.depth.set(t.depth.get() - 1));
    }
}

/// Opens a cause span: events recorded while the guard lives default
/// their `cause` to `seq` — and inherit `seq`'s sampling verdict, so a
/// sampled-out head's children are sampled out with it.
#[inline]
pub fn span(seq: u64) -> SpanGuard {
    SPAN_TLS.with(|t| {
        let kept = t.decision_for(seq);
        let d = t.depth.get();
        assert!(
            d < MAX_SPAN_DEPTH,
            "trace span nesting exceeded {MAX_SPAN_DEPTH}"
        );
        t.stack[d].set((seq, kept));
        t.depth.set(d + 1);
    });
    SpanGuard { _priv: () }
}

/// The innermost open span's event seq, if any.
pub fn current_cause() -> Option<u64> {
    SPAN_TLS.with(|t| t.current_cause_entry().map(|(seq, _)| seq))
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

/// Bounded, thread-safe event ring buffer.
#[derive(Debug)]
pub struct Tracer {
    ring: Mutex<Ring>,
    capacity: usize,
    /// Sequence allocator — outside the ring lock, so sampled-out events
    /// never touch the `Mutex`.
    next_seq: AtomicU64,
    /// Chain heads seen so far; drives the 1-in-N keep decision.
    heads: AtomicU64,
    /// Keep 1 chain in `period`; 1 records everything.
    sample_period: AtomicU64,
    /// Events skipped by sampling (distinct from ring-overflow `dropped`).
    sampled_out: AtomicU64,
}

/// Default ring capacity (events retained before the oldest are dropped).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Point-in-time retention statistics of a [`Tracer`], so every report
/// can state how complete its event record is (events skipped by chain
/// sampling vs. dropped by ring overflow were previously invisible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Events currently held in the ring.
    pub retained: u64,
    /// Events skipped by chain sampling (never security events).
    pub sampled_out: u64,
    /// Events dropped because the ring was full.
    pub dropped: u64,
    /// Current sampling period (1 = record everything).
    pub sample_period: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            ring: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            heads: AtomicU64::new(0),
            sample_period: AtomicU64::new(1),
            sampled_out: AtomicU64::new(0),
        }
    }

    /// Keeps 1 in `period` cause chains (see the module docs); `0` and
    /// `1` both mean "record everything".
    pub fn set_sample_period(&self, period: u64) {
        self.sample_period.store(period.max(1), Ordering::Relaxed);
    }

    /// Current sampling period (1 = unsampled).
    pub fn sample_period(&self) -> u64 {
        self.sample_period.load(Ordering::Relaxed)
    }

    /// Events skipped by chain sampling (never counts security events;
    /// distinct from ring-overflow [`Tracer::dropped`]).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out.load(Ordering::Relaxed)
    }

    /// Records an event, returning its sequence number (usable as the
    /// `cause` of follow-on events). If a [`span`] is open on this host
    /// thread, the event's cause defaults to it.
    #[inline]
    pub fn record(&self, at: Cycles, core: u16, device: Option<u16>, kind: EventKind) -> u64 {
        SPAN_TLS.with(|t| match t.current_cause_entry() {
            Some((cause, kept)) => self.push(t, at, core, device, Some(cause), Some(kept), kind),
            None => self.push(t, at, core, device, None, None, kind),
        })
    }

    /// Records an event caused by event `cause`.
    #[inline]
    pub fn record_caused(
        &self,
        at: Cycles,
        core: u16,
        device: Option<u16>,
        cause: u64,
        kind: EventKind,
    ) -> u64 {
        SPAN_TLS.with(|t| {
            let kept = t.decision_for(cause);
            self.push(t, at, core, device, Some(cause), Some(kept), kind)
        })
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn push(
        &self,
        tls: &SpanTls,
        at: Cycles,
        core: u16,
        device: Option<u16>,
        cause: Option<u64>,
        cause_kept: Option<bool>,
        kind: EventKind,
    ) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let period = self.sample_period.load(Ordering::Relaxed);
        // Security events always bypass sampling; otherwise chain members
        // follow their head's verdict and heads keep 1 in `period`.
        let security = matches!(
            kind,
            EventKind::AttackBlocked { .. } | EventKind::SanitizerViolation { .. }
        );
        let kept = security
            || period <= 1
            || match cause_kept {
                Some(kept) => kept,
                None => self
                    .heads
                    .fetch_add(1, Ordering::Relaxed)
                    .is_multiple_of(period),
            };
        tls.note_decision(seq, kept);
        if !kept {
            // The sampled-out return is the steady-state path under figure
            // sampling (1 kept chain in 64) — it never touches the ring
            // lock, and `kind` is dropped here (borrowed `Cow`s, no frees).
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
            return seq;
        }
        // A security event recorded under a sampled-out chain is still
        // retained, but its cause pointer would dangle — strip the link
        // rather than export a seq that is not in the ring.
        let cause = if security && cause_kept == Some(false) {
            None
        } else {
            cause
        };
        self.push_retained(Event {
            seq,
            at,
            core,
            device,
            cause,
            kind,
        });
        seq
    }

    /// Ring insertion for a kept event — outlined so the sampled-out fast
    /// path above stays small enough to inline into the record sites.
    #[inline(never)]
    fn push_retained(&self, event: Event) {
        let mut r = self.ring.lock();
        if r.events.len() == self.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back(event);
    }

    /// Snapshot of retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        // One lock hold, one exact-size allocation, one bulk extend.
        let r = self.ring.lock();
        let mut out = Vec::with_capacity(r.events.len());
        out.extend(r.events.iter().cloned());
        out
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Retention statistics: retained / sampled-out / dropped counts and
    /// the sampling period, for report headers and table sinks.
    pub fn stats(&self) -> TraceStats {
        let (retained, dropped) = {
            let r = self.ring.lock();
            (r.events.len() as u64, r.dropped)
        };
        TraceStats {
            retained,
            sampled_out: self.sampled_out(),
            dropped,
            sample_period: self.sample_period(),
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all retained events (keeps the sequence counter).
    pub fn clear(&self) {
        self.ring.lock().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::DmaMap {
            iova: i,
            len: 64,
            dir: Cow::Borrowed("to_device"),
        }
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            let seq = t.record(Cycles(i), 0, None, ev(i));
            assert_eq!(seq, i, "seq numbers monotonic across wrap");
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(t.dropped(), 6);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest dropped, order preserved");
    }

    #[test]
    fn cause_chain_recorded() {
        let t = Tracer::default();
        let m = t.record(Cycles(1), 0, Some(0), ev(0));
        let inv = t.record_caused(
            Cycles(2),
            0,
            Some(0),
            m,
            EventKind::IotlbInvalidate {
                pages: 1,
                wait_cycles: 300,
            },
        );
        let u = t.record_caused(
            Cycles(3),
            0,
            Some(0),
            inv,
            EventKind::DmaUnmap { iova: 0, len: 64 },
        );
        let evs = t.events();
        assert_eq!(evs[1].cause, Some(m));
        assert_eq!(evs[2].seq, u);
        assert_eq!(evs[2].cause, Some(inv));
    }

    #[test]
    fn concurrent_records_unique_seqs() {
        let t = std::sync::Arc::new(Tracer::default());
        std::thread::scope(|s| {
            for c in 0..4u16 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        t.record(Cycles(i), c, None, ev(i));
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 4000);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000, "no duplicated sequence numbers");
    }

    #[test]
    fn sampling_keeps_whole_chains() {
        let t = Tracer::default();
        t.set_sample_period(4);
        assert_eq!(t.sample_period(), 4);
        // 100 chains of head + 2 children (one via span, one explicit).
        for i in 0..100u64 {
            let head = t.record(Cycles(i), 0, None, ev(i));
            let _g = span(head);
            let mid = t.record(
                Cycles(i),
                0,
                None,
                EventKind::IotlbInvalidate {
                    pages: 1,
                    wait_cycles: 10,
                },
            );
            t.record_caused(
                Cycles(i),
                0,
                None,
                mid,
                EventKind::DmaUnmap { iova: i, len: 64 },
            );
        }
        let evs = t.events();
        // 1-in-4 heads kept, each with its full chain.
        assert_eq!(evs.len(), 75, "25 of 100 chains retained, 3 events each");
        assert_eq!(t.sampled_out(), 225);
        let retained: std::collections::HashSet<u64> = evs.iter().map(|e| e.seq).collect();
        for e in &evs {
            if let Some(c) = e.cause {
                assert!(
                    retained.contains(&c),
                    "event #{} retained but its cause #{c} was sampled out",
                    e.seq
                );
            }
        }
    }

    #[test]
    fn security_events_bypass_sampling() {
        let t = Tracer::default();
        t.set_sample_period(1_000_000);
        t.record(Cycles(0), 0, None, ev(0)); // head: kept (first of period)
        for i in 1..50u64 {
            t.record(Cycles(i), 0, None, ev(i)); // heads: sampled out
        }
        t.record(
            Cycles(50),
            0,
            Some(1),
            EventKind::AttackBlocked {
                iova: 0xbad,
                access: Cow::Borrowed("write"),
                reason: Cow::Borrowed("not_mapped"),
            },
        );
        t.record(
            Cycles(51),
            0,
            Some(1),
            EventKind::SanitizerViolation {
                rule: Cow::Borrowed("stale_access"),
                iova: 0xbad,
                detail: Cow::Borrowed("use after unmap"),
            },
        );
        let names: Vec<&str> = t.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, ["DmaMap", "AttackBlocked", "SanitizerViolation"]);
    }

    #[test]
    fn sampled_out_is_separate_from_dropped() {
        let t = Tracer::with_capacity(4);
        t.set_sample_period(2);
        for i in 0..20u64 {
            t.record(Cycles(i), 0, None, ev(i));
        }
        assert_eq!(t.sampled_out(), 10, "every other chain head skipped");
        assert_eq!(t.dropped(), 6, "10 kept, ring holds 4");
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.stats(),
            TraceStats {
                retained: 4,
                sampled_out: 10,
                dropped: 6,
                sample_period: 2,
            }
        );
        // Disabling sampling restores record-everything behavior.
        t.set_sample_period(0);
        let before = t.sampled_out();
        t.record(Cycles(99), 0, None, ev(99));
        assert_eq!(t.sampled_out(), before);
    }
}
