//! Bounded ring-buffer event tracer.
//!
//! Every structurally interesting action in the stack — a DMA map, an
//! IOTLB invalidation, a pool grow, a blocked malicious access — is
//! recorded as a timestamped [`Event`]. Events form **cause chains**: an
//! event may name the `seq` of the event that caused it, so a single
//! `DmaUnmap` can be attributed to the `IotlbInvalidate` (and its wait)
//! it triggered.
//!
//! The buffer is bounded: when full, the oldest events are dropped and
//! counted in [`Tracer::dropped`], so tracing never grows without bound
//! during long experiments.

use simcore::sync::Mutex;
use simcore::Cycles;
use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;

/// Structured payload of a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A buffer was mapped for DMA.
    DmaMap {
        /// Device-visible address of the mapping.
        iova: u64,
        /// Mapping length in bytes.
        len: u64,
        /// Transfer direction (`to_device`, `from_device`, `bidirectional`).
        dir: Cow<'static, str>,
    },
    /// A DMA mapping was destroyed.
    DmaUnmap {
        /// Device-visible address of the mapping.
        iova: u64,
        /// Mapping length in bytes.
        len: u64,
    },
    /// The IOMMU invalidation queue completed a synchronous invalidation.
    IotlbInvalidate {
        /// Pages invalidated (0 for a full device flush).
        pages: u64,
        /// Cycles spent waiting on the wait descriptor.
        wait_cycles: u64,
    },
    /// The shadow pool grew a size class.
    PoolGrow {
        /// Size class index.
        class: u64,
        /// Bytes of shadow memory added.
        bytes: u64,
    },
    /// The shadow pool released memory back (reclaim).
    PoolShrink {
        /// Bytes of shadow memory returned.
        bytes: u64,
    },
    /// The shadow pool fell back to a transient strict mapping.
    FallbackAcquire {
        /// Device-visible address of the fallback mapping.
        iova: u64,
        /// Mapping length in bytes.
        len: u64,
    },
    /// The IOMMU blocked a device access — a (potential) DMA attack.
    AttackBlocked {
        /// Address the device attempted to touch.
        iova: u64,
        /// Attempted access (`read` / `write`).
        access: Cow<'static, str>,
        /// Why it was blocked (`not_mapped` / `permission_denied`).
        reason: Cow<'static, str>,
    },
    /// A virtual-time lock acquisition spun on contention.
    LockContention {
        /// Which lock (e.g. `invalq`).
        lock: Cow<'static, str>,
        /// Cycles spent spinning.
        spin_cycles: u64,
    },
    /// The DMA sanitizer (`dmasan`) detected a DMA-API misuse.
    SanitizerViolation {
        /// Which dma-debug rule fired (`double_map`, `double_unmap`,
        /// `unmap_mismatch`, `stale_access`, `oob_access`, `leak`).
        rule: Cow<'static, str>,
        /// Device-visible address the violation concerns.
        iova: u64,
        /// Human-readable description of the violation.
        detail: Cow<'static, str>,
    },
    /// A lock was acquired (lockset instrumentation; detail-gated).
    LockAcquire {
        /// Which lock (e.g. `iommu-invalidation-queue`).
        lock: Cow<'static, str>,
    },
    /// A lock was released (lockset instrumentation; detail-gated).
    LockRelease {
        /// Which lock (e.g. `iommu-invalidation-queue`).
        lock: Cow<'static, str>,
    },
    /// A shared variable was touched (lockset instrumentation;
    /// detail-gated). The Eraser-style detector intersects the locks
    /// held across these accesses.
    SharedAccess {
        /// Which shared variable (e.g. `invalq.commands`).
        var: Cow<'static, str>,
        /// True for a write access, false for a read.
        write: bool,
    },
}

impl EventKind {
    /// Stable name used by sinks (`"DmaMap"`, `"AttackBlocked"`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::DmaMap { .. } => "DmaMap",
            EventKind::DmaUnmap { .. } => "DmaUnmap",
            EventKind::IotlbInvalidate { .. } => "IotlbInvalidate",
            EventKind::PoolGrow { .. } => "PoolGrow",
            EventKind::PoolShrink { .. } => "PoolShrink",
            EventKind::FallbackAcquire { .. } => "FallbackAcquire",
            EventKind::AttackBlocked { .. } => "AttackBlocked",
            EventKind::LockContention { .. } => "LockContention",
            EventKind::SanitizerViolation { .. } => "SanitizerViolation",
            EventKind::LockAcquire { .. } => "LockAcquire",
            EventKind::LockRelease { .. } => "LockRelease",
            EventKind::SharedAccess { .. } => "SharedAccess",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (unique per tracer, never reused).
    pub seq: u64,
    /// Virtual timestamp (simulated cycles) when the event occurred.
    pub at: Cycles,
    /// Virtual core that performed the action.
    pub core: u16,
    /// Device the action concerns, if any.
    pub device: Option<u16>,
    /// `seq` of the event that caused this one, forming a cause chain.
    pub cause: Option<u64>,
    /// Structured payload.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] core{} {}{}",
            self.at.0,
            self.core,
            self.kind.name(),
            match self.cause {
                Some(c) => format!(" (cause #{c})"),
                None => String::new(),
            }
        )
    }
}

thread_local! {
    static CAUSE_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII guard marking the enclosing event as the *cause* of every event
/// recorded (on this host thread) until the guard drops.
///
/// This is how cause chains cross layer boundaries without threading a
/// span id through every signature: the DMA layer records a `DmaUnmap`,
/// opens a span on its seq, and the invalidation-queue events recorded
/// underneath automatically point back at it. The simulator interleaves
/// virtual cores on one host thread only *between* steps, so span
/// nesting is always well-bracketed.
#[derive(Debug)]
pub struct SpanGuard {
    _priv: (),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CAUSE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Opens a cause span: events recorded while the guard lives default
/// their `cause` to `seq`.
pub fn span(seq: u64) -> SpanGuard {
    CAUSE_STACK.with(|s| s.borrow_mut().push(seq));
    SpanGuard { _priv: () }
}

/// The innermost open span's event seq, if any.
pub fn current_cause() -> Option<u64> {
    CAUSE_STACK.with(|s| s.borrow().last().copied())
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded, thread-safe event ring buffer.
#[derive(Debug)]
pub struct Tracer {
    ring: Mutex<Ring>,
    capacity: usize,
}

/// Default ring capacity (events retained before the oldest are dropped).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            ring: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
        }
    }

    /// Records an event, returning its sequence number (usable as the
    /// `cause` of follow-on events). If a [`span`] is open on this host
    /// thread, the event's cause defaults to it.
    pub fn record(&self, at: Cycles, core: u16, device: Option<u16>, kind: EventKind) -> u64 {
        self.push(at, core, device, current_cause(), kind)
    }

    /// Records an event caused by event `cause`.
    pub fn record_caused(
        &self,
        at: Cycles,
        core: u16,
        device: Option<u16>,
        cause: u64,
        kind: EventKind,
    ) -> u64 {
        self.push(at, core, device, Some(cause), kind)
    }

    fn push(
        &self,
        at: Cycles,
        core: u16,
        device: Option<u16>,
        cause: Option<u64>,
        kind: EventKind,
    ) -> u64 {
        let mut r = self.ring.lock();
        let seq = r.next_seq;
        r.next_seq += 1;
        if r.events.len() == self.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back(Event {
            seq,
            at,
            core,
            device,
            cause,
            kind,
        });
        seq
    }

    /// Snapshot of retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.lock().events.iter().cloned().collect()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all retained events (keeps the sequence counter).
    pub fn clear(&self) {
        self.ring.lock().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::DmaMap {
            iova: i,
            len: 64,
            dir: Cow::Borrowed("to_device"),
        }
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            let seq = t.record(Cycles(i), 0, None, ev(i));
            assert_eq!(seq, i, "seq numbers monotonic across wrap");
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(t.dropped(), 6);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest dropped, order preserved");
    }

    #[test]
    fn cause_chain_recorded() {
        let t = Tracer::default();
        let m = t.record(Cycles(1), 0, Some(0), ev(0));
        let inv = t.record_caused(
            Cycles(2),
            0,
            Some(0),
            m,
            EventKind::IotlbInvalidate {
                pages: 1,
                wait_cycles: 300,
            },
        );
        let u = t.record_caused(
            Cycles(3),
            0,
            Some(0),
            inv,
            EventKind::DmaUnmap { iova: 0, len: 64 },
        );
        let evs = t.events();
        assert_eq!(evs[1].cause, Some(m));
        assert_eq!(evs[2].seq, u);
        assert_eq!(evs[2].cause, Some(inv));
    }

    #[test]
    fn concurrent_records_unique_seqs() {
        let t = std::sync::Arc::new(Tracer::default());
        std::thread::scope(|s| {
            for c in 0..4u16 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        t.record(Cycles(i), c, None, ev(i));
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 4000);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000, "no duplicated sequence numbers");
    }
}
