//! Flight recorder: post-mortem JSONL dumps of the stack's telemetry.
//!
//! When something goes wrong — the IOMMU blocks a DMA attack
//! (`AttackBlocked`), the sanitizer flags an API misuse
//! (`SanitizerViolation`), or the process panics (dmasan strict mode
//! panics on violation) — the interesting state is what happened *just
//! before*. An armed recorder dumps, as one replayable JSON-lines
//! document:
//!
//! 1. a `{"type":"run","kind":"flight","reason":...}` header carrying
//!    the trigger, the virtual time, and the tracer's retention stats,
//! 2. the full registry snapshot (`{"type":"metric",...}` lines),
//! 3. every collected profile tree (`{"type":"profile",...}` lines),
//! 4. the last-N retained trace events (`{"type":"event",...}` lines).
//!
//! The document round-trips through [`crate::sink::parse_jsonl`] +
//! [`crate::sink::event_from_json`] +
//! [`crate::profile::ProfileSnapshot::from_json_lines`], so a dump can
//! be replayed by the same tooling that reads `BENCH_*.json`
//! trajectories.
//!
//! Security-event triggers are wired inside [`Obs::trace`] /
//! [`Obs::trace_caused`]; panics are caught by
//! [`install_panic_hook`], which chains the previously installed hook.
//! Dump storms are bounded by a max-dump budget (default
//! [`DEFAULT_MAX_DUMPS`]).
//!
// lint: allow(ambient-io) — the flight recorder's purpose is writing crash dumps to disk

use crate::json::Json;
use crate::sink;
use crate::Obs;
use simcore::sync::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default number of trailing trace events included in a dump.
pub const DEFAULT_LAST_N: usize = 256;

/// Default cap on dumps written per recorder (bounds dump storms when
/// e.g. a malicious device scan blocks thousands of probes).
pub const DEFAULT_MAX_DUMPS: u64 = 4;

#[derive(Debug, Clone)]
struct FlightCfg {
    dir: PathBuf,
    last_n: usize,
    max_dumps: u64,
}

impl Default for FlightCfg {
    fn default() -> Self {
        FlightCfg {
            dir: PathBuf::from("target/flight"),
            last_n: DEFAULT_LAST_N,
            max_dumps: DEFAULT_MAX_DUMPS,
        }
    }
}

/// The flight recorder riding inside every [`Obs`] handle
/// (see [`Obs::flight`]). Disarmed by default: ordinary runs pay one
/// relaxed load per security event and nothing otherwise.
pub struct FlightRecorder {
    armed: AtomicBool,
    dumps: AtomicU64,
    cfg: Mutex<FlightCfg>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .field("dumps", &self.dumps.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder {
            armed: AtomicBool::new(false),
            dumps: AtomicU64::new(0),
            cfg: Mutex::new(FlightCfg::default()),
        }
    }
}

impl FlightRecorder {
    /// Arms the recorder: dumps go to `dir`, carrying the last `last_n`
    /// trace events. Resets the dump budget.
    pub fn arm(&self, dir: impl Into<PathBuf>, last_n: usize) {
        {
            let mut cfg = self.cfg.lock();
            cfg.dir = dir.into();
            cfg.last_n = last_n.max(1);
        }
        self.dumps.store(0, Ordering::Relaxed);
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Disarms the recorder; no further dumps are written.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// True when armed.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Caps how many dumps this recorder will write before going quiet.
    pub fn set_max_dumps(&self, n: u64) {
        self.cfg.lock().max_dumps = n;
    }

    /// Number of dumps written so far.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Takes one unit of dump budget; `None` when exhausted/disarmed.
    fn take_budget(&self) -> Option<FlightCfg> {
        if !self.armed() {
            return None;
        }
        let cfg = self.cfg.lock().clone();
        self.dumps
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < cfg.max_dumps).then_some(n + 1)
            })
            .ok()
            .map(|_| cfg)
    }
}

/// Assembles a flight dump for `obs` as a JSON-lines string: header,
/// registry snapshot, profile trees, then the last `last_n` trace
/// events. Pure (no I/O) — the disk path is [`dump_now`].
pub fn dump_string(obs: &Obs, reason: &str, last_n: usize) -> String {
    let stats = obs.tracer().stats();
    let header = Json::Obj(vec![
        ("type".into(), Json::Str("run".into())),
        ("kind".into(), Json::Str("flight".into())),
        ("reason".into(), Json::Str(reason.into())),
        ("at".into(), Json::UInt(obs.now_hint().0)),
        ("trace_retained".into(), Json::UInt(stats.retained)),
        ("trace_sampled_out".into(), Json::UInt(stats.sampled_out)),
        ("trace_dropped".into(), Json::UInt(stats.dropped)),
        (
            "trace_sample_period".into(),
            Json::UInt(stats.sample_period),
        ),
    ]);
    let mut out = header.encode();
    out.push('\n');
    for line in sink::metric_lines(&obs.registry().snapshot()) {
        out.push_str(&line.encode());
        out.push('\n');
    }
    for line in obs.profiler().snapshot().to_json_lines() {
        out.push_str(&line.encode());
        out.push('\n');
    }
    let events = obs.tracer().events();
    let start = events.len().saturating_sub(last_n);
    for e in &events[start..] {
        out.push_str(&sink::event_line(e).encode());
        out.push('\n');
    }
    out
}

fn sanitize(reason: &str) -> String {
    reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(40)
        .collect()
}

/// Writes one dump if the recorder is armed and under budget; returns
/// the file path on success. Write errors are swallowed (the recorder
/// must never take the stack down with it).
pub fn dump_now(obs: &Obs, reason: &str) -> Option<PathBuf> {
    let cfg = obs.flight().take_budget()?;
    let doc = dump_string(obs, reason, cfg.last_n);
    let seq = obs.flight().dumps();
    let path = cfg
        .dir
        .join(format!("flight-{seq:03}-{}.jsonl", sanitize(reason)));
    if std::fs::create_dir_all(&cfg.dir).is_err() {
        return None;
    }
    match std::fs::write(&path, doc) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Installs a process-wide panic hook that writes a flight dump for
/// `obs` (reason `"panic"`) before delegating to the previously
/// installed hook. dmasan's strict mode panics on violation, so this is
/// the strict-mode trigger path; arm the recorder first.
pub fn install_panic_hook(obs: &Obs) {
    let prev = std::panic::take_hook();
    let obs = obs.clone();
    std::panic::set_hook(Box::new(move |info| {
        dump_now(&obs, "panic");
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;
    use crate::sink::{event_from_json, parse_jsonl};
    use crate::trace::EventKind;
    use simcore::{CoreCtx, CoreId, CostModel, Cycles, Phase};
    use std::borrow::Cow;
    use std::sync::Arc;

    fn seeded_obs() -> Obs {
        let obs = Obs::isolated();
        obs.profiler().set_enabled(true);
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
        profile::task_scope(&obs, &mut ctx, "copy", Some(0), "rx", |ctx| {
            ctx.charge(Phase::Memcpy, Cycles(77));
        });
        obs.counter("pool", "acquires", Some(0)).add(3);
        for i in 0..10u64 {
            obs.trace(
                Cycles(i),
                0,
                Some(0),
                EventKind::DmaMap {
                    iova: i,
                    len: 64,
                    dir: Cow::Borrowed("from_device"),
                },
            );
        }
        obs.set_now_hint(Cycles(10));
        obs
    }

    #[test]
    fn dump_roundtrips_through_jsonl_parsers() {
        let obs = seeded_obs();
        let doc = dump_string(&obs, "unit-test", 4);
        let lines = parse_jsonl(&doc).ok().unwrap_or_default();
        // Header carries the trigger and trace stats.
        let header = &lines[0];
        assert_eq!(header.get("kind").and_then(Json::as_str), Some("flight"));
        assert_eq!(
            header.get("reason").and_then(Json::as_str),
            Some("unit-test")
        );
        assert_eq!(
            header.get("trace_retained").and_then(Json::as_u64),
            Some(10)
        );
        // Events decode losslessly and only the tail is kept.
        let events: Vec<_> = lines
            .iter()
            .filter(|l| l.get("type").and_then(Json::as_str) == Some("event"))
            .map(event_from_json)
            .collect::<Result<_, _>>()
            .ok()
            .unwrap_or_default();
        assert_eq!(events.len(), 4, "last-N tail only");
        assert_eq!(events[0].seq, 6);
        // The profile tree reconstructs.
        let prof = profile::ProfileSnapshot::from_json_lines(&lines)
            .ok()
            .unwrap_or_default();
        assert_eq!(prof, obs.profiler().snapshot());
        assert_eq!(prof.merged(Some("copy")).total(), 77);
        // Metrics are present.
        assert!(lines
            .iter()
            .any(|l| l.get("key").and_then(Json::as_str) == Some("pool.acquires{dev0}")));
    }

    #[test]
    fn security_event_triggers_armed_dump() {
        let obs = seeded_obs();
        let dir = std::path::Path::new("target").join("flight-test-security");
        let _ = std::fs::remove_dir_all(&dir);
        obs.flight().arm(&dir, 8);
        obs.flight().set_max_dumps(2);
        for _ in 0..5 {
            obs.trace(
                Cycles(100),
                0,
                Some(13),
                EventKind::AttackBlocked {
                    iova: 0xbad,
                    access: Cow::Borrowed("read"),
                    reason: Cow::Borrowed("not_mapped"),
                },
            );
        }
        let files: Vec<_> = std::fs::read_dir(&dir)
            .ok()
            .map(|d| d.flatten().collect())
            .unwrap_or_default();
        assert_eq!(files.len(), 2, "dump budget caps the storm");
        // The dumped security event survives the round trip.
        let doc = std::fs::read_to_string(files[0].path())
            .ok()
            .unwrap_or_default();
        let lines = parse_jsonl(&doc).ok().unwrap_or_default();
        assert!(lines
            .iter()
            .any(|l| { l.get("event").and_then(Json::as_str) == Some("AttackBlocked") }));
    }

    #[test]
    fn disarmed_recorder_writes_nothing() {
        let obs = seeded_obs();
        assert_eq!(dump_now(&obs, "nope"), None);
        obs.trace(
            Cycles(1),
            0,
            None,
            EventKind::SanitizerViolation {
                rule: Cow::Borrowed("leak"),
                iova: 1,
                detail: Cow::Borrowed("x"),
            },
        );
        assert_eq!(obs.flight().dumps(), 0);
    }

    #[test]
    fn panic_hook_dumps_before_unwinding() {
        let obs = seeded_obs();
        let dir = std::path::Path::new("target").join("flight-test-panic");
        let _ = std::fs::remove_dir_all(&dir);
        obs.flight().arm(&dir, 8);
        install_panic_hook(&obs);
        let caught = std::panic::catch_unwind(|| panic!("strict violation"));
        obs.flight().disarm();
        assert!(caught.is_err());
        let n = std::fs::read_dir(&dir).ok().map(|d| d.count()).unwrap_or(0);
        assert!(n >= 1, "panic produced a dump");
    }
}
