//! Bridge between [`simcore::Breakdown`] (the hot-path per-core phase
//! accumulator) and the metric [`Registry`].
//!
//! `simcore` sits below `obs` in the dependency graph, so `CoreCtx`
//! accumulates phase cycles locally; at collection points (end of a
//! workload run) the accumulated breakdown is published to the registry
//! as `phase.<slug>{device}` counters. The registry is then the single
//! source of truth: [`breakdown_view`] reconstitutes a [`Breakdown`]
//! from registry counters, which is what reporting reads.

use crate::metrics::{MetricKey, Registry};
use simcore::{Breakdown, Cycles, Phase};

/// Metric-name slug for a phase (`subsystem.name` friendly).
pub fn phase_slug(p: Phase) -> &'static str {
    match p {
        Phase::CopyMgmt => "copy_mgmt",
        Phase::Spinlock => "spinlock",
        Phase::InvalidateIotlb => "invalidate_iotlb",
        Phase::IommuPageTableMgmt => "iommu_page_table_mgmt",
        Phase::Memcpy => "memcpy",
        Phase::RxParsing => "rx_parsing",
        Phase::CopyUser => "copy_user",
        Phase::Other => "other",
    }
}

/// Subsystem under which phase counters are registered.
pub const PHASE_SUBSYSTEM: &str = "phase";

/// Publishes `b` into `registry` as `phase.<slug>{device}` counters
/// (adds to whatever is already there, mirroring `Breakdown: AddAssign`).
pub fn record_breakdown(registry: &Registry, device: Option<u16>, b: &Breakdown) {
    for p in Phase::ALL {
        let cycles = b.get(p);
        if cycles > Cycles::ZERO {
            registry
                .counter(MetricKey::new(PHASE_SUBSYSTEM, phase_slug(p), device))
                .add(cycles.0);
        }
    }
}

/// Reconstitutes a [`Breakdown`] from the registry's phase counters —
/// the thin-view direction: reports read this, not private accumulators.
pub fn breakdown_view(registry: &Registry, device: Option<u16>) -> Breakdown {
    let mut b = Breakdown::default();
    for p in Phase::ALL {
        let c = registry.counter(MetricKey::new(PHASE_SUBSYSTEM, phase_slug(p), device));
        b.record(p, Cycles(c.get()));
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_registry() {
        let r = Registry::new();
        let mut b = Breakdown::default();
        b.record(Phase::Memcpy, Cycles(1000));
        b.record(Phase::Spinlock, Cycles(7));
        record_breakdown(&r, None, &b);
        assert_eq!(breakdown_view(&r, None), b);

        // Recording again accumulates, like AddAssign.
        record_breakdown(&r, None, &b);
        assert_eq!(breakdown_view(&r, None).get(Phase::Memcpy), Cycles(2000));
    }

    #[test]
    fn slugs_unique() {
        let mut slugs: Vec<_> = Phase::ALL.iter().map(|&p| phase_slug(p)).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 8);
    }
}
