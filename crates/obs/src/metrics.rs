//! The metrics registry: counters, gauges and log-bucketed histograms
//! keyed by `(subsystem, name, device)`.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones of the underlying atomic cells: a component fetches its handles
//! once at construction and updates them lock-free on the hot path. The
//! registry itself is only locked when creating/adopting metrics or taking
//! a [`RegistrySnapshot`].

use simcore::sync::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of a metric: `subsystem.name{device}`.
///
/// `device` is the raw [`u16`] device id (`iommu::DeviceId.0`); it is kept
/// as a bare integer here so `obs` sits below the `iommu` crate in the
/// dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Owning subsystem, e.g. `"pool"`, `"invalq"`, `"dma"`.
    pub subsystem: &'static str,
    /// Metric name within the subsystem, e.g. `"acquires"`.
    pub name: &'static str,
    /// Optional device the metric is scoped to.
    pub device: Option<u16>,
}

impl MetricKey {
    /// Builds a key.
    pub fn new(subsystem: &'static str, name: &'static str, device: Option<u16>) -> Self {
        MetricKey {
            subsystem,
            name,
            device,
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(d) => write!(f, "{}.{}{{dev{}}}", self.subsystem, self.name, d),
            None => write!(f, "{}.{}", self.subsystem, self.name),
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Resets to zero (used when an experiment re-baselines after warmup).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a signed value that can move both ways, with monotonic-max
/// support for peak tracking.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` and returns the new value.
    ///
    /// All gauge orderings are `Relaxed`: metrics are statistics, never
    /// synchronization — readers only need eventual totals (thread joins
    /// and lock hand-offs already order the interesting snapshots).
    pub fn add(&self, n: i64) -> i64 {
        self.cell.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Subtracts `n` and returns the new value.
    pub fn sub(&self, n: i64) -> i64 {
        self.add(-n)
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    pub fn set_max(&self, v: i64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` holds
/// values whose bit length is `i`, i.e. `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value (log2 bucketing).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed (power-of-two) histogram of `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate percentile (`p` in `[0,1]`): the upper bound of the
    /// bucket where the cumulative count crosses `p * count`.
    pub fn percentile(&self, p: f64) -> u64 {
        let snap = self.snapshot();
        snap.percentile(p)
    }

    /// Consistent-enough snapshot of the bucket array.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.cells.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_upper_bound(i), c));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Point-in-time view of a [`Histogram`]: `(upper_bound, count)` pairs for
/// the non-empty buckets, in ascending bound order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (see [`Histogram::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0;
        for &(bound, c) in &self.buckets {
            cum += c;
            if cum >= target.max(1) {
                return bound;
            }
        }
        self.buckets.last().map(|&(b, _)| b).unwrap_or(0)
    }

    /// Percentile with **within-bucket linear interpolation**.
    ///
    /// [`HistogramSnapshot::percentile`] returns the containing bucket's
    /// *upper bound*, which with power-of-two buckets overstates tail
    /// percentiles by up to 2×. This variant assumes samples are spread
    /// uniformly inside each bucket and interpolates between the
    /// bucket's lower and upper bound; for distributions that fill a
    /// bucket uniformly it is exact. Returns 0.0 for an empty histogram.
    pub fn percentile_interp(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = p.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for &(upper, c) in &self.buckets {
            let next = cum + c;
            if next as f64 >= target {
                let lower = bucket_lower_bound(upper);
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lower as f64 + frac * (upper - lower) as f64;
            }
            cum = next;
        }
        self.buckets.last().map(|&(b, _)| b as f64).unwrap_or(0.0)
    }

    /// Accumulates `other` into `self` (cross-core aggregation): counts
    /// and sums add, bucket lists merge by upper bound.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let a = self.buckets.get(i).copied();
            let b = other.buckets.get(j).copied();
            match (a, b) {
                (Some((ba, ca)), Some((bb, _))) if ba < bb => {
                    merged.push((ba, ca));
                    i += 1;
                }
                (Some((ba, _)), Some((bb, cb))) if bb < ba => {
                    merged.push((bb, cb));
                    j += 1;
                }
                (Some((ba, ca)), Some((_, cb))) => {
                    merged.push((ba, ca + cb));
                    i += 1;
                    j += 1;
                }
                (Some((ba, ca)), None) => {
                    merged.push((ba, ca));
                    i += 1;
                }
                (None, Some((bb, cb))) => {
                    merged.push((bb, cb));
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// Inclusive lower bound of the bucket whose upper bound is `upper`
/// (inverse companion of [`bucket_upper_bound`]).
fn bucket_lower_bound(upper: u64) -> u64 {
    if upper == 0 {
        0
    } else {
        (upper >> 1) + 1
    }
}

#[derive(Default)]
struct Tables {
    counters: HashMap<MetricKey, Counter>,
    gauges: HashMap<MetricKey, Gauge>,
    histograms: HashMap<MetricKey, Histogram>,
}

/// The metric registry: the single authoritative store for every counter,
/// gauge and histogram in a simulation stack.
#[derive(Default)]
pub struct Registry {
    tables: RwLock<Tables>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.tables.read();
        f.debug_struct("Registry")
            .field("counters", &t.counters.len())
            .field("gauges", &t.gauges.len())
            .field("histograms", &t.histograms.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter for `key`, returning a shared handle.
    pub fn counter(&self, key: MetricKey) -> Counter {
        if let Some(c) = self.tables.read().counters.get(&key) {
            return c.clone();
        }
        self.tables.write().counters.entry(key).or_default().clone()
    }

    /// Gets or creates the gauge for `key`.
    pub fn gauge(&self, key: MetricKey) -> Gauge {
        if let Some(g) = self.tables.read().gauges.get(&key) {
            return g.clone();
        }
        self.tables.write().gauges.entry(key).or_default().clone()
    }

    /// Gets or creates the histogram for `key`.
    pub fn histogram(&self, key: MetricKey) -> Histogram {
        if let Some(h) = self.tables.read().histograms.get(&key) {
            return h.clone();
        }
        self.tables
            .write()
            .histograms
            .entry(key)
            .or_default()
            .clone()
    }

    /// Registers an existing counter handle under `key`, sharing its cell.
    ///
    /// Used when a component is re-homed onto a shared registry after
    /// construction: increments made through the old handle stay visible.
    pub fn adopt_counter(&self, key: MetricKey, c: &Counter) {
        self.tables.write().counters.insert(key, c.clone());
    }

    /// Registers an existing gauge handle under `key`.
    pub fn adopt_gauge(&self, key: MetricKey, g: &Gauge) {
        self.tables.write().gauges.insert(key, g.clone());
    }

    /// Registers an existing histogram handle under `key`.
    pub fn adopt_histogram(&self, key: MetricKey, h: &Histogram) {
        self.tables.write().histograms.insert(key, h.clone());
    }

    /// Takes a snapshot of every metric, sorted by key for deterministic
    /// rendering.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let t = self.tables.read();
        let mut counters: Vec<_> = t.counters.iter().map(|(k, c)| (*k, c.get())).collect();
        let mut gauges: Vec<_> = t.gauges.iter().map(|(k, g)| (*k, g.get())).collect();
        let mut histograms: Vec<_> = t
            .histograms
            .iter()
            .map(|(k, h)| (*k, h.snapshot()))
            .collect();
        counters.sort_by_key(|&(k, _)| k);
        gauges.sort_by_key(|&(k, _)| k);
        histograms.sort_by_key(|a| a.0);
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time, deterministically ordered view of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Looks up a counter value by key components.
    pub fn counter(&self, subsystem: &str, name: &str, device: Option<u16>) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k.subsystem == subsystem && k.name == name && k.device == device)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge value by key components.
    pub fn gauge(&self, subsystem: &str, name: &str, device: Option<u16>) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.subsystem == subsystem && k.name == name && k.device == device)
            .map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_display_convention() {
        assert_eq!(
            MetricKey::new("pool", "acquires", Some(3)).to_string(),
            "pool.acquires{dev3}"
        );
        assert_eq!(
            MetricKey::new("invalq", "waits", None).to_string(),
            "invalq.waits"
        );
    }

    #[test]
    fn counter_handles_share_cell() {
        let r = Registry::new();
        let k = MetricKey::new("a", "b", None);
        let c1 = r.counter(k);
        let c2 = r.counter(k);
        c1.add(2);
        c2.inc();
        assert_eq!(r.snapshot().counter("a", "b", None), Some(3));
    }

    #[test]
    fn adopt_preserves_counts() {
        let old = Registry::new();
        let k = MetricKey::new("pool", "acquires", Some(0));
        let c = old.counter(k);
        c.add(7);
        let shared = Registry::new();
        shared.adopt_counter(k, &c);
        c.inc();
        assert_eq!(
            shared.snapshot().counter("pool", "acquires", Some(0)),
            Some(8)
        );
    }

    #[test]
    fn gauge_peaks() {
        let g = Gauge::default();
        g.add(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.sub(4);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // 0 → bucket 0; 1 → bucket 1; powers of two land in a fresh bucket;
        // 2^i - 1 stays in bucket i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 255, 256, 257, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (3, 2), (1023, 1)]);
        assert_eq!(snap.percentile(0.5), 3);
        assert_eq!(snap.percentile(1.0), 1023);
    }

    #[test]
    fn percentile_interp_exact_on_bucket_uniform() {
        // 256..=511 once each fills bucket 9 uniformly: interpolation is
        // exact, while the upper-bound percentile pins at 511.
        let h = Histogram::default();
        for v in 256..=511u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.50), 511, "upper bound overstates");
        assert!((snap.percentile_interp(0.50) - 383.5).abs() < 1e-9);
        assert!((snap.percentile_interp(0.99) - 508.45).abs() < 1e-9);
        assert!((snap.percentile_interp(0.999) - 510.745).abs() < 1e-9);
        assert!((snap.percentile_interp(1.0) - 511.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interp_known_small_distribution() {
        // Same distribution as `histogram_stats`: buckets
        // [(0,1),(1,1),(3,2),(1023,1)], count 5.
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        // p50: target 2.5 lands in bucket [2,3] at frac 0.25 -> 2.25.
        assert!((snap.percentile_interp(0.50) - 2.25).abs() < 1e-9);
        // p99: target 4.95 lands in bucket [512,1023] at frac 0.95.
        assert!((snap.percentile_interp(0.99) - (512.0 + 0.95 * 511.0)).abs() < 1e-9);
        // p999 stays below the bare upper bound the old API returns.
        assert!(snap.percentile_interp(0.999) < snap.percentile(0.999) as f64);
        assert_eq!(snap.percentile(0.999), 1023);
    }

    #[test]
    fn percentile_interp_tail_overstatement_halved() {
        // 1..=1000 uniform: true p50 is 500.5; the upper-bound variant
        // answers 511, interpolation lands within 1%.
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.50), 511);
        let p50 = snap.percentile_interp(0.50);
        assert!((p50 - 500.5).abs() < 5.0, "p50 interp = {p50}");
        let p99 = snap.percentile_interp(0.99);
        assert!(p99 < 1023.0, "p99 interp = {p99} must beat the bound");
        assert!(snap.percentile_interp(0.0) >= 0.0);
        assert_eq!(HistogramSnapshot::default().percentile_interp(0.5), 0.0);
    }

    #[test]
    fn merge_matches_single_stream() {
        // Two per-core histograms merged equal one histogram that saw
        // both streams — the cross-core aggregation use case.
        let (a, b, both) = (
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        );
        for v in [1u64, 5, 9, 100, 3000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 2, 100, 4096, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        assert_eq!(merged.count, 10);
        assert_eq!(merged.mean(), both.snapshot().mean());
        for p in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.percentile(p), both.snapshot().percentile(p));
            assert!(
                (merged.percentile_interp(p) - both.snapshot().percentile_interp(p)).abs() < 1e-9
            );
        }
        // Merging an empty snapshot is the identity.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn concurrent_counter_increments() {
        let r = Arc::new(Registry::new());
        let k = MetricKey::new("t", "n", None);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    let c = r.counter(k);
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counter("t", "n", None), Some(80_000));
    }
}
