//! Property tests for cause-chain integrity under trace sampling.
//!
//! The tracer keeps 1-in-N *cause chains*: the keep/drop verdict is made
//! once per chain head and inherited by members. Two properties must
//! hold at **every** sampling period, for arbitrary interleavings of
//! spans, explicit causes and security events:
//!
//! 1. a retained event never names a sampled-out parent seq as its
//!    cause (`record_caused` and span inheritance agree with the head's
//!    verdict), and
//! 2. security events (`AttackBlocked`, `SanitizerViolation`) are
//!    always retained.
//!
//! Randomized with the in-tree deterministic [`SimRng`] across many
//! seeds, so failures replay exactly.

use obs::trace::EventKind;
use obs::{span, Tracer};
use simcore::{Cycles, SimRng};
use std::borrow::Cow;
use std::collections::HashSet;

fn head_kind(i: u64) -> EventKind {
    EventKind::DmaMap {
        iova: i,
        len: 64,
        dir: Cow::Borrowed("from_device"),
    }
}

fn security_kind(rng: &mut SimRng, i: u64) -> EventKind {
    if rng.chance(0.5) {
        EventKind::AttackBlocked {
            iova: i,
            access: Cow::Borrowed("write"),
            reason: Cow::Borrowed("not_mapped"),
        }
    } else {
        EventKind::SanitizerViolation {
            rule: Cow::Borrowed("stale_access"),
            iova: i,
            detail: Cow::Borrowed("prop"),
        }
    }
}

/// Drives one randomized workload against a tracer: chains of random
/// depth built from spans and explicit `record_caused` links, with
/// security events sprinkled in (some inside sampled-out chains).
/// Returns the seqs of every security event recorded plus the total
/// number of record calls made.
fn drive(t: &Tracer, rng: &mut SimRng, chains: u64) -> (Vec<u64>, u64) {
    let mut security = Vec::new();
    let mut recorded = 0u64;
    for i in 0..chains {
        let head = t.record(Cycles(i), (i % 4) as u16, Some(0), head_kind(i));
        recorded += 1;
        let depth = rng.below(4);
        if rng.chance(0.5) {
            // Span-based chain: children inherit the head's verdict
            // through thread-local state.
            let _g = span(head);
            let mut last = head;
            for d in 0..depth {
                last = t.record(
                    Cycles(i),
                    (i % 4) as u16,
                    Some(0),
                    EventKind::IotlbInvalidate {
                        pages: d + 1,
                        wait_cycles: 10,
                    },
                );
                recorded += 1;
                if rng.chance(0.15) {
                    security.push(t.record(Cycles(i), 0, Some(7), security_kind(rng, i)));
                    recorded += 1;
                }
            }
            if depth > 0 {
                t.record_caused(
                    Cycles(i),
                    (i % 4) as u16,
                    Some(0),
                    last,
                    EventKind::DmaUnmap { iova: i, len: 64 },
                );
                recorded += 1;
            }
        } else {
            // Explicit-cause chain: every link names its parent seq.
            let mut last = head;
            for _ in 0..depth {
                last = t.record_caused(
                    Cycles(i),
                    (i % 4) as u16,
                    Some(0),
                    last,
                    EventKind::DmaUnmap { iova: i, len: 64 },
                );
                recorded += 1;
            }
            if rng.chance(0.15) {
                security.push(t.record(Cycles(i), 0, Some(7), security_kind(rng, i)));
                recorded += 1;
            }
        }
    }
    (security, recorded)
}

#[test]
fn retained_causes_are_never_sampled_out() {
    for seed in 0..30u64 {
        let mut rng = SimRng::seed(0xC0FFEE ^ seed);
        // Periods 1, 2, 3, 4, 7, 16, 64, 1000 exercise "keep all",
        // small, prime and "keep almost nothing" regimes.
        for period in [1u64, 2, 3, 4, 7, 16, 64, 1000] {
            let t = Tracer::with_capacity(1 << 16);
            t.set_sample_period(period);
            drive(&t, &mut rng, 200);
            assert_eq!(t.dropped(), 0, "ring must not wrap in this test");
            let events = t.events();
            let retained: HashSet<u64> = events.iter().map(|e| e.seq).collect();
            for e in &events {
                if let Some(c) = e.cause {
                    assert!(
                        retained.contains(&c),
                        "seed {seed} period {period}: retained #{} ({}) \
                         names sampled-out cause #{c}",
                        e.seq,
                        e.kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn security_events_always_retained_at_any_period() {
    for seed in 0..30u64 {
        let mut rng = SimRng::seed(0xDEAD ^ seed);
        for period in [1u64, 2, 5, 32, 1 << 20] {
            let t = Tracer::with_capacity(1 << 16);
            t.set_sample_period(period);
            let (security, _) = drive(&t, &mut rng, 200);
            let retained: HashSet<u64> = t.events().iter().map(|e| e.seq).collect();
            for seq in &security {
                assert!(
                    retained.contains(seq),
                    "seed {seed} period {period}: security event #{seq} was sampled out"
                );
            }
            // And the ring agrees every security-kind event it holds is
            // accounted: none were counted as sampled-out.
            let held: Vec<_> = t
                .events()
                .into_iter()
                .filter(|e| e.kind.is_security())
                .collect();
            assert_eq!(
                held.len(),
                security.len(),
                "seed {seed} period {period}: security events lost"
            );
        }
    }
}

#[test]
fn sampled_out_accounting_is_exact() {
    // recorded = retained + sampled_out whenever the ring never wraps.
    for seed in 0..10u64 {
        let mut rng = SimRng::seed(seed);
        for period in [2u64, 8, 100] {
            let t = Tracer::with_capacity(1 << 16);
            t.set_sample_period(period);
            let (_, recorded) = drive(&t, &mut rng, 300);
            let stats = t.stats();
            assert_eq!(stats.dropped, 0, "ring must not wrap in this test");
            assert_eq!(
                stats.retained + stats.sampled_out,
                recorded,
                "every record call is either retained or counted sampled-out"
            );
        }
    }
}
