//! The attack × engine matrix — the executable form of the paper's
//! Table 1.

use crate::scenarios::{
    arbitrary_memory_probe, deferred_window_overwrite, sub_page_theft, use_after_free_corruption,
    AttackReport,
};
use netsim::EngineKind;

/// One engine's observed security properties, derived from running the
/// attacks (not from the engine's self-declared profile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixRow {
    /// Engine under test.
    pub engine: EngineKind,
    /// Blocked the arbitrary-memory probe (has *some* IOMMU protection).
    pub iommu_protection: bool,
    /// Blocked the sub-page co-location theft.
    pub sub_page_protect: bool,
    /// Blocked both window attacks (no single vulnerability window).
    pub no_vulnerability_window: bool,
    /// The raw reports.
    pub reports: Vec<AttackReport>,
}

/// Runs every attack against `engine` and condenses the outcome into a
/// Table 1 row.
pub fn run_engine(engine: EngineKind) -> MatrixRow {
    let probe = arbitrary_memory_probe(engine);
    let subpage = sub_page_theft(engine);
    let window = deferred_window_overwrite(engine);
    let uaf = use_after_free_corruption(engine);
    MatrixRow {
        engine,
        iommu_protection: !probe.succeeded,
        sub_page_protect: !subpage.succeeded,
        no_vulnerability_window: !window.succeeded && !uaf.succeeded,
        reports: vec![probe, subpage, window, uaf],
    }
}

/// Runs the whole matrix (all engines × all attacks).
pub fn run_matrix() -> Vec<MatrixRow> {
    EngineKind::ALL.iter().map(|&k| run_engine(k)).collect()
}

/// The paper's Table 1 claims: `(engine, iommu protection, sub-page
/// protect, no single vulnerability window)`.
pub fn expected_table1() -> Vec<(EngineKind, bool, bool, bool)> {
    vec![
        (EngineKind::NoIommu, false, false, false),
        (EngineKind::Copy, true, true, true),
        (EngineKind::IdentityMinus, true, false, false),
        (EngineKind::IdentityPlus, true, false, true),
        (EngineKind::EiovarDefer, true, false, false),
        (EngineKind::EiovarStrict, true, false, true),
        (EngineKind::LinuxDefer, true, false, false),
        (EngineKind::LinuxStrict, true, false, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_matrix_matches_table1() {
        let rows = run_matrix();
        let expected = expected_table1();
        for (engine, iommu, subpage, window) in expected {
            let row = rows
                .iter()
                .find(|r| r.engine == engine)
                .expect("engine in matrix");
            assert_eq!(row.iommu_protection, iommu, "{engine}: iommu protection");
            assert_eq!(row.sub_page_protect, subpage, "{engine}: sub-page");
            assert_eq!(
                row.no_vulnerability_window, window,
                "{engine}: vulnerability window"
            );
        }
    }

    #[test]
    fn only_copy_blocks_everything() {
        for row in run_matrix() {
            let fully_secure =
                row.iommu_protection && row.sub_page_protect && row.no_vulnerability_window;
            assert_eq!(
                fully_secure,
                row.engine == EngineKind::Copy,
                "{:?}",
                row.engine
            );
        }
    }
}
