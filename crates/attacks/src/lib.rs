//! # attacks — DMA-attack scenarios (§3, §4)
//!
//! Executable versions of the attacks that motivate the paper, run against
//! every protection engine. Each scenario stages a victim, lets a
//! [`devices::MaliciousDevice`] (modeling compromised NIC firmware — it
//! uses the NIC's own requester id, so it enjoys every mapping the OS
//! established for the NIC) mount the attack, and *observes* the outcome
//! in simulated memory — nothing is asserted from specifications.
//!
//! The scenarios:
//!
//! - [`arbitrary_memory_probe`] — scan physical memory for a secret
//!   (§1: "steal sensitive data"). Succeeds only without an IOMMU.
//! - [`sub_page_theft`] — read data co-located on a DMA buffer's page
//!   (§4 "no sub-page protection"). Succeeds for every page-granular
//!   scheme; only DMA shadowing blocks it.
//! - [`deferred_window_overwrite`] — modify a packet *after* the OS
//!   inspected it, through the stale-IOTLB window left by a deferred
//!   unmap (§2.2.1, §3). Succeeds for the deferred schemes.
//! - [`use_after_free_corruption`] — §3's observed kernel crash: the
//!   unmapped buffer is freed and reused for a kernel object, which the
//!   attacker then corrupts through the open window.
//!
//! [`run_matrix`] executes everything against every engine and returns
//! verdicts that integration tests compare against the paper's Table 1.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod scenarios;

pub use matrix::{expected_table1, run_matrix, MatrixRow};
pub use scenarios::{
    arbitrary_memory_probe, deferred_window_overwrite, sub_page_theft, use_after_free_corruption,
    AttackReport,
};
