//! The attack scenarios.

// lint: allow(panic) — attack rigs panic on broken simulation invariants, not recoverable errors

use devices::MaliciousDevice;
use dma_api::{Bus, DmaBuf, DmaDirection};
use dmasan::AccessVerdict;
use memsim::PAGE_SIZE;
use netsim::{EngineKind, ExpConfig, SimStack};
use simcore::{CoreCtx, CoreId, Cycles};
use std::fmt;

/// What an attack scenario observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// The attack's name.
    pub attack: &'static str,
    /// The engine under attack.
    pub engine: &'static str,
    /// Whether the attack achieved its goal.
    pub succeeded: bool,
    /// The sanitizer's classification of the attack's decisive DMA: did
    /// the hardware block it, or did it grant an access the DMA-API
    /// contract forbids?
    pub verdict: AccessVerdict,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} vs {:<10}: {} [{:?}] ({})",
            self.attack,
            self.engine,
            if self.succeeded {
                "SUCCEEDED"
            } else {
                "blocked"
            },
            self.verdict,
            self.detail
        )
    }
}

const SECRET: &[u8] = b"TOP-SECRET-CRYPTO-KEY-0xDEADBEEF";

fn rig(kind: EngineKind) -> (SimStack, CoreCtx) {
    let stack = SimStack::new(kind, &ExpConfig::quick());
    let mut ctx = CoreCtx::new(CoreId(0), stack.cost.clone());
    ctx.seek(Cycles(1));
    (stack, ctx)
}

/// The attacker models *compromised NIC firmware*: it issues DMAs with the
/// NIC's own requester id over the same bus. It shares the victim stack's
/// sanitizer, so every probe gets an [`AccessVerdict`] against the stack's
/// live-mapping registry (the verdict API is pure classification — the
/// attacker's probes are never *recorded* as violations, which keeps the
/// `dmasan-strict` CI pass green while still proving what the hardware
/// let through).
fn attacker(stack: &SimStack) -> MaliciousDevice {
    let bus = match stack.kind {
        EngineKind::NoIommu => Bus::Direct(stack.mem.clone()),
        _ => Bus::Iommu {
            mmu: stack.mmu.clone(),
            mem: stack.mem.clone(),
        },
    };
    MaliciousDevice::new(netsim::NIC_DEV, bus).with_sanitizer(stack.san.clone())
}

/// §1-style reconnaissance + exfiltration: a secret lives somewhere in
/// kernel memory with **no DMA mapping anywhere near it**; the attacker
/// scans the physical address space hunting for it.
pub fn arbitrary_memory_probe(kind: EngineKind) -> AttackReport {
    let (stack, _ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let secret_pa = stack.kmalloc.alloc(64, domain).expect("victim alloc");
    stack.mem.write(secret_pa, SECRET).expect("plant secret");

    let evil = attacker(&stack);
    // Scan the first 64 MB of the address space page by page.
    let mut found = None;
    for page in 0..(64 * 1024 * 1024 / PAGE_SIZE as u64) {
        let addr = page * PAGE_SIZE as u64;
        if let Some(off) = evil.hunt(addr, PAGE_SIZE, SECRET) {
            found = Some(addr + off as u64);
            break;
        }
    }
    // The decisive probe: the secret's own address. No mapping exists
    // anywhere near it, so a grant is by definition a contract violation.
    let (_, verdict) = evil.attempt_read(secret_pa.get(), SECRET.len());
    AttackReport {
        attack: "arbitrary memory probe",
        engine: kind.name(),
        succeeded: found.is_some(),
        verdict,
        detail: match found {
            Some(a) => format!("secret exfiltrated from {:#x}", a),
            None => format!("{} probe DMAs blocked", evil.stats().2),
        },
    }
}

/// §4's sub-page weakness: the secret is kmalloc-co-located on the same
/// page as a legitimately mapped DMA buffer. The attacker reads around the
/// mapped buffer's device-visible address.
pub fn sub_page_theft(kind: EngineKind) -> AttackReport {
    let (stack, mut ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    // Two 1 KB kmalloc objects: the slab packs them onto one page.
    let dma_buf = stack.kmalloc.alloc(1000, domain).expect("dma buffer");
    let secret_pa = stack.kmalloc.alloc(1000, domain).expect("victim alloc");
    assert_eq!(dma_buf.pfn(), secret_pa.pfn(), "slab co-location");
    stack.mem.write(secret_pa, SECRET).expect("plant secret");
    stack
        .mem
        .fill(dma_buf, 0x41, 1000)
        .expect("fill DMA buffer");

    // The OS legitimately maps ONLY the 1000-byte buffer for the device.
    let mapping = stack
        .engine
        .map(&mut ctx, DmaBuf::new(dma_buf, 1000), DmaDirection::ToDevice)
        .expect("dma_map");

    // The attacker reads the whole device-visible page around the mapping.
    // Page-granular IOMMUs grant this read — only the sanitizer's
    // byte-granular window knows that most of those bytes were never
    // authorized for DMA.
    let evil = attacker(&stack);
    let window = mapping.iova.get() & !(PAGE_SIZE as u64 - 1);
    let (data, verdict) = evil.attempt_read(window, PAGE_SIZE);
    let found = data
        .ok()
        .and_then(|d| d.windows(SECRET.len()).position(|w| w == SECRET));

    stack.engine.unmap(&mut ctx, mapping).expect("dma_unmap");
    AttackReport {
        attack: "sub-page co-location theft",
        engine: kind.name(),
        succeeded: found.is_some(),
        verdict,
        detail: match found {
            Some(off) => format!("secret read at page offset {off}"),
            None => "page window holds no victim data".to_string(),
        },
    }
}

/// §3's firewall-bypass/window attack: a received packet passes inspection
/// and is unmapped; the attacker then rewrites the buffer through the
/// stale IOTLB entry before the deferred flush runs.
pub fn deferred_window_overwrite(kind: EngineKind) -> AttackReport {
    let (stack, mut ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let buf = stack.kmalloc.alloc(1500, domain).expect("rx buffer");
    let mapping = stack
        .engine
        .map(&mut ctx, DmaBuf::new(buf, 1500), DmaDirection::FromDevice)
        .expect("dma_map");

    // A legitimate packet arrives (warming the IOTLB), the driver unmaps,
    // and the OS inspects the now-owned buffer ("firewall approves it").
    // The attacker snapshots the IOVA while the mapping is live — after
    // `dma_unmap` only this stale number remains, exactly what a malicious
    // device would replay through the not-yet-flushed IOTLB entry.
    let evil = attacker(&stack);
    let legit = vec![0x11u8; 1500];
    let stale_iova = mapping.iova.get();
    evil.try_write(stale_iova, &legit)
        .expect("legitimate delivery through live mapping");
    stack.engine.unmap(&mut ctx, mapping).expect("dma_unmap");
    let inspected = stack.mem.read_vec(buf, 1500).expect("OS reads buffer");
    assert_eq!(inspected, legit, "OS saw the legitimate packet");

    // ATTACK: rewrite the packet after inspection, before the flush timer.
    let malicious = vec![0x66u8; 1500];
    let (write, verdict) = evil.attempt_write(stale_iova, &malicious);
    let after = stack.mem.read_vec(buf, 1500).expect("OS re-reads buffer");
    let corrupted = after == malicious;
    let _ = write;

    // Close the window; afterwards the write must always fail.
    stack.engine.flush_deferred(&mut ctx);
    let late = evil.try_write(stale_iova, &malicious);
    let late_corrupted = stack.mem.read_vec(buf, 1500).expect("read") == malicious && !corrupted;
    AttackReport {
        attack: "deferred-window overwrite",
        engine: kind.name(),
        succeeded: corrupted || late_corrupted,
        verdict,
        detail: if corrupted {
            "packet rewritten after firewall inspection".to_string()
        } else {
            format!("buffer intact after unmap (late write: {:?})", late.is_ok())
        },
    }
}

/// §3's observed crash: the unmapped RX buffer is `kfree`d and its slot is
/// immediately reused for a "critical kernel object". The attacker's
/// stale-window write lands in the reused object — a kernel crash in the
/// making. (The paper overwrote an unmapped buffer within 10 µs of
/// `dma_unmap` and crashed Linux.)
pub fn use_after_free_corruption(kind: EngineKind) -> AttackReport {
    let (stack, mut ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let buf = stack.kmalloc.alloc(1500, domain).expect("rx buffer");
    let mapping = stack
        .engine
        .map(&mut ctx, DmaBuf::new(buf, 1500), DmaDirection::FromDevice)
        .expect("dma_map");
    // As above: the stale IOVA is captured while the mapping is live; the
    // post-unmap scribble replays the raw number, not the dead handle.
    let evil = attacker(&stack);
    let stale_iova = mapping.iova.get();
    evil.try_write(stale_iova, &vec![0x22u8; 1500])
        .expect("legitimate delivery");
    stack.engine.unmap(&mut ctx, mapping).expect("dma_unmap");

    // The driver frees the skb; the allocator reuses the memory for a
    // critical kernel object almost immediately.
    stack.kmalloc.free(buf).expect("kfree");
    let critical = stack.kmalloc.alloc(1500, domain).expect("reuse");
    assert_eq!(critical.pfn(), buf.pfn(), "slab reuses the hot slot");
    let object = b"vtable:0xffffffff81000000";
    stack.mem.write(critical, object).expect("init object");

    // ATTACK: scribble through the stale window (within the "10 us").
    let (_, verdict) = evil.attempt_write(stale_iova, &vec![0x99u8; 1500]);
    let after = stack
        .mem
        .read_vec(critical, object.len())
        .expect("kernel reads its object");
    let crashed = after != object;

    stack.engine.flush_deferred(&mut ctx);
    AttackReport {
        attack: "use-after-unmap corruption",
        engine: kind.name(),
        succeeded: crashed,
        verdict,
        detail: if crashed {
            "kernel object overwritten -> crash".to_string()
        } else {
            "kernel object intact".to_string()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmasan::ViolationKind;

    /// Whether `kind` closes the unmap→invalidation window immediately.
    fn strict_protection(kind: EngineKind) -> bool {
        !matches!(
            kind,
            EngineKind::NoIommu
                | EngineKind::IdentityMinus
                | EngineKind::LinuxDefer
                | EngineKind::EiovarDefer
        )
    }

    #[test]
    fn probe_succeeds_only_without_iommu() {
        for kind in EngineKind::ALL {
            let r = arbitrary_memory_probe(kind);
            assert_eq!(r.succeeded, kind == EngineKind::NoIommu, "{r}");
            // Without an IOMMU the probe reaches unmapped kernel memory —
            // a contract violation only the sanitizer can name. Under
            // protection the probed address is an *IOVA*: either the IOMMU
            // rejects it, or it happens to fall in some legitimately
            // authorized window and translates away from the secret —
            // either way, no violation.
            if kind == EngineKind::NoIommu {
                assert_eq!(
                    r.verdict,
                    AccessVerdict::SanitizerViolation(ViolationKind::StaleAccess),
                    "{r}"
                );
            } else {
                assert!(
                    !matches!(r.verdict, AccessVerdict::SanitizerViolation(_)),
                    "{r}"
                );
            }
        }
    }

    #[test]
    fn sub_page_theft_blocked_only_by_copy() {
        for kind in EngineKind::ALL {
            let r = sub_page_theft(kind);
            let expect_blocked = kind == EngineKind::Copy;
            assert_eq!(r.succeeded, !expect_blocked, "{r}");
            // Every engine's hardware grants the page-window read (page
            // tables are page-granular); the byte-granular sanitizer flags
            // it on every engine. Only copy keeps the secret out of the
            // window — detection and protection are different things.
            assert!(
                matches!(r.verdict, AccessVerdict::SanitizerViolation(_)),
                "{r}"
            );
        }
    }

    /// The expected verdict for a write through the revoked mapping.
    ///
    /// Page-remapping strict engines revoke the IOMMU entry at unmap, so
    /// the hardware itself blocks the stale write. The copy engine keeps
    /// its shadow pages permanently mapped (that is where its speed comes
    /// from) — the stale write is *granted* but lands in recycled shadow
    /// memory, never the OS buffer: the sanitizer still reports the rogue
    /// DMA that shadowing silently absorbed. Deferred engines and no-iommu
    /// grant the write straight into OS memory.
    fn stale_write_verdict(kind: EngineKind) -> AccessVerdict {
        if strict_protection(kind) && kind != EngineKind::Copy {
            AccessVerdict::BlockedByIommu
        } else {
            AccessVerdict::SanitizerViolation(ViolationKind::StaleAccess)
        }
    }

    #[test]
    fn window_overwrite_only_under_deferred_protection() {
        for kind in EngineKind::ALL {
            let r = deferred_window_overwrite(kind);
            assert_eq!(r.succeeded, !strict_protection(kind), "{r}");
            assert_eq!(r.verdict, stale_write_verdict(kind), "{r}");
        }
    }

    #[test]
    fn use_after_free_mirrors_window() {
        for kind in EngineKind::ALL {
            let r = use_after_free_corruption(kind);
            assert_eq!(r.succeeded, !strict_protection(kind), "{r}");
            assert_eq!(r.verdict, stale_write_verdict(kind), "{r}");
        }
    }
}
