//! The attack scenarios.

use devices::MaliciousDevice;
use dma_api::{Bus, DmaBuf, DmaDirection};
use memsim::PAGE_SIZE;
use netsim::{EngineKind, ExpConfig, SimStack};
use simcore::{CoreCtx, CoreId, Cycles};
use std::fmt;

/// What an attack scenario observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// The attack's name.
    pub attack: &'static str,
    /// The engine under attack.
    pub engine: &'static str,
    /// Whether the attack achieved its goal.
    pub succeeded: bool,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} vs {:<10}: {} ({})",
            self.attack,
            self.engine,
            if self.succeeded {
                "SUCCEEDED"
            } else {
                "blocked"
            },
            self.detail
        )
    }
}

const SECRET: &[u8] = b"TOP-SECRET-CRYPTO-KEY-0xDEADBEEF";

fn rig(kind: EngineKind) -> (SimStack, CoreCtx) {
    let stack = SimStack::new(kind, &ExpConfig::quick());
    let mut ctx = CoreCtx::new(CoreId(0), stack.cost.clone());
    ctx.seek(Cycles(1));
    (stack, ctx)
}

/// The attacker models *compromised NIC firmware*: it issues DMAs with the
/// NIC's own requester id over the same bus.
fn attacker(stack: &SimStack) -> MaliciousDevice {
    let bus = match stack.kind {
        EngineKind::NoIommu => Bus::Direct(stack.mem.clone()),
        _ => Bus::Iommu {
            mmu: stack.mmu.clone(),
            mem: stack.mem.clone(),
        },
    };
    MaliciousDevice::new(netsim::NIC_DEV, bus)
}

/// §1-style reconnaissance + exfiltration: a secret lives somewhere in
/// kernel memory with **no DMA mapping anywhere near it**; the attacker
/// scans the physical address space hunting for it.
pub fn arbitrary_memory_probe(kind: EngineKind) -> AttackReport {
    let (stack, _ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let secret_pa = stack.kmalloc.alloc(64, domain).expect("victim alloc");
    stack.mem.write(secret_pa, SECRET).expect("plant secret");

    let evil = attacker(&stack);
    // Scan the first 64 MB of the address space page by page.
    let mut found = None;
    for page in 0..(64 * 1024 * 1024 / PAGE_SIZE as u64) {
        let addr = page * PAGE_SIZE as u64;
        if let Some(off) = evil.hunt(addr, PAGE_SIZE, SECRET) {
            found = Some(addr + off as u64);
            break;
        }
    }
    AttackReport {
        attack: "arbitrary memory probe",
        engine: kind.name(),
        succeeded: found.is_some(),
        detail: match found {
            Some(a) => format!("secret exfiltrated from {:#x}", a),
            None => format!("{} probe DMAs blocked", evil.stats().2),
        },
    }
}

/// §4's sub-page weakness: the secret is kmalloc-co-located on the same
/// page as a legitimately mapped DMA buffer. The attacker reads around the
/// mapped buffer's device-visible address.
pub fn sub_page_theft(kind: EngineKind) -> AttackReport {
    let (stack, mut ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    // Two 1 KB kmalloc objects: the slab packs them onto one page.
    let dma_buf = stack.kmalloc.alloc(1000, domain).expect("dma buffer");
    let secret_pa = stack.kmalloc.alloc(1000, domain).expect("victim alloc");
    assert_eq!(dma_buf.pfn(), secret_pa.pfn(), "slab co-location");
    stack.mem.write(secret_pa, SECRET).expect("plant secret");
    stack
        .mem
        .fill(dma_buf, 0x41, 1000)
        .expect("fill DMA buffer");

    // The OS legitimately maps ONLY the 1000-byte buffer for the device.
    let mapping = stack
        .engine
        .map(&mut ctx, DmaBuf::new(dma_buf, 1000), DmaDirection::ToDevice)
        .expect("dma_map");

    // The attacker reads the whole device-visible page around the mapping.
    let evil = attacker(&stack);
    let window = mapping.iova.get() & !(PAGE_SIZE as u64 - 1);
    let found = evil.hunt(window, PAGE_SIZE, SECRET);

    stack.engine.unmap(&mut ctx, mapping).expect("dma_unmap");
    AttackReport {
        attack: "sub-page co-location theft",
        engine: kind.name(),
        succeeded: found.is_some(),
        detail: match found {
            Some(off) => format!("secret read at page offset {off}"),
            None => "page window holds no victim data".to_string(),
        },
    }
}

/// §3's firewall-bypass/window attack: a received packet passes inspection
/// and is unmapped; the attacker then rewrites the buffer through the
/// stale IOTLB entry before the deferred flush runs.
pub fn deferred_window_overwrite(kind: EngineKind) -> AttackReport {
    let (stack, mut ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let buf = stack.kmalloc.alloc(1500, domain).expect("rx buffer");
    let mapping = stack
        .engine
        .map(&mut ctx, DmaBuf::new(buf, 1500), DmaDirection::FromDevice)
        .expect("dma_map");

    // A legitimate packet arrives (warming the IOTLB), the driver unmaps,
    // and the OS inspects the now-owned buffer ("firewall approves it").
    let evil = attacker(&stack);
    let legit = vec![0x11u8; 1500];
    evil.try_write(mapping.iova.get(), &legit)
        .expect("legitimate delivery through live mapping");
    stack.engine.unmap(&mut ctx, mapping).expect("dma_unmap");
    let inspected = stack.mem.read_vec(buf, 1500).expect("OS reads buffer");
    assert_eq!(inspected, legit, "OS saw the legitimate packet");

    // ATTACK: rewrite the packet after inspection, before the flush timer.
    let malicious = vec![0x66u8; 1500];
    let write = evil.try_write(mapping.iova.get(), &malicious);
    let after = stack.mem.read_vec(buf, 1500).expect("OS re-reads buffer");
    let corrupted = after == malicious;
    let _ = write;

    // Close the window; afterwards the write must always fail.
    stack.engine.flush_deferred(&mut ctx);
    let late = evil.try_write(mapping.iova.get(), &malicious);
    let late_corrupted = stack.mem.read_vec(buf, 1500).expect("read") == malicious && !corrupted;
    AttackReport {
        attack: "deferred-window overwrite",
        engine: kind.name(),
        succeeded: corrupted || late_corrupted,
        detail: if corrupted {
            "packet rewritten after firewall inspection".to_string()
        } else {
            format!("buffer intact after unmap (late write: {:?})", late.is_ok())
        },
    }
}

/// §3's observed crash: the unmapped RX buffer is `kfree`d and its slot is
/// immediately reused for a "critical kernel object". The attacker's
/// stale-window write lands in the reused object — a kernel crash in the
/// making. (The paper overwrote an unmapped buffer within 10 µs of
/// `dma_unmap` and crashed Linux.)
pub fn use_after_free_corruption(kind: EngineKind) -> AttackReport {
    let (stack, mut ctx) = rig(kind);
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let buf = stack.kmalloc.alloc(1500, domain).expect("rx buffer");
    let mapping = stack
        .engine
        .map(&mut ctx, DmaBuf::new(buf, 1500), DmaDirection::FromDevice)
        .expect("dma_map");
    let evil = attacker(&stack);
    evil.try_write(mapping.iova.get(), &vec![0x22u8; 1500])
        .expect("legitimate delivery");
    stack.engine.unmap(&mut ctx, mapping).expect("dma_unmap");

    // The driver frees the skb; the allocator reuses the memory for a
    // critical kernel object almost immediately.
    stack.kmalloc.free(buf).expect("kfree");
    let critical = stack.kmalloc.alloc(1500, domain).expect("reuse");
    assert_eq!(critical.pfn(), buf.pfn(), "slab reuses the hot slot");
    let object = b"vtable:0xffffffff81000000";
    stack.mem.write(critical, object).expect("init object");

    // ATTACK: scribble through the stale window (within the "10 us").
    let _ = evil.try_write(mapping.iova.get(), &vec![0x99u8; 1500]);
    let after = stack
        .mem
        .read_vec(critical, object.len())
        .expect("kernel reads its object");
    let crashed = after != object;

    stack.engine.flush_deferred(&mut ctx);
    AttackReport {
        attack: "use-after-unmap corruption",
        engine: kind.name(),
        succeeded: crashed,
        detail: if crashed {
            "kernel object overwritten -> crash".to_string()
        } else {
            "kernel object intact".to_string()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_succeeds_only_without_iommu() {
        for kind in EngineKind::ALL {
            let r = arbitrary_memory_probe(kind);
            assert_eq!(r.succeeded, kind == EngineKind::NoIommu, "{r}");
        }
    }

    #[test]
    fn sub_page_theft_blocked_only_by_copy() {
        for kind in EngineKind::ALL {
            let r = sub_page_theft(kind);
            let expect_blocked = kind == EngineKind::Copy;
            assert_eq!(r.succeeded, !expect_blocked, "{r}");
        }
    }

    #[test]
    fn window_overwrite_only_under_deferred_protection() {
        for kind in EngineKind::ALL {
            let r = deferred_window_overwrite(kind);
            let expect_success = matches!(
                kind,
                EngineKind::NoIommu
                    | EngineKind::IdentityMinus
                    | EngineKind::LinuxDefer
                    | EngineKind::EiovarDefer
            );
            assert_eq!(r.succeeded, expect_success, "{r}");
        }
    }

    #[test]
    fn use_after_free_mirrors_window() {
        for kind in EngineKind::ALL {
            let r = use_after_free_corruption(kind);
            let expect_success = matches!(
                kind,
                EngineKind::NoIommu
                    | EngineKind::IdentityMinus
                    | EngineKind::LinuxDefer
                    | EngineKind::EiovarDefer
            );
            assert_eq!(r.succeeded, expect_success, "{r}");
        }
    }
}
