//! # simcore — deterministic virtual-time simulation substrate
//!
//! The paper evaluates DMA protection schemes on a dual-socket 16-core
//! 2.4 GHz Haswell machine with a 40 Gb/s NIC. This reproduction runs on
//! arbitrary hosts (including single-core ones), so *time* is virtual:
//! every operation charges a cost in [`Cycles`] to the executing virtual
//! core, and contended resources (the IOMMU invalidation queue lock, the
//! deferred-invalidation list lock, the wire) are modeled as FIFO resources
//! in virtual time.
//!
//! Crucially, only **time** is virtual. The data structures the costs are
//! charged around — I/O page tables, the IOTLB, the shadow buffer pool,
//! the packet payloads being copied — are real and are really manipulated,
//! so functional properties (data integrity, protection semantics, attack
//! outcomes) are observed, not asserted.
//!
//! ## Main types
//!
//! - [`Cycles`] — virtual time unit (CPU cycles at the modeled clock).
//! - [`CostModel`] — calibrated per-operation costs (see `DESIGN.md`).
//! - [`CoreCtx`] — a virtual core's clock, busy/idle accounting and
//!   per-phase [`Breakdown`].
//! - [`SimLock`] — a spinlock contended in virtual time.
//! - [`Wire`] — a serialized link (e.g. 40 Gb/s ethernet) in virtual time.
//! - [`MultiCoreSim`] — earliest-core-first scheduler for multi-core
//!   experiments.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod clock;
mod cost;
mod cycles;
pub mod fxhash;
mod lock;
mod rng;
mod sched;
pub mod sync;
mod wire;

pub use breakdown::{Breakdown, Phase};
pub use clock::{ChargeBatch, CoreCtx};
pub use cost::{CostModel, MemcpyFlavor};
pub use cycles::{CoreId, Cycles, Gbps};
pub use fxhash::{FxHashMap, FxHashSet};
pub use lock::{LockStats, SimLock};
pub use rng::SimRng;
pub use sched::{CoreTask, MultiCoreSim, StepOutcome, TimingWheel};
pub use wire::Wire;
