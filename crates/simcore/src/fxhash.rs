//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! The standard library's default `HashMap` hasher (SipHash-1-3) is
//! DoS-resistant but costs tens of nanoseconds per small key — real money
//! on per-packet paths that hash a handful of `u64` keys each (the slab
//! allocator's live-object map, the IOMMU's per-device table lookup, the
//! sanitizer's device states). Keys on those paths are frame numbers and
//! device ids produced by the simulation itself, never attacker-chosen,
//! so the multiply-rotate mix used by rustc's own interner hashing
//! (`FxHash`) is the right trade: one multiply per word, no DoS concern.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash mix (the golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot multiply-rotate hasher; see the module docs for when it is
/// appropriate (simulation-internal keys only).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            self.mix(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by simulation-internal values (see module docs).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` of simulation-internal values (see module docs).
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, "frame");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(999 * 4096)), Some(&"frame"));
        assert_eq!(m.remove(&0), Some("frame"));
        assert!(!m.contains_key(&0));
    }

    #[test]
    fn hash_is_deterministic_and_spreads_sequential_keys() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Sequential frame numbers must not collide in the low bits the
        // table indexes with.
        let low: FxHashSet<u64> = (0..256).map(|i| h(i) & 0xff).collect();
        assert!(low.len() > 128, "low-bit spread too poor: {}", low.len());
    }

    #[test]
    fn compound_and_byte_keys_work() {
        let mut m: FxHashMap<(u16, usize), u32> = FxHashMap::default();
        m.insert((3, 7), 1);
        assert_eq!(m.get(&(3, 7)), Some(&1));
        let mut s: FxHashSet<String> = FxHashSet::default();
        s.insert("pool.cache".into());
        assert!(s.contains("pool.cache"));
    }
}
