//! Host-side synchronization primitives.
//!
//! Thin wrappers over [`std::sync`] with the `parking_lot`-style API the
//! rest of the workspace uses: `lock()` / `read()` / `write()` return
//! guards directly instead of `Result`s, ignoring lock poisoning. These
//! protect *host* data structures (page-table maps, free lists, slab
//! metadata); contention in **virtual time** is modeled separately by
//! [`crate::SimLock`].
//!
//! Poisoning is deliberately ignored: a panicking test thread must not
//! cascade opaque `PoisonError` panics through unrelated threads — the
//! original panic is the signal we want.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Poisoning is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access. Poisoning is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned std mutex would panic here; ours hands back the guard.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
