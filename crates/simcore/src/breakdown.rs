//! Per-phase time accounting, mirroring the paper's Figure 5/8/10 breakdown.

use crate::Cycles;
use std::fmt;
use std::ops::{Add, AddAssign};

/// The phases of packet processing time, exactly the categories of the
/// paper's breakdown figures (Figures 5, 8 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Shadow buffer pool management ("copy mgmt").
    CopyMgmt,
    /// Time spent spinning on contended locks ("spinlock").
    Spinlock,
    /// Waiting for IOTLB invalidations ("invalidate iotlb").
    InvalidateIotlb,
    /// IOMMU page table updates and IOVA allocation ("iommu page table
    /// mgmt").
    IommuPageTableMgmt,
    /// Copies between OS buffers and shadow buffers ("memcpy").
    Memcpy,
    /// Receive-side protocol processing ("rx parsing").
    RxParsing,
    /// Copies between kernel and user space ("copy_user").
    CopyUser,
    /// Everything else (skb management, scheduling, cache pollution...).
    Other,
}

impl Phase {
    /// All phases, in the paper's legend order.
    pub const ALL: [Phase; 8] = [
        Phase::CopyMgmt,
        Phase::Spinlock,
        Phase::InvalidateIotlb,
        Phase::IommuPageTableMgmt,
        Phase::Memcpy,
        Phase::RxParsing,
        Phase::CopyUser,
        Phase::Other,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Phase::CopyMgmt => "copy mgmt",
            Phase::Spinlock => "spinlock",
            Phase::InvalidateIotlb => "invalidate iotlb",
            Phase::IommuPageTableMgmt => "iommu page table mgmt",
            Phase::Memcpy => "memcpy",
            Phase::RxParsing => "rx parsing",
            Phase::CopyUser => "copy_user",
            Phase::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::CopyMgmt => 0,
            Phase::Spinlock => 1,
            Phase::InvalidateIotlb => 2,
            Phase::IommuPageTableMgmt => 3,
            Phase::Memcpy => 4,
            Phase::RxParsing => 5,
            Phase::CopyUser => 6,
            Phase::Other => 7,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated busy cycles per [`Phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Breakdown {
    cells: [Cycles; 8],
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `phase`.
    pub fn record(&mut self, phase: Phase, cycles: Cycles) {
        self.cells[phase.index()] += cycles;
    }

    /// Cycles accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> Cycles {
        self.cells[phase.index()]
    }

    /// Total cycles across all phases.
    pub fn total(&self) -> Cycles {
        self.cells.iter().copied().sum()
    }

    /// Iterates `(phase, cycles)` in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, Cycles)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }

    /// Divides every cell by `n` (e.g. packets processed) to obtain a
    /// per-item average. `n == 0` yields an empty breakdown.
    pub fn per_item(&self, n: u64) -> Breakdown {
        if n == 0 {
            return Breakdown::new();
        }
        let mut out = Breakdown::new();
        for (p, c) in self.iter() {
            out.record(p, c / n);
        }
        out
    }

    /// Fraction of the total attributed to `phase` (0 if the total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let t = self.total().get();
        if t == 0 {
            return 0.0;
        }
        self.get(phase).get() as f64 / t as f64
    }
}

impl Add for Breakdown {
    type Output = Breakdown;
    fn add(self, rhs: Breakdown) -> Breakdown {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        for i in 0..self.cells.len() {
            self.cells[i] += rhs.cells[i];
        }
    }
}

impl std::iter::Sum for Breakdown {
    fn sum<I: Iterator<Item = Breakdown>>(iter: I) -> Breakdown {
        iter.fold(Breakdown::new(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_phase() {
        let mut b = Breakdown::new();
        b.record(Phase::Memcpy, Cycles(100));
        b.record(Phase::Memcpy, Cycles(50));
        b.record(Phase::Other, Cycles(25));
        assert_eq!(b.get(Phase::Memcpy), Cycles(150));
        assert_eq!(b.get(Phase::Other), Cycles(25));
        assert_eq!(b.get(Phase::Spinlock), Cycles::ZERO);
        assert_eq!(b.total(), Cycles(175));
    }

    #[test]
    fn per_item_average() {
        let mut b = Breakdown::new();
        b.record(Phase::RxParsing, Cycles(1000));
        let avg = b.per_item(10);
        assert_eq!(avg.get(Phase::RxParsing), Cycles(100));
        assert_eq!(b.per_item(0).total(), Cycles::ZERO);
    }

    #[test]
    fn merge_and_sum() {
        let mut a = Breakdown::new();
        a.record(Phase::CopyMgmt, Cycles(1));
        let mut b = Breakdown::new();
        b.record(Phase::CopyMgmt, Cycles(2));
        b.record(Phase::CopyUser, Cycles(3));
        let merged: Breakdown = [a, b].into_iter().sum();
        assert_eq!(merged.get(Phase::CopyMgmt), Cycles(3));
        assert_eq!(merged.get(Phase::CopyUser), Cycles(3));
    }

    #[test]
    fn fractions() {
        let mut b = Breakdown::new();
        b.record(Phase::Memcpy, Cycles(75));
        b.record(Phase::Other, Cycles(25));
        assert!((b.fraction(Phase::Memcpy) - 0.75).abs() < 1e-9);
        assert_eq!(Breakdown::new().fraction(Phase::Memcpy), 0.0);
    }

    #[test]
    fn all_phases_have_distinct_labels_and_indices() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.label()));
        }
        assert_eq!(seen.len(), 8);
    }
}
