//! Per-core virtual clock and accounting context.

use crate::{Breakdown, CoreId, CostModel, Cycles, Phase};
use std::sync::Arc;

/// The execution context of one virtual core.
///
/// Everything that runs "on a CPU" in the simulation — the DMA API, the
/// network stack, lock spinning — charges its cost here. The context tracks
/// the core's current virtual time, how much of it was spent busy vs idle
/// (for the CPU-utilization columns of the paper's figures), and a per-phase
/// [`Breakdown`] (for the Figure 5/8/10 bars).
#[derive(Debug, Clone)]
pub struct CoreCtx {
    /// This core's identifier.
    pub core: CoreId,
    /// The shared cost model.
    pub cost: Arc<CostModel>,
    /// Number of cores actively driving DMA in the current experiment;
    /// used by the IOMMU model to scale invalidation latency (Figure 8).
    pub active_cores: usize,
    /// Per-phase busy-time accounting.
    pub breakdown: Breakdown,
    now: Cycles,
    busy: Cycles,
    idle: Cycles,
}

impl CoreCtx {
    /// Creates a context for `core` starting at time zero.
    pub fn new(core: CoreId, cost: Arc<CostModel>) -> Self {
        CoreCtx {
            core,
            cost,
            active_cores: 1,
            breakdown: Breakdown::new(),
            now: Cycles::ZERO,
            busy: Cycles::ZERO,
            idle: Cycles::ZERO,
        }
    }

    /// Current virtual time of this core.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Cycles this core spent doing work (including lock spinning, which is
    /// busy-waiting and burns CPU).
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Cycles this core spent idle (waiting for packets/work).
    pub fn idle(&self) -> Cycles {
        self.idle
    }

    /// CPU utilization over the core's lifetime so far, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy + self.idle;
        if total == Cycles::ZERO {
            return 0.0;
        }
        self.busy.get() as f64 / total.get() as f64
    }

    /// Performs `cycles` of busy work attributed to `phase`.
    pub fn charge(&mut self, phase: Phase, cycles: Cycles) {
        self.now += cycles;
        self.busy += cycles;
        self.breakdown.record(phase, cycles);
    }

    /// Blocks (idle) until instant `t`. No-op if `t` is in the past.
    pub fn wait_until(&mut self, t: Cycles) {
        if t > self.now {
            self.idle += t - self.now;
            self.now = t;
        }
    }

    /// Busy-waits (spinning) until instant `t`, attributed to `phase`
    /// (normally [`Phase::Spinlock`] or [`Phase::InvalidateIotlb`]).
    pub fn spin_until(&mut self, t: Cycles, phase: Phase) {
        if t > self.now {
            let d = t - self.now;
            self.charge(phase, d);
        }
    }

    /// Resets busy/idle/breakdown accounting without touching the clock.
    ///
    /// Experiments call this after warm-up so steady-state numbers are not
    /// skewed by pool growth and cold caches.
    pub fn reset_stats(&mut self) {
        self.busy = Cycles::ZERO;
        self.idle = Cycles::ZERO;
        self.breakdown = Breakdown::new();
    }

    /// Forces the clock to instant `t` without accounting (used by
    /// schedulers when staging cores at experiment start).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn seek(&mut self, t: Cycles) {
        assert!(t >= self.now, "cannot seek backwards");
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CoreCtx {
        CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()))
    }

    #[test]
    fn charge_advances_time_and_busy() {
        let mut c = ctx();
        c.charge(Phase::Memcpy, Cycles(100));
        assert_eq!(c.now(), Cycles(100));
        assert_eq!(c.busy(), Cycles(100));
        assert_eq!(c.idle(), Cycles::ZERO);
        assert_eq!(c.breakdown.get(Phase::Memcpy), Cycles(100));
    }

    #[test]
    fn wait_until_is_idle() {
        let mut c = ctx();
        c.charge(Phase::Other, Cycles(10));
        c.wait_until(Cycles(50));
        assert_eq!(c.now(), Cycles(50));
        assert_eq!(c.idle(), Cycles(40));
        // Waiting for the past is a no-op.
        c.wait_until(Cycles(20));
        assert_eq!(c.now(), Cycles(50));
    }

    #[test]
    fn spin_until_is_busy() {
        let mut c = ctx();
        c.spin_until(Cycles(30), Phase::Spinlock);
        assert_eq!(c.busy(), Cycles(30));
        assert_eq!(c.breakdown.get(Phase::Spinlock), Cycles(30));
    }

    #[test]
    fn utilization() {
        let mut c = ctx();
        assert_eq!(c.utilization(), 0.0);
        c.charge(Phase::Other, Cycles(75));
        c.wait_until(Cycles(100));
        assert!((c.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reset_stats_keeps_clock() {
        let mut c = ctx();
        c.charge(Phase::Other, Cycles(100));
        c.wait_until(Cycles(150));
        c.reset_stats();
        assert_eq!(c.now(), Cycles(150));
        assert_eq!(c.busy(), Cycles::ZERO);
        assert_eq!(c.idle(), Cycles::ZERO);
        assert_eq!(c.breakdown.total(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "seek backwards")]
    fn seek_backwards_panics() {
        let mut c = ctx();
        c.charge(Phase::Other, Cycles(10));
        c.seek(Cycles(5));
    }
}
