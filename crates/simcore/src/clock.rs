//! Per-core virtual clock and accounting context.

use crate::{Breakdown, CoreId, CostModel, Cycles, Phase};
use std::sync::Arc;

/// The execution context of one virtual core.
///
/// Everything that runs "on a CPU" in the simulation — the DMA API, the
/// network stack, lock spinning — charges its cost here. The context tracks
/// the core's current virtual time, how much of it was spent busy vs idle
/// (for the CPU-utilization columns of the paper's figures), and a per-phase
/// [`Breakdown`] (for the Figure 5/8/10 bars).
#[derive(Debug, Clone)]
pub struct CoreCtx {
    /// This core's identifier.
    pub core: CoreId,
    /// The shared cost model.
    pub cost: Arc<CostModel>,
    /// Number of cores actively driving DMA in the current experiment;
    /// used by the IOMMU model to scale invalidation latency (Figure 8).
    pub active_cores: usize,
    /// Per-phase busy-time accounting.
    pub breakdown: Breakdown,
    now: Cycles,
    busy: Cycles,
    idle: Cycles,
}

/// Deferred per-phase attribution for a burst of charges.
///
/// Accumulates the [`Breakdown`] deltas of several
/// [`CoreCtx::charge_batch`] calls in a plain local, so the hot loop
/// touches the live breakdown once per burst
/// ([`CoreCtx::commit_batch`]) instead of once per charge. Created
/// empty (or via the [`CoreCtx::burst`] scope, which commits
/// automatically).
///
/// Dropping an uncommitted, non-empty batch loses busy-time
/// attribution (the clock already advanced); the `#[must_use]` and the
/// burst scope exist so that cannot happen silently.
#[derive(Debug, Default)]
#[must_use = "a dropped batch loses the breakdown attribution of charges already applied to the clock"]
pub struct ChargeBatch {
    acc: Breakdown,
}

impl ChargeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ChargeBatch::default()
    }

    /// Total cycles accumulated and not yet committed.
    pub fn pending(&self) -> Cycles {
        self.acc.total()
    }

    /// Whether nothing has been charged through this batch.
    pub fn is_empty(&self) -> bool {
        self.acc.total() == Cycles::ZERO
    }
}

impl CoreCtx {
    /// Creates a context for `core` starting at time zero.
    pub fn new(core: CoreId, cost: Arc<CostModel>) -> Self {
        CoreCtx {
            core,
            cost,
            active_cores: 1,
            breakdown: Breakdown::new(),
            now: Cycles::ZERO,
            busy: Cycles::ZERO,
            idle: Cycles::ZERO,
        }
    }

    /// Current virtual time of this core.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Cycles this core spent doing work (including lock spinning, which is
    /// busy-waiting and burns CPU).
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Cycles this core spent idle (waiting for packets/work).
    pub fn idle(&self) -> Cycles {
        self.idle
    }

    /// CPU utilization over the core's lifetime so far, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy + self.idle;
        if total == Cycles::ZERO {
            return 0.0;
        }
        self.busy.get() as f64 / total.get() as f64
    }

    /// Performs `cycles` of busy work attributed to `phase`.
    pub fn charge(&mut self, phase: Phase, cycles: Cycles) {
        self.now += cycles;
        self.busy += cycles;
        self.breakdown.record(phase, cycles);
    }

    /// Performs `cycles` of busy work, parking the per-phase attribution
    /// in `batch` instead of the live [`Breakdown`].
    ///
    /// The clock and busy time advance immediately — virtual-time ordering
    /// (scheduler step order, [`SimLock`](crate::SimLock) contention) is
    /// exactly as if [`CoreCtx::charge`] had been called — only the
    /// breakdown bookkeeping is deferred until [`CoreCtx::commit_batch`].
    /// Burst charging is therefore invariant-preserving by construction:
    /// committing folds the identical per-phase deltas in, just later.
    ///
    /// Callers must commit the batch before anything reads
    /// `self.breakdown` (a profiler scope exit, an experiment collecting
    /// stats) or the reader sees busy time not yet attributed to a phase.
    /// [`CoreCtx::burst`] scopes the lifetime so this cannot be missed.
    pub fn charge_batch(&mut self, batch: &mut ChargeBatch, phase: Phase, cycles: Cycles) {
        self.now += cycles;
        self.busy += cycles;
        batch.acc.record(phase, cycles);
    }

    /// Folds a burst's deferred per-phase attribution into the live
    /// [`Breakdown`] — one bulk add per burst instead of one per charge.
    pub fn commit_batch(&mut self, batch: ChargeBatch) {
        self.breakdown += batch.acc;
    }

    /// Runs `f` as one charge burst: charges made through the provided
    /// [`ChargeBatch`] accumulate in plain locals and commit to the
    /// breakdown once when `f` returns.
    ///
    /// ```
    /// use simcore::{CoreCtx, CoreId, CostModel, Cycles, Phase};
    /// use std::sync::Arc;
    ///
    /// let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    /// ctx.burst(|ctx, b| {
    ///     ctx.charge_batch(b, Phase::Memcpy, Cycles(100));
    ///     ctx.charge_batch(b, Phase::Other, Cycles(20));
    /// });
    /// assert_eq!(ctx.breakdown.get(Phase::Memcpy), Cycles(100));
    /// assert_eq!(ctx.busy(), Cycles(120));
    /// ```
    pub fn burst<R>(&mut self, f: impl FnOnce(&mut CoreCtx, &mut ChargeBatch) -> R) -> R {
        let mut batch = ChargeBatch::new();
        let r = f(self, &mut batch);
        self.commit_batch(batch);
        r
    }

    /// Blocks (idle) until instant `t`. No-op if `t` is in the past.
    pub fn wait_until(&mut self, t: Cycles) {
        if t > self.now {
            self.idle += t - self.now;
            self.now = t;
        }
    }

    /// Busy-waits (spinning) until instant `t`, attributed to `phase`
    /// (normally [`Phase::Spinlock`] or [`Phase::InvalidateIotlb`]).
    pub fn spin_until(&mut self, t: Cycles, phase: Phase) {
        if t > self.now {
            let d = t - self.now;
            self.charge(phase, d);
        }
    }

    /// Resets busy/idle/breakdown accounting without touching the clock.
    ///
    /// Experiments call this after warm-up so steady-state numbers are not
    /// skewed by pool growth and cold caches.
    pub fn reset_stats(&mut self) {
        self.busy = Cycles::ZERO;
        self.idle = Cycles::ZERO;
        self.breakdown = Breakdown::new();
    }

    /// Forces the clock to instant `t` without accounting (used by
    /// schedulers when staging cores at experiment start).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn seek(&mut self, t: Cycles) {
        assert!(t >= self.now, "cannot seek backwards");
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CoreCtx {
        CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()))
    }

    #[test]
    fn charge_advances_time_and_busy() {
        let mut c = ctx();
        c.charge(Phase::Memcpy, Cycles(100));
        assert_eq!(c.now(), Cycles(100));
        assert_eq!(c.busy(), Cycles(100));
        assert_eq!(c.idle(), Cycles::ZERO);
        assert_eq!(c.breakdown.get(Phase::Memcpy), Cycles(100));
    }

    #[test]
    fn wait_until_is_idle() {
        let mut c = ctx();
        c.charge(Phase::Other, Cycles(10));
        c.wait_until(Cycles(50));
        assert_eq!(c.now(), Cycles(50));
        assert_eq!(c.idle(), Cycles(40));
        // Waiting for the past is a no-op.
        c.wait_until(Cycles(20));
        assert_eq!(c.now(), Cycles(50));
    }

    #[test]
    fn spin_until_is_busy() {
        let mut c = ctx();
        c.spin_until(Cycles(30), Phase::Spinlock);
        assert_eq!(c.busy(), Cycles(30));
        assert_eq!(c.breakdown.get(Phase::Spinlock), Cycles(30));
    }

    #[test]
    fn utilization() {
        let mut c = ctx();
        assert_eq!(c.utilization(), 0.0);
        c.charge(Phase::Other, Cycles(75));
        c.wait_until(Cycles(100));
        assert!((c.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reset_stats_keeps_clock() {
        let mut c = ctx();
        c.charge(Phase::Other, Cycles(100));
        c.wait_until(Cycles(150));
        c.reset_stats();
        assert_eq!(c.now(), Cycles(150));
        assert_eq!(c.busy(), Cycles::ZERO);
        assert_eq!(c.idle(), Cycles::ZERO);
        assert_eq!(c.breakdown.total(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "seek backwards")]
    fn seek_backwards_panics() {
        let mut c = ctx();
        c.charge(Phase::Other, Cycles(10));
        c.seek(Cycles(5));
    }

    #[test]
    fn charge_batch_advances_clock_immediately_but_defers_breakdown() {
        let mut c = ctx();
        let mut b = ChargeBatch::new();
        c.charge_batch(&mut b, Phase::Memcpy, Cycles(100));
        assert_eq!(c.now(), Cycles(100), "clock advances at charge time");
        assert_eq!(c.busy(), Cycles(100), "busy advances at charge time");
        assert_eq!(c.breakdown.total(), Cycles::ZERO, "attribution deferred");
        assert_eq!(b.pending(), Cycles(100));
        c.commit_batch(b);
        assert_eq!(c.breakdown.get(Phase::Memcpy), Cycles(100));
    }

    #[test]
    fn burst_scope_commits_on_exit() {
        let mut c = ctx();
        let v = c.burst(|ctx, b| {
            ctx.charge_batch(b, Phase::Memcpy, Cycles(10));
            ctx.charge_batch(b, Phase::Other, Cycles(5));
            assert_eq!(ctx.breakdown.total(), Cycles::ZERO);
            42
        });
        assert_eq!(v, 42);
        assert_eq!(c.breakdown.get(Phase::Memcpy), Cycles(10));
        assert_eq!(c.breakdown.get(Phase::Other), Cycles(5));
        assert_eq!(c.busy(), Cycles(15));
    }

    #[test]
    fn burst_charging_is_cycle_identical_to_per_charge() {
        // Property: for any charge pattern, running it through a burst
        // yields the same clock, busy time, and per-phase breakdown as
        // charging each item live. Deterministic xorshift stimulus.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..100 {
            let pattern: Vec<(Phase, Cycles)> = (0..(rnd() % 32))
                .map(|_| {
                    let phase = Phase::ALL[(rnd() % Phase::ALL.len() as u64) as usize];
                    (phase, Cycles(rnd() % 10_000))
                })
                .collect();
            let mut live = ctx();
            for &(p, cy) in &pattern {
                live.charge(p, cy);
            }
            let mut burst = ctx();
            burst.burst(|ctx, b| {
                for &(p, cy) in &pattern {
                    ctx.charge_batch(b, p, cy);
                }
            });
            assert_eq!(burst.now(), live.now());
            assert_eq!(burst.busy(), live.busy());
            for p in Phase::ALL {
                assert_eq!(burst.breakdown.get(p), live.breakdown.get(p), "{p:?}");
            }
        }
    }
}
