//! Earliest-core-first multi-core scheduler.
//!
//! The ready queue is a hierarchical timing wheel ([`TimingWheel`]) rather
//! than a binary heap: the per-step reschedule — pop the earliest core,
//! advance it, push it back a packet-length ahead — is the hottest
//! scheduler operation in every figure run, and on the wheel both ends are
//! O(1) bitmap-and-push work for the common near-future case. Pop order is
//! exactly the old heap's lexicographic `(time, core id)` order, which the
//! property tests below pin against a `BinaryHeap` oracle.

// lint: allow(panic) — wheel occupancy-bitmap/len invariants are scheduler
// bugs, not runtime errors; the oracle property tests exercise them

use crate::{CoreCtx, CoreId, CostModel, Cycles};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Slots per wheel level; one occupancy bit per slot fills a `u64`.
const WHEEL_SLOTS: usize = 64;
/// Bits of the time key consumed per level (`64 = 1 << 6` slots).
const WHEEL_BITS: u32 = 6;
/// Wheel levels. An event whose time differs from the cursor in a 6-bit
/// digit at or above this level is parked in the overflow heap instead
/// (far-future waits: wire backpressure stalls, idle cores at horizon).
const WHEEL_LEVELS: usize = 4;

/// The 6-bit digit position where `t` and `base` first differ, scanning
/// from the top — the wheel level an event at `t` belongs to while the
/// cursor sits at `base`.
#[inline]
fn wheel_level(base: u64, t: u64) -> usize {
    let x = base ^ t;
    if x == 0 {
        0
    } else {
        ((63 - x.leading_zeros()) / WHEEL_BITS) as usize
    }
}

/// Hierarchical timing wheel over `(Cycles, core index)` keys, popping in
/// exactly the lexicographic order a min-heap of `(time, core)` would.
///
/// Level `k` buckets events by the `k`-th 6-bit digit of their time, but
/// only events whose digits *above* `k` all match the cursor `base` live
/// there. That invariant (maintained by choosing the level from
/// `base ^ t`) means a level's occupied slots always sit at or after the
/// cursor's slot — the lowest set occupancy bit is always the earliest
/// slot, with no ring-wrap case. Events past the top level's span go to a
/// `BinaryHeap` overflow; they are provably later than every wheel entry
/// (they differ from `base` in a digit the whole wheel agrees on), so the
/// heap only needs consulting when the wheel is empty.
///
/// Pushing a time earlier than the last popped time is not supported
/// (debug-asserted): the simulation only ever reschedules a core at or
/// after the instant it was stepped.
#[derive(Debug)]
pub struct TimingWheel {
    /// Cursor: the last popped time (no event precedes it).
    base: u64,
    /// Per-level slot occupancy bitmaps.
    occupied: [u64; WHEEL_LEVELS],
    /// `WHEEL_LEVELS * WHEEL_SLOTS` buckets of `(time, core)` entries.
    slots: Vec<Vec<(u64, usize)>>,
    /// Far-future events, beyond the top level's span from `base`.
    overflow: BinaryHeap<Reverse<(u64, usize)>>,
    len: usize,
}

impl Default for TimingWheel {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl TimingWheel {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            base: 0,
            occupied: [0; WHEEL_LEVELS],
            slots: vec![Vec::new(); WHEEL_LEVELS * WHEEL_SLOTS],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `core` to run at `t`. `t` must not precede the last popped
    /// time.
    pub fn push(&mut self, t: Cycles, core: usize) {
        debug_assert!(t.get() >= self.base, "push into the past");
        self.insert(t.get(), core);
        self.len += 1;
    }

    fn insert(&mut self, t: u64, core: usize) {
        let lvl = wheel_level(self.base, t);
        if lvl >= WHEEL_LEVELS {
            self.overflow.push(Reverse((t, core)));
        } else {
            let slot = ((t >> (WHEEL_BITS * lvl as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
            self.occupied[lvl] |= 1 << slot;
            self.slots[lvl * WHEEL_SLOTS + slot].push((t, core));
        }
    }

    /// Removes and returns the earliest event, ties broken by lowest core
    /// index — the exact order of a min-heap over `(time, core)`.
    pub fn pop(&mut self) -> Option<(Cycles, usize)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        loop {
            let Some(lvl) = (0..WHEEL_LEVELS).find(|&k| self.occupied[k] != 0) else {
                // Wheel empty: jump the cursor to the overflow's earliest
                // event and pull newly-in-range events back into the wheel.
                let Reverse((t, core)) = self.overflow.pop().expect("len tracked");
                self.base = t;
                while let Some(&Reverse((ot, _))) = self.overflow.peek() {
                    if wheel_level(self.base, ot) >= WHEEL_LEVELS {
                        break;
                    }
                    let Reverse((ot, oc)) = self.overflow.pop().expect("peeked");
                    self.insert(ot, oc);
                }
                return Some((Cycles(t), core));
            };
            let slot = self.occupied[lvl].trailing_zeros() as usize;
            let bucket = lvl * WHEEL_SLOTS + slot;
            if lvl == 0 {
                // A level-0 bucket holds exactly one distinct time; take
                // the lowest core index.
                let min = self.slots[bucket]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &e)| e)
                    .map(|(i, _)| i)
                    .expect("occupied bit set");
                let (t, core) = self.slots[bucket].swap_remove(min);
                if self.slots[bucket].is_empty() {
                    self.occupied[0] &= !(1 << slot);
                }
                self.base = t;
                return Some((Cycles(t), core));
            }
            // Cascade: advance the cursor to the bucket's earliest time and
            // re-bucket its events, which now all land on lower levels.
            let drained = std::mem::take(&mut self.slots[bucket]);
            self.occupied[lvl] &= !(1 << slot);
            self.base = drained.iter().map(|&(t, _)| t).min().expect("bit set");
            for (t, core) in drained {
                self.insert(t, core);
            }
        }
    }
}

/// Result of one scheduling step of a [`CoreTask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The task has more work; reschedule at the core's new time.
    Continue,
    /// The task is finished; the core leaves the simulation.
    Done,
}

/// A unit of per-core work driven by [`MultiCoreSim`].
///
/// One `step` should simulate one work item (a packet, a transaction);
/// shared virtual-time resources ([`crate::SimLock`], [`crate::Wire`]) are
/// touched inside `step`. The scheduler always steps the core with the
/// earliest clock, so resource acquisition order approximates global FIFO
/// order with an error bounded by one step length.
pub trait CoreTask {
    /// Simulates one work item on the given core, advancing `ctx`.
    fn step(&mut self, ctx: &mut CoreCtx) -> StepOutcome;
}

impl<F: FnMut(&mut CoreCtx) -> StepOutcome> CoreTask for F {
    fn step(&mut self, ctx: &mut CoreCtx) -> StepOutcome {
        self(ctx)
    }
}

/// Deterministic multi-core simulation driver.
///
/// Owns one [`CoreCtx`] per core and repeatedly steps the earliest core
/// (ties broken by core id) until every task completes or the horizon is
/// reached.
#[derive(Debug)]
pub struct MultiCoreSim {
    ctxs: Vec<CoreCtx>,
}

impl MultiCoreSim {
    /// Creates a simulation with `n_cores` cores sharing `cost`.
    ///
    /// Every context's `active_cores` is set to `n_cores`.
    pub fn new(cost: Arc<CostModel>, n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        let ctxs = (0..n_cores)
            .map(|i| {
                let mut c = CoreCtx::new(CoreId(i as u16), cost.clone());
                c.active_cores = n_cores;
                c
            })
            .collect();
        MultiCoreSim { ctxs }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.ctxs.len()
    }

    /// Access to the per-core contexts (for stats extraction).
    pub fn ctxs(&self) -> &[CoreCtx] {
        &self.ctxs
    }

    /// Mutable access to the per-core contexts (e.g. to reset stats after
    /// warm-up).
    pub fn ctxs_mut(&mut self) -> &mut [CoreCtx] {
        &mut self.ctxs
    }

    /// Runs one task per core until all tasks are done or every remaining
    /// core's clock passes `horizon`.
    ///
    /// Returns the virtual instant at which the last core stopped.
    ///
    /// # Panics
    ///
    /// Panics if `tasks.len()` differs from the core count, or if a task
    /// fails to advance its core's clock for a large number of consecutive
    /// steps (which would indicate a stuck simulation).
    pub fn run(&mut self, tasks: &mut [Box<dyn CoreTask + '_>], horizon: Cycles) -> Cycles {
        assert_eq!(
            tasks.len(),
            self.ctxs.len(),
            "one task per core is required"
        );
        let mut wheel = TimingWheel::new();
        for (i, c) in self.ctxs.iter().enumerate() {
            wheel.push(c.now(), i);
        }
        let mut stalls = vec![0u32; self.ctxs.len()];
        let mut last_time = Cycles::ZERO;
        while let Some((t, i)) = wheel.pop() {
            last_time = last_time.max(t);
            if t >= horizon {
                continue;
            }
            let ctx = &mut self.ctxs[i];
            let before = ctx.now();
            let outcome = tasks[i].step(ctx);
            let after = ctx.now();
            last_time = last_time.max(after);
            if outcome == StepOutcome::Done {
                continue;
            }
            if after == before {
                stalls[i] += 1;
                assert!(
                    stalls[i] < 1_000_000,
                    "task on core {i} made no progress for 1e6 steps"
                );
            } else {
                stalls[i] = 0;
            }
            wheel.push(after, i);
        }
        last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, SimLock};

    #[test]
    fn steps_earliest_core_first() {
        let cost = Arc::new(CostModel::zero());
        let mut sim = MultiCoreSim::new(cost, 2);
        let order = std::cell::RefCell::new(Vec::new());
        {
            let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![
                Box::new(|ctx: &mut CoreCtx| {
                    order.borrow_mut().push((ctx.core, ctx.now()));
                    ctx.charge(Phase::Other, Cycles(100));
                    if ctx.now() >= Cycles(300) {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                }),
                Box::new(|ctx: &mut CoreCtx| {
                    order.borrow_mut().push((ctx.core, ctx.now()));
                    ctx.charge(Phase::Other, Cycles(150));
                    if ctx.now() >= Cycles(300) {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                }),
            ];
            sim.run(&mut tasks, Cycles::MAX);
        }
        let order = order.into_inner();
        // Times must be non-decreasing because the earliest core runs first.
        for w in order.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "step at {:?} ran after a step at {:?}",
                w[1].1,
                w[0].1
            );
        }
        // Both cores ran to >= 300.
        assert!(sim.ctxs()[0].now() >= Cycles(300));
        assert!(sim.ctxs()[1].now() >= Cycles(300));
    }

    #[test]
    fn horizon_stops_tasks() {
        let cost = Arc::new(CostModel::zero());
        let mut sim = MultiCoreSim::new(cost, 1);
        let mut steps = 0u32;
        {
            let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![Box::new(|ctx: &mut CoreCtx| {
                steps += 1;
                ctx.charge(Phase::Other, Cycles(10));
                StepOutcome::Continue
            })];
            sim.run(&mut tasks, Cycles(100));
        }
        assert_eq!(steps, 10);
    }

    #[test]
    fn lock_contention_is_fifo_in_virtual_time() {
        // Two cores each take the same lock per step and hold it for 100
        // cycles; total throughput should be one critical section per 100
        // cycles, i.e. the cores perfectly interleave.
        let cost = Arc::new(CostModel::zero());
        let lock = SimLock::new("shared");
        let mut sim = MultiCoreSim::new(cost, 2);
        {
            let l = &lock;
            let mk = || {
                move |ctx: &mut CoreCtx| {
                    l.with(ctx, |ctx| ctx.charge(Phase::Other, Cycles(100)));
                    StepOutcome::Continue
                }
            };
            let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![Box::new(mk()), Box::new(mk())];
            sim.run(&mut tasks, Cycles(10_000));
        }
        let s = lock.stats();
        // ~100 acquisitions fit in 10k cycles at 100 cycles each.
        assert!((95..=105).contains(&s.acquisitions), "{}", s.acquisitions);
        // Every acquisition after the first pair should have spun ~100 cyc.
        assert!(
            s.total_spin >= Cycles(4000),
            "spin = {}",
            s.total_spin.get()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let cost = Arc::new(CostModel::haswell_2_4ghz());
            let lock = SimLock::new("l");
            let mut sim = MultiCoreSim::new(cost, 4);
            {
                let l = &lock;
                let mut tasks: Vec<Box<dyn CoreTask + '_>> = (0..4)
                    .map(|i: u64| {
                        Box::new(move |ctx: &mut CoreCtx| {
                            ctx.charge(Phase::Other, Cycles(50 + i * 13));
                            l.with(ctx, |ctx| ctx.charge(Phase::Memcpy, Cycles(30)));
                            StepOutcome::Continue
                        }) as Box<dyn CoreTask + '_>
                    })
                    .collect();
                sim.run(&mut tasks, Cycles(100_000));
            }
            (
                lock.stats(),
                sim.ctxs().iter().map(|c| c.now()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "one task per core")]
    fn task_count_mismatch_panics() {
        let mut sim = MultiCoreSim::new(Arc::new(CostModel::zero()), 2);
        let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![];
        sim.run(&mut tasks, Cycles(1));
    }

    /// Charge deltas that exercise every wheel regime: same-slot
    /// rescheduling (0 and tiny), digit-boundary crossings at each level,
    /// and far-future jumps that overflow into the fallback heap.
    fn random_delta(rng: &mut crate::SimRng) -> u64 {
        match rng.below(10) {
            0 => 0,
            1..=4 => rng.below(64),
            5 | 6 => rng.below(4096),
            7 => rng.below(1 << 18),
            8 => rng.below(1 << 24),
            _ => rng.below(1 << 34),
        }
    }

    #[test]
    fn wheel_matches_heap_oracle_pop_order() {
        // Drive the wheel and a BinaryHeap through identical random
        // push/pop sequences and require identical pop order, including
        // same-time entries (ties must come out lowest-core-first).
        for seed in 0..20u64 {
            let mut rng = crate::SimRng::seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5);
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
            let cores = 1 + rng.below(24) as usize;
            for i in 0..cores {
                let t = random_delta(&mut rng);
                wheel.push(Cycles(t), i);
                heap.push(Reverse((t, i)));
            }
            // Deliberate tie pile-up: several cores at one instant.
            for _ in 0..1500 {
                let got = wheel.pop();
                let want = heap.pop().map(|Reverse((t, i))| (Cycles(t), i));
                assert_eq!(got, want, "pop order diverged");
                let Some((t, i)) = got else { break };
                if rng.chance(0.9) {
                    let nt = t.get() + random_delta(&mut rng);
                    wheel.push(Cycles(nt), i);
                    heap.push(Reverse((nt, i)));
                    if rng.chance(0.2) {
                        // Pile a second entry onto the same instant so the
                        // lowest-core-first tie break is actually exercised.
                        let j = cores + rng.below(cores as u64) as usize;
                        wheel.push(Cycles(nt), j);
                        heap.push(Reverse((nt, j)));
                    }
                }
            }
            assert_eq!(wheel.len(), heap.len());
            while let Some(got) = wheel.pop() {
                let want = heap.pop().map(|Reverse((t, i))| (Cycles(t), i));
                assert_eq!(Some(got), want, "drain order diverged");
            }
            assert!(heap.pop().is_none());
        }
    }

    /// The old `BinaryHeap` scheduler loop, kept verbatim as the oracle
    /// for [`MultiCoreSim::run`]'s step-order equivalence.
    fn run_heap_oracle(
        ctxs: &mut [CoreCtx],
        tasks: &mut [Box<dyn CoreTask + '_>],
        horizon: Cycles,
    ) -> Cycles {
        let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> = ctxs
            .iter()
            .enumerate()
            .map(|(i, c)| Reverse((c.now(), i)))
            .collect();
        let mut last_time = Cycles::ZERO;
        while let Some(Reverse((t, i))) = heap.pop() {
            last_time = last_time.max(t);
            if t >= horizon {
                continue;
            }
            let ctx = &mut ctxs[i];
            let outcome = tasks[i].step(ctx);
            let after = ctx.now();
            last_time = last_time.max(after);
            if outcome == StepOutcome::Done {
                continue;
            }
            heap.push(Reverse((after, i)));
        }
        last_time
    }

    #[test]
    fn run_matches_heap_oracle_step_order() {
        // Same random-charge tasks through the wheel-based run() and the
        // old heap loop: identical step sequence, end times, and result.
        for seed in [7u64, 99, 4242] {
            let record = |use_oracle: bool| {
                let cost = Arc::new(CostModel::zero());
                let cores = 6;
                let mut sim = MultiCoreSim::new(cost, cores);
                let steps = std::cell::RefCell::new(Vec::new());
                let rngs: Vec<_> = (0..cores)
                    .map(|i| std::cell::RefCell::new(crate::SimRng::seed(seed ^ i as u64)))
                    .collect();
                let last = {
                    let mut tasks: Vec<Box<dyn CoreTask + '_>> = (0..cores)
                        .map(|i| {
                            let steps = &steps;
                            let rngs = &rngs;
                            Box::new(move |ctx: &mut CoreCtx| {
                                steps.borrow_mut().push((ctx.core, ctx.now()));
                                let d = random_delta(&mut rngs[i].borrow_mut());
                                ctx.charge(Phase::Other, Cycles(d));
                                if steps.borrow().len() > 400 {
                                    StepOutcome::Done
                                } else {
                                    StepOutcome::Continue
                                }
                            }) as Box<dyn CoreTask + '_>
                        })
                        .collect();
                    if use_oracle {
                        run_heap_oracle(sim.ctxs_mut(), &mut tasks, Cycles(1 << 40))
                    } else {
                        sim.run(&mut tasks, Cycles(1 << 40))
                    }
                };
                (steps.into_inner(), last)
            };
            assert_eq!(record(false), record(true), "seed {seed}");
        }
    }
}
