//! Earliest-core-first multi-core scheduler.

use crate::{CoreCtx, CoreId, CostModel, Cycles};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Result of one scheduling step of a [`CoreTask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The task has more work; reschedule at the core's new time.
    Continue,
    /// The task is finished; the core leaves the simulation.
    Done,
}

/// A unit of per-core work driven by [`MultiCoreSim`].
///
/// One `step` should simulate one work item (a packet, a transaction);
/// shared virtual-time resources ([`crate::SimLock`], [`crate::Wire`]) are
/// touched inside `step`. The scheduler always steps the core with the
/// earliest clock, so resource acquisition order approximates global FIFO
/// order with an error bounded by one step length.
pub trait CoreTask {
    /// Simulates one work item on the given core, advancing `ctx`.
    fn step(&mut self, ctx: &mut CoreCtx) -> StepOutcome;
}

impl<F: FnMut(&mut CoreCtx) -> StepOutcome> CoreTask for F {
    fn step(&mut self, ctx: &mut CoreCtx) -> StepOutcome {
        self(ctx)
    }
}

/// Deterministic multi-core simulation driver.
///
/// Owns one [`CoreCtx`] per core and repeatedly steps the earliest core
/// (ties broken by core id) until every task completes or the horizon is
/// reached.
#[derive(Debug)]
pub struct MultiCoreSim {
    ctxs: Vec<CoreCtx>,
}

impl MultiCoreSim {
    /// Creates a simulation with `n_cores` cores sharing `cost`.
    ///
    /// Every context's `active_cores` is set to `n_cores`.
    pub fn new(cost: Arc<CostModel>, n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        let ctxs = (0..n_cores)
            .map(|i| {
                let mut c = CoreCtx::new(CoreId(i as u16), cost.clone());
                c.active_cores = n_cores;
                c
            })
            .collect();
        MultiCoreSim { ctxs }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.ctxs.len()
    }

    /// Access to the per-core contexts (for stats extraction).
    pub fn ctxs(&self) -> &[CoreCtx] {
        &self.ctxs
    }

    /// Mutable access to the per-core contexts (e.g. to reset stats after
    /// warm-up).
    pub fn ctxs_mut(&mut self) -> &mut [CoreCtx] {
        &mut self.ctxs
    }

    /// Runs one task per core until all tasks are done or every remaining
    /// core's clock passes `horizon`.
    ///
    /// Returns the virtual instant at which the last core stopped.
    ///
    /// # Panics
    ///
    /// Panics if `tasks.len()` differs from the core count, or if a task
    /// fails to advance its core's clock for a large number of consecutive
    /// steps (which would indicate a stuck simulation).
    pub fn run(&mut self, tasks: &mut [Box<dyn CoreTask + '_>], horizon: Cycles) -> Cycles {
        assert_eq!(
            tasks.len(),
            self.ctxs.len(),
            "one task per core is required"
        );
        // Min-heap of (time, core index).
        let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> = self
            .ctxs
            .iter()
            .enumerate()
            .map(|(i, c)| Reverse((c.now(), i)))
            .collect();
        let mut stalls = vec![0u32; self.ctxs.len()];
        let mut last_time = Cycles::ZERO;
        while let Some(Reverse((t, i))) = heap.pop() {
            last_time = last_time.max(t);
            if t >= horizon {
                continue;
            }
            let ctx = &mut self.ctxs[i];
            let before = ctx.now();
            let outcome = tasks[i].step(ctx);
            let after = ctx.now();
            last_time = last_time.max(after);
            if outcome == StepOutcome::Done {
                continue;
            }
            if after == before {
                stalls[i] += 1;
                assert!(
                    stalls[i] < 1_000_000,
                    "task on core {i} made no progress for 1e6 steps"
                );
            } else {
                stalls[i] = 0;
            }
            heap.push(Reverse((after, i)));
        }
        last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, SimLock};

    #[test]
    fn steps_earliest_core_first() {
        let cost = Arc::new(CostModel::zero());
        let mut sim = MultiCoreSim::new(cost, 2);
        let order = std::cell::RefCell::new(Vec::new());
        {
            let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![
                Box::new(|ctx: &mut CoreCtx| {
                    order.borrow_mut().push((ctx.core, ctx.now()));
                    ctx.charge(Phase::Other, Cycles(100));
                    if ctx.now() >= Cycles(300) {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                }),
                Box::new(|ctx: &mut CoreCtx| {
                    order.borrow_mut().push((ctx.core, ctx.now()));
                    ctx.charge(Phase::Other, Cycles(150));
                    if ctx.now() >= Cycles(300) {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                }),
            ];
            sim.run(&mut tasks, Cycles::MAX);
        }
        let order = order.into_inner();
        // Times must be non-decreasing because the earliest core runs first.
        for w in order.windows(2) {
            assert!(w[1].1 >= w[0].1.min(w[1].1));
        }
        // Both cores ran to >= 300.
        assert!(sim.ctxs()[0].now() >= Cycles(300));
        assert!(sim.ctxs()[1].now() >= Cycles(300));
    }

    #[test]
    fn horizon_stops_tasks() {
        let cost = Arc::new(CostModel::zero());
        let mut sim = MultiCoreSim::new(cost, 1);
        let mut steps = 0u32;
        {
            let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![Box::new(|ctx: &mut CoreCtx| {
                steps += 1;
                ctx.charge(Phase::Other, Cycles(10));
                StepOutcome::Continue
            })];
            sim.run(&mut tasks, Cycles(100));
        }
        assert_eq!(steps, 10);
    }

    #[test]
    fn lock_contention_is_fifo_in_virtual_time() {
        // Two cores each take the same lock per step and hold it for 100
        // cycles; total throughput should be one critical section per 100
        // cycles, i.e. the cores perfectly interleave.
        let cost = Arc::new(CostModel::zero());
        let lock = SimLock::new("shared");
        let mut sim = MultiCoreSim::new(cost, 2);
        {
            let l = &lock;
            let mk = || {
                move |ctx: &mut CoreCtx| {
                    l.with(ctx, |ctx| ctx.charge(Phase::Other, Cycles(100)));
                    StepOutcome::Continue
                }
            };
            let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![Box::new(mk()), Box::new(mk())];
            sim.run(&mut tasks, Cycles(10_000));
        }
        let s = lock.stats();
        // ~100 acquisitions fit in 10k cycles at 100 cycles each.
        assert!((95..=105).contains(&s.acquisitions), "{}", s.acquisitions);
        // Every acquisition after the first pair should have spun ~100 cyc.
        assert!(
            s.total_spin >= Cycles(4000),
            "spin = {}",
            s.total_spin.get()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let cost = Arc::new(CostModel::haswell_2_4ghz());
            let lock = SimLock::new("l");
            let mut sim = MultiCoreSim::new(cost, 4);
            {
                let l = &lock;
                let mut tasks: Vec<Box<dyn CoreTask + '_>> = (0..4)
                    .map(|i: u64| {
                        Box::new(move |ctx: &mut CoreCtx| {
                            ctx.charge(Phase::Other, Cycles(50 + i * 13));
                            l.with(ctx, |ctx| ctx.charge(Phase::Memcpy, Cycles(30)));
                            StepOutcome::Continue
                        }) as Box<dyn CoreTask + '_>
                    })
                    .collect();
                sim.run(&mut tasks, Cycles(100_000));
            }
            (
                lock.stats(),
                sim.ctxs().iter().map(|c| c.now()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "one task per core")]
    fn task_count_mismatch_panics() {
        let mut sim = MultiCoreSim::new(Arc::new(CostModel::zero()), 2);
        let mut tasks: Vec<Box<dyn CoreTask + '_>> = vec![];
        sim.run(&mut tasks, Cycles(1));
    }
}
