//! Virtual time units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A quantity of virtual CPU cycles.
///
/// All simulated time in this workspace is expressed in cycles of the
/// modeled CPU clock (2.4 GHz for the paper's Haswell testbed); conversion
/// to wall time requires a clock frequency, see [`Cycles::to_nanos`].
///
/// `Cycles` is used both as a *duration* and as an *instant* (cycles since
/// simulation start); the two are not statically distinguished because the
/// simulation code mixes them freely in saturating arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximum representable instant; used as "never".
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a cycle count.
    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// Raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts a duration in nanoseconds at the given clock to cycles,
    /// rounding to the nearest cycle.
    pub fn from_nanos(ns: f64, clock_ghz: f64) -> Self {
        Cycles((ns * clock_ghz).round() as u64)
    }

    /// Converts to nanoseconds at the given clock frequency.
    pub fn to_nanos(self, clock_ghz: f64) -> f64 {
        self.0 as f64 / clock_ghz
    }

    /// Converts to microseconds at the given clock frequency.
    pub fn to_micros(self, clock_ghz: f64) -> f64 {
        self.to_nanos(clock_ghz) / 1_000.0
    }

    /// Converts to seconds at the given clock frequency.
    pub fn to_secs(self, clock_ghz: f64) -> f64 {
        self.to_nanos(clock_ghz) / 1e9
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// The later of two instants.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Multiplies by a floating point factor, rounding to nearest.
    pub fn scale(self, factor: f64) -> Cycles {
        Cycles((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

/// A throughput in gigabits per second.
///
/// Thin newtype used by reports so that numbers are not confused with
/// CPU-percent or transactions-per-second columns.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Gbps(pub f64);

impl Gbps {
    /// Computes throughput from payload bytes moved over a virtual duration.
    ///
    /// Returns zero for an empty duration.
    pub fn from_bytes(bytes: u64, elapsed: Cycles, clock_ghz: f64) -> Gbps {
        let secs = elapsed.to_secs(clock_ghz);
        if secs <= 0.0 {
            return Gbps(0.0);
        }
        Gbps(bytes as f64 * 8.0 / secs / 1e9)
    }

    /// Raw value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Gbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Gb/s", self.0)
    }
}

/// Identifier of a virtual core.
///
/// Cores are numbered `0..n`; NUMA placement is derived from the core id by
/// the memory subsystem (`memsim`), matching the paper's two-socket, 8
/// cores/socket layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Creates a core id.
    pub const fn new(id: u16) -> Self {
        CoreId(id)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_roundtrip_nanos() {
        let c = Cycles::from_nanos(610.0, 2.4);
        assert_eq!(c.0, 1464);
        let back = c.to_nanos(2.4);
        assert!((back - 610.0).abs() < 0.5);
    }

    #[test]
    fn cycles_arith() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        assert_eq!(a * 3, Cycles(300));
        assert_eq!(a / 4, Cycles(25));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cycles_scale_rounds() {
        assert_eq!(Cycles(10).scale(1.25), Cycles(13)); // 12.5 rounds up
        assert_eq!(Cycles(10).scale(0.0), Cycles::ZERO);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn gbps_from_bytes() {
        // 40 Gb/s: 5e9 bytes per second. 2.4e9 cycles = 1 s.
        let g = Gbps::from_bytes(5_000_000_000, Cycles(2_400_000_000), 2.4);
        assert!((g.0 - 40.0).abs() < 1e-9);
        assert_eq!(Gbps::from_bytes(100, Cycles::ZERO, 2.4).0, 0.0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Cycles(5).to_string(), "5cyc");
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(Gbps(12.345).to_string(), "12.35 Gb/s");
    }
}
