//! Spinlocks contended in virtual time.

// lint: allow(relaxed-atomic) — contention counters and virtual-time
// stamps; the scheduler serializes simulated cores, so the atomics carry
// statistics, not synchronization

use crate::{CoreCtx, Cycles, Phase};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Contention statistics of a [`SimLock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStats {
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to spin.
    pub contended: u64,
    /// Total cycles spent spinning across all cores.
    pub total_spin: Cycles,
    /// Total cycles the lock was held.
    pub total_held: Cycles,
}

/// A spinlock whose contention is modeled in virtual time.
///
/// This is the mechanism behind the paper's central scalability result: the
/// IOMMU invalidation queue is protected by a single such lock, and under
/// strict protection at 16 cores the cores serialize on it (Figure 8 shows
/// ≈70 µs/packet of spinning).
///
/// The lock is *not* a host-level synchronization primitive — the simulation
/// is single-threaded — it simply tracks the virtual instant at which it
/// will next be free and charges arriving cores the spin time. Because the
/// multi-core scheduler steps the earliest core first, acquisition order is
/// FIFO in virtual time.
#[derive(Debug, Default)]
pub struct SimLock {
    name: &'static str,
    free_at: AtomicU64,
    held: AtomicBool,
    held_since: AtomicU64,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    total_spin: AtomicU64,
    total_held: AtomicU64,
}

impl SimLock {
    /// Creates a named lock (the name appears in diagnostics).
    pub fn new(name: &'static str) -> Self {
        SimLock {
            name,
            ..Default::default()
        }
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock on the calling core, spinning in virtual time if
    /// it is held. The spin (if any) plus the uncontended acquire cost are
    /// charged to [`Phase::Spinlock`].
    ///
    /// Returns the cycles *this* acquisition spent spinning
    /// ([`Cycles::ZERO`] when uncontended). Callers attributing contention
    /// to an acquisition site must use this value — not a diff of the
    /// global [`LockStats::total_spin`] counter, which also accumulates
    /// other cores' concurrent spins.
    ///
    /// # Panics
    ///
    /// Panics if the lock is already held (no recursion: the code under
    /// simulation never self-deadlocks, so this indicates a harness bug).
    #[inline]
    pub fn lock(&self, ctx: &mut CoreCtx) -> Cycles {
        assert!(
            !self.held.load(Ordering::Relaxed),
            "SimLock {:?} acquired while held (missing unlock?)",
            self.name
        );
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let free_at = Cycles(self.free_at.load(Ordering::Relaxed));
        let mut spin = Cycles::ZERO;
        if free_at > ctx.now() {
            self.contended.fetch_add(1, Ordering::Relaxed);
            spin = free_at - ctx.now();
            self.total_spin.fetch_add(spin.get(), Ordering::Relaxed);
            ctx.spin_until(free_at, Phase::Spinlock);
        }
        ctx.charge(Phase::Spinlock, ctx.cost.spinlock_uncontended);
        self.held.store(true, Ordering::Relaxed);
        self.held_since.store(ctx.now().get(), Ordering::Relaxed);
        spin
    }

    /// Releases the lock at the calling core's current time.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    #[inline]
    pub fn unlock(&self, ctx: &mut CoreCtx) {
        assert!(
            self.held.swap(false, Ordering::Relaxed),
            "SimLock {:?} released while free",
            self.name
        );
        let since = self.held_since.load(Ordering::Relaxed);
        let now = ctx.now().get();
        debug_assert!(now >= since);
        self.total_held.fetch_add(now - since, Ordering::Relaxed);
        self.free_at.store(now, Ordering::Relaxed);
    }

    /// Runs `f` with the lock held, releasing it afterwards.
    #[inline]
    pub fn with<R>(&self, ctx: &mut CoreCtx, f: impl FnOnce(&mut CoreCtx) -> R) -> R {
        self.lock(ctx);
        let r = f(ctx);
        self.unlock(ctx);
        r
    }

    /// Like [`SimLock::with`], but also returns the cycles this
    /// acquisition spent spinning — the per-acquisition figure contention
    /// tracing must attribute to the calling site.
    #[inline]
    pub fn with_spin<R>(
        &self,
        ctx: &mut CoreCtx,
        f: impl FnOnce(&mut CoreCtx) -> R,
    ) -> (R, Cycles) {
        let spin = self.lock(ctx);
        let r = f(ctx);
        self.unlock(ctx);
        (r, spin)
    }

    /// Whether the lock is currently held.
    pub fn is_held(&self) -> bool {
        self.held.load(Ordering::Relaxed)
    }

    /// Snapshot of contention statistics.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            total_spin: Cycles(self.total_spin.load(Ordering::Relaxed)),
            total_held: Cycles(self.total_held.load(Ordering::Relaxed)),
        }
    }

    /// Clears statistics (e.g. after experiment warm-up).
    pub fn reset_stats(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.total_spin.store(0, Ordering::Relaxed);
        self.total_held.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreId, CostModel};
    use std::sync::Arc;

    fn ctx_at(core: u16, t: u64) -> CoreCtx {
        let mut c = CoreCtx::new(CoreId(core), Arc::new(CostModel::zero()));
        c.seek(Cycles(t));
        c
    }

    #[test]
    fn uncontended_acquire_is_cheap() {
        let l = SimLock::new("test");
        let mut c = ctx_at(0, 100);
        l.lock(&mut c);
        assert_eq!(c.now(), Cycles(100)); // zero cost model
        l.unlock(&mut c);
        let s = l.stats();
        assert_eq!(s.acquisitions, 1);
        assert_eq!(s.contended, 0);
    }

    #[test]
    fn contended_acquire_spins_until_free() {
        let l = SimLock::new("test");
        // Core 0 holds the lock from t=0 to t=500.
        let mut c0 = ctx_at(0, 0);
        l.lock(&mut c0);
        c0.charge(Phase::Other, Cycles(500));
        l.unlock(&mut c0);

        // Core 1 arrives at t=100 and must spin until t=500.
        let mut c1 = ctx_at(1, 100);
        assert_eq!(l.lock(&mut c1), Cycles(400));
        assert_eq!(c1.now(), Cycles(500));
        assert_eq!(c1.breakdown.get(Phase::Spinlock), Cycles(400));
        l.unlock(&mut c1);

        let s = l.stats();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.contended, 1);
        assert_eq!(s.total_spin, Cycles(400));
        assert_eq!(s.total_held, Cycles(500));
    }

    #[test]
    fn with_releases() {
        let l = SimLock::new("test");
        let mut c = ctx_at(0, 0);
        let v = l.with(&mut c, |ctx| {
            ctx.charge(Phase::Other, Cycles(10));
            42
        });
        assert_eq!(v, 42);
        assert!(!l.is_held());
        assert_eq!(l.stats().total_held, Cycles(10));
    }

    #[test]
    fn uncontended_cost_is_charged() {
        let cost = Arc::new(CostModel::haswell_2_4ghz());
        let mut c = CoreCtx::new(CoreId(0), cost.clone());
        let l = SimLock::new("test");
        l.with(&mut c, |_| {});
        assert_eq!(c.breakdown.get(Phase::Spinlock), cost.spinlock_uncontended);
    }

    #[test]
    #[should_panic(expected = "released while free")]
    fn double_unlock_panics() {
        let l = SimLock::new("test");
        let mut c = ctx_at(0, 0);
        l.lock(&mut c);
        l.unlock(&mut c);
        l.unlock(&mut c);
    }

    #[test]
    #[should_panic(expected = "while held")]
    fn recursive_lock_panics() {
        let l = SimLock::new("test");
        let mut c = ctx_at(0, 0);
        l.lock(&mut c);
        l.lock(&mut c);
    }

    #[test]
    fn per_acquisition_spin_is_not_the_global_counter() {
        // Two simulated threads: core 1 spins behind core 0's critical
        // section, then core 2 acquires the (by now free) lock. The old
        // accounting diffed `total_spin` around an acquisition, so a
        // concurrent thread's spin (core 1's 400 cycles here) landed in
        // whichever acquisition read the counter next; the per-acquisition
        // return value pins the correct attribution.
        let l = SimLock::new("test");
        let mut c0 = ctx_at(0, 0);
        l.lock(&mut c0);
        c0.charge(Phase::Other, Cycles(500));
        l.unlock(&mut c0);

        // A global-counter snapshot taken before core 1's spin (as the old
        // trace_contention callers did at operation entry)...
        let spin_before = l.stats().total_spin;

        let mut c1 = ctx_at(1, 100);
        assert_eq!(l.lock(&mut c1), Cycles(400), "core 1 owns this spin");
        l.unlock(&mut c1);

        // ...now makes an uncontended acquisition by core 2 look like it
        // spun 400 cycles. The return value says zero, correctly.
        let mut c2 = ctx_at(2, 600);
        let spin2 = l.lock(&mut c2);
        l.unlock(&mut c2);
        let global_diff = l.stats().total_spin - spin_before;
        assert_eq!(global_diff, Cycles(400), "global counter mixes cores");
        assert_eq!(spin2, Cycles::ZERO, "core 2 never spun");
    }

    #[test]
    fn with_spin_reports_the_acquisitions_own_spin() {
        let l = SimLock::new("test");
        let mut c0 = ctx_at(0, 0);
        l.lock(&mut c0);
        c0.charge(Phase::Other, Cycles(300));
        l.unlock(&mut c0);

        let mut c1 = ctx_at(1, 0);
        let (v, spin) = l.with_spin(&mut c1, |_| 7);
        assert_eq!((v, spin), (7, Cycles(300)));

        let mut c2 = ctx_at(2, 1000);
        let (_, spin) = l.with_spin(&mut c2, |_| ());
        assert_eq!(spin, Cycles::ZERO);
    }

    #[test]
    fn reset_stats_clears() {
        let l = SimLock::new("test");
        let mut c = ctx_at(0, 0);
        l.with(&mut c, |_| {});
        l.reset_stats();
        assert_eq!(l.stats(), LockStats::default());
    }
}
