//! Calibrated per-operation cost model.
//!
//! Constants are calibrated against the paper's measurements (its Figure 5
//! breakdown and §2.2.1/§6 text) on the 2.4 GHz Haswell testbed. Every
//! constant is public and overridable so ablation benches can explore other
//! design points.

use crate::Cycles;

/// Which `memcpy` implementation the kernel uses (§5.4 "Smart memcpy").
///
/// The paper found the plain `REP MOVSB` copy (ERMS) to be the best overall
/// on its machines; SIMD and non-temporal variants are modeled for the
/// ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemcpyFlavor {
    /// Enhanced `REP MOVSB/STOSB` (the kernel default on the testbed).
    #[default]
    Erms,
    /// AVX2 SIMD loop: marginally faster in-cache, slower startup.
    Simd,
    /// Non-temporal (streaming) stores: bypasses the cache — no pollution,
    /// but lower bandwidth for buffers that fit in cache and the destination
    /// is not cache-hot for the consumer.
    NonTemporal,
}

/// The calibrated cost model.
///
/// All costs are in [`Cycles`] of the modeled clock. The defaults
/// ([`CostModel::haswell_2_4ghz`]) reproduce the paper's single-core Figure 5
/// breakdown within a few percent; see `EXPERIMENTS.md`.
/// # Examples
///
/// ```
/// use simcore::CostModel;
///
/// let cost = CostModel::haswell_2_4ghz();
/// // The paper's headline economics: copying an MTU packet is ~5x
/// // cheaper than waiting for one IOTLB invalidation.
/// let copy = cost.memcpy(1500, false);
/// let inval = cost.inval_wait(1);
/// assert!(inval > copy * 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Modeled CPU clock in GHz (2.4 for the testbed).
    pub clock_ghz: f64,

    // ---- IOMMU hardware ----
    /// Busy-wait until a posted IOTLB invalidation completes, single
    /// requester (≈2000 cycles per the paper's §2.2.1 / rIOMMU \[37\];
    /// Figure 5 shows ≈0.61 µs including queue interaction).
    pub iotlb_inval_wait: Cycles,
    /// Additional invalidation completion latency per *other* core actively
    /// issuing DMA operations. Models the slower IOMMU processing observed
    /// at 16 cores (Figure 8: invalidation grows from 0.61 µs to ≈2.7 µs):
    /// concurrent page-table updates and IOTLB churn slow the hardware walk.
    pub iotlb_inval_wait_per_active_core: Cycles,
    /// Posting one invalidation descriptor into the invalidation queue
    /// (register write + descriptor store), charged while holding the
    /// invalidation-queue lock.
    pub inval_queue_post: Cycles,
    /// IOMMU page-table map cost (entry install, one page).
    pub pagetable_map_page: Cycles,
    /// IOMMU page-table unmap cost (entry clear, one page).
    pub pagetable_unmap_page: Cycles,
    /// IOTLB lookup cost on the *device* side; charged to no CPU, only used
    /// by device-latency accounting.
    pub iotlb_lookup: Cycles,
    /// Page-walk cost on IOTLB miss (device side).
    pub iotlb_miss_walk: Cycles,

    // ---- memcpy ----
    /// Fixed startup overhead of a kernel memcpy.
    pub memcpy_startup: Cycles,
    /// Per-byte cost while the working set fits in L1/L2 (ERMS fast path).
    /// Calibrated from Figure 5a: 1500 B ≈ 0.11 µs ⇒ ≈0.136 cyc/B.
    pub memcpy_cyc_per_byte_cached: f64,
    /// Per-byte cost once the copy streams beyond the cache.
    /// Calibrated from Figure 5b: 64 KB ≈ 4.65 µs ⇒ ≈0.169 cyc/B.
    pub memcpy_cyc_per_byte_streaming: f64,
    /// Copy size at which the per-byte rate transitions to streaming.
    pub memcpy_stream_threshold: usize,
    /// Cache-pollution side cost: large copies evict the core's working set
    /// and the victim misses are paid later ("other" grows by ≈2 µs for
    /// 64 KB TX copies, Figure 5b). Charged per byte beyond
    /// [`CostModel::pollution_free_bytes`].
    pub pollution_cyc_per_byte: f64,
    /// Copies up to this size do not produce measurable pollution.
    pub pollution_free_bytes: usize,
    /// Multiplier applied to memcpy when source and destination live on
    /// different NUMA domains (remote DRAM access). The shadow pool's
    /// sticky, NUMA-local buffers exist to avoid this (§5.3).
    pub cross_numa_memcpy_factor: f64,
    /// Selected memcpy implementation.
    pub memcpy_flavor: MemcpyFlavor,

    // ---- shadow pool ----
    /// Shadow-buffer pool bookkeeping per map or unmap (Figure 5a: 0.02 µs
    /// for the whole map+unmap pair ⇒ ≈24 cycles each).
    pub shadow_pool_op: Cycles,
    /// Slow path: allocating and permanently mapping a fresh shadow buffer
    /// (page allocation, metadata install, IOMMU map). Amortized away in
    /// steady state.
    pub shadow_pool_grow: Cycles,

    // ---- IOVA allocation (stock Linux, EiovaR/FAST'15 bottleneck) ----
    /// Red-black-tree IOVA allocation under the global lock (stock Linux
    /// `alloc_iova`). The long-walk behavior identified by EiovaR makes this
    /// expensive.
    pub iova_tree_alloc: Cycles,
    /// Red-black-tree IOVA free under the global lock.
    pub iova_tree_free: Cycles,
    /// Per-core magazine IOVA allocation (\[42\]'s scalable allocator).
    pub iova_magazine_alloc: Cycles,
    /// Per-core magazine IOVA free.
    pub iova_magazine_free: Cycles,

    // ---- deferred invalidation bookkeeping ----
    /// Appending an entry to the deferred-flush list (inside its lock).
    pub defer_list_append: Cycles,
    /// Global IOTLB flush (used when the deferred batch is drained).
    pub global_iotlb_flush: Cycles,

    // ---- locks ----
    /// Uncontended spinlock acquire+release pair.
    pub spinlock_uncontended: Cycles,

    // ---- networking stack (calibrated so no-iommu matches Figure 3/4) ----
    /// Fixed per-packet receive cost outside the DMA layer: descriptor
    /// handling, skb bookkeeping, IP/TCP parsing ("rx parsing").
    pub rx_parse: Cycles,
    /// Fixed per-packet cost attributed to "other" in the paper's breakdown
    /// (NAPI, scheduling, socket wakeups, skb alloc/free).
    pub rx_other: Cycles,
    /// Fixed per-TSO-buffer transmit preparation cost (skb setup, TCP
    /// header build, descriptor writes) — "other" on the TX side.
    pub tx_other_per_buffer: Cycles,
    /// Per-MTU-segment completion/interrupt handling cost on TX.
    pub tx_per_segment: Cycles,
    /// Sender-side syscall + socket overhead per message — the limiting
    /// factor for small messages (§6 footnote 6).
    pub syscall_per_message: Cycles,
    /// `copy_to_user`/`copy_from_user` uses the memcpy model; this extra
    /// startup covers the access_ok/fixup overhead.
    pub copy_user_startup: Cycles,

    // ---- kmalloc ----
    /// Slab allocation fast path.
    pub kmalloc_alloc: Cycles,
    /// Slab free fast path.
    pub kmalloc_free: Cycles,

    // ---- memcached application ----
    /// Application-level cost to parse a request and execute a GET against
    /// the hash table (excluding networking).
    pub memcached_get: Cycles,
    /// Application-level cost of a SET (allocation + insert).
    pub memcached_set: Cycles,
}

impl CostModel {
    /// The paper's testbed: dual 2.4 GHz Xeon E5-2630 v3 (Haswell).
    ///
    /// Calibration sources, all at 2.4 GHz:
    /// - IOTLB invalidation ≈ 0.61 µs single-core (Fig. 5), growing to
    ///   ≈2.7 µs with 16 active cores (Fig. 8).
    /// - IOMMU page-table mgmt ≈ 0.17 µs per map+unmap pair (Fig. 5).
    /// - memcpy: 1500 B ≈ 0.11 µs; 64 KB ≈ 4.65 µs (Fig. 5) with ≈2 µs of
    ///   extra cache-pollution cost attributed to "other" (Fig. 5b).
    /// - shadow pool management ≈ 0.02 µs per packet (Fig. 5a).
    pub fn haswell_2_4ghz() -> Self {
        CostModel {
            clock_ghz: 2.4,

            iotlb_inval_wait: Cycles(1464),                // 0.61 us
            iotlb_inval_wait_per_active_core: Cycles(150), // -> ~1.5us at 16 cores
            inval_queue_post: Cycles(120),
            pagetable_map_page: Cycles(200),
            pagetable_unmap_page: Cycles(208), // map+unmap = 0.17us = 408cyc
            iotlb_lookup: Cycles(30),
            iotlb_miss_walk: Cycles(250),

            memcpy_startup: Cycles(60),
            memcpy_cyc_per_byte_cached: 0.136,
            memcpy_cyc_per_byte_streaming: 0.169,
            memcpy_stream_threshold: 16 * 1024,
            pollution_cyc_per_byte: 0.082,
            pollution_free_bytes: 8 * 1024,
            cross_numa_memcpy_factor: 1.55,
            memcpy_flavor: MemcpyFlavor::Erms,

            shadow_pool_op: Cycles(24),
            shadow_pool_grow: Cycles(2600),

            iova_tree_alloc: Cycles(1100),
            iova_tree_free: Cycles(500),
            iova_magazine_alloc: Cycles(90),
            iova_magazine_free: Cycles(80),

            defer_list_append: Cycles(90),
            global_iotlb_flush: Cycles(1900),

            spinlock_uncontended: Cycles(40),

            rx_parse: Cycles(480),            // 0.20 us
            rx_other: Cycles(640),            // 0.27 us
            tx_other_per_buffer: Cycles(600), // 0.25 us fixed per buffer
            tx_per_segment: Cycles(140),
            syscall_per_message: Cycles(600), // ~0.25 us per sendmsg
            copy_user_startup: Cycles(50),

            kmalloc_alloc: Cycles(70),
            kmalloc_free: Cycles(55),

            memcached_get: Cycles(12_000), // ~5 us application work per GET
            memcached_set: Cycles(16_000),
        }
    }

    /// A zero-cost model: every operation is free.
    ///
    /// Used by functional/unit tests that only care about semantics, so the
    /// virtual clock never advances and assertions stay simple.
    pub fn zero() -> Self {
        CostModel {
            clock_ghz: 2.4,
            iotlb_inval_wait: Cycles::ZERO,
            iotlb_inval_wait_per_active_core: Cycles::ZERO,
            inval_queue_post: Cycles::ZERO,
            pagetable_map_page: Cycles::ZERO,
            pagetable_unmap_page: Cycles::ZERO,
            iotlb_lookup: Cycles::ZERO,
            iotlb_miss_walk: Cycles::ZERO,
            memcpy_startup: Cycles::ZERO,
            memcpy_cyc_per_byte_cached: 0.0,
            memcpy_cyc_per_byte_streaming: 0.0,
            memcpy_stream_threshold: usize::MAX,
            pollution_cyc_per_byte: 0.0,
            pollution_free_bytes: usize::MAX,
            cross_numa_memcpy_factor: 1.0,
            memcpy_flavor: MemcpyFlavor::Erms,
            shadow_pool_op: Cycles::ZERO,
            shadow_pool_grow: Cycles::ZERO,
            iova_tree_alloc: Cycles::ZERO,
            iova_tree_free: Cycles::ZERO,
            iova_magazine_alloc: Cycles::ZERO,
            iova_magazine_free: Cycles::ZERO,
            defer_list_append: Cycles::ZERO,
            global_iotlb_flush: Cycles::ZERO,
            spinlock_uncontended: Cycles::ZERO,
            rx_parse: Cycles::ZERO,
            rx_other: Cycles::ZERO,
            tx_other_per_buffer: Cycles::ZERO,
            tx_per_segment: Cycles::ZERO,
            syscall_per_message: Cycles::ZERO,
            copy_user_startup: Cycles::ZERO,
            kmalloc_alloc: Cycles::ZERO,
            kmalloc_free: Cycles::ZERO,
            memcached_get: Cycles::ZERO,
            memcached_set: Cycles::ZERO,
        }
    }

    /// Cost of copying `bytes` bytes with the selected memcpy flavor,
    /// excluding cache-pollution side effects (see
    /// [`CostModel::cache_pollution`]).
    ///
    /// `cross_numa` applies the remote-DRAM factor when source and
    /// destination are on different NUMA domains.
    pub fn memcpy(&self, bytes: usize, cross_numa: bool) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let (startup_mul, cached_mul, stream_mul) = match self.memcpy_flavor {
            MemcpyFlavor::Erms => (1.0, 1.0, 1.0),
            // SIMD: slightly better in-cache rate, 3x startup (feature
            // detection, alignment prologue), same streaming rate.
            MemcpyFlavor::Simd => (3.0, 0.92, 1.0),
            // Non-temporal: higher in-cache cost (no write-allocate reuse),
            // slightly better streaming, and (modeled in cache_pollution)
            // no pollution.
            MemcpyFlavor::NonTemporal => (2.0, 1.35, 0.95),
        };
        let per_byte = if bytes <= self.memcpy_stream_threshold {
            self.memcpy_cyc_per_byte_cached * cached_mul
        } else {
            self.memcpy_cyc_per_byte_streaming * stream_mul
        };
        let mut cyc = self.memcpy_startup.scale(startup_mul)
            + Cycles((bytes as f64 * per_byte).round() as u64);
        if cross_numa {
            cyc = cyc.scale(self.cross_numa_memcpy_factor);
        }
        cyc
    }

    /// Deferred cost of the cache pollution caused by a copy of `bytes`
    /// bytes: the evicted working set is re-fetched later by the core.
    ///
    /// Returns zero for the non-temporal flavor (streaming stores bypass
    /// the cache) and for small copies.
    pub fn cache_pollution(&self, bytes: usize) -> Cycles {
        if self.memcpy_flavor == MemcpyFlavor::NonTemporal {
            return Cycles::ZERO;
        }
        let over = bytes.saturating_sub(self.pollution_free_bytes);
        Cycles((over as f64 * self.pollution_cyc_per_byte).round() as u64)
    }

    /// Completion latency of one IOTLB invalidation when `active_cores`
    /// cores (including the issuer) are concurrently driving DMA.
    pub fn inval_wait(&self, active_cores: usize) -> Cycles {
        let others = active_cores.saturating_sub(1) as u64;
        self.iotlb_inval_wait + self.iotlb_inval_wait_per_active_core * others
    }

    /// Cost of `copy_to_user`/`copy_from_user` of `bytes` bytes.
    pub fn copy_user(&self, bytes: usize) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        self.copy_user_startup + self.memcpy(bytes, false)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::haswell_2_4ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_matches_paper_calibration() {
        let m = CostModel::haswell_2_4ghz();
        // 1500 B ethernet packet: paper says 0.11 us (Fig 5a).
        let us = m.memcpy(1500, false).to_micros(m.clock_ghz);
        assert!((us - 0.11).abs() < 0.02, "1500B copy = {us} us");
        // 64 KB TSO buffer: paper says 4.65 us (Fig 5b).
        let us = m.memcpy(64 * 1024, false).to_micros(m.clock_ghz);
        assert!((us - 4.65).abs() < 0.6, "64KB copy = {us} us");
    }

    #[test]
    fn memcpy_1500b_is_about_5x_cheaper_than_invalidation() {
        // The paper's headline observation: copying a 1500 B packet is
        // ~5.5x faster than an IOTLB invalidation.
        let m = CostModel::haswell_2_4ghz();
        let copy = m.memcpy(1500, false).get() as f64;
        let inval = m.inval_wait(1).get() as f64;
        let ratio = inval / copy;
        assert!(ratio > 4.0 && ratio < 7.0, "ratio = {ratio}");
    }

    #[test]
    fn inval_wait_grows_with_active_cores() {
        let m = CostModel::haswell_2_4ghz();
        let one = m.inval_wait(1);
        let sixteen = m.inval_wait(16);
        assert_eq!(one, m.iotlb_inval_wait);
        assert!(sixteen > one * 2, "16-core inval {sixteen} vs {one}");
        // The paper observed invalidation latency growing from 0.61 us to
        // ~2.7 us at 16 cores; we calibrate the hardware component to
        // ~1.5 us so that the *end-to-end* collapse (Figure 6: ~5x) matches
        // — the rest of the paper's 2.7 us shows up as queueing on the
        // invalidation-queue lock, which the simulation models separately.
        let us = sixteen.to_micros(m.clock_ghz);
        assert!((1.0..=2.0).contains(&us), "16-core inval = {us} us");
    }

    #[test]
    fn pollution_only_for_large_copies() {
        let m = CostModel::haswell_2_4ghz();
        assert_eq!(m.cache_pollution(1500), Cycles::ZERO);
        let p = m.cache_pollution(64 * 1024).to_micros(m.clock_ghz);
        assert!(p > 1.0 && p < 3.0, "pollution = {p} us");
    }

    #[test]
    fn nontemporal_has_no_pollution() {
        let mut m = CostModel::haswell_2_4ghz();
        m.memcpy_flavor = MemcpyFlavor::NonTemporal;
        assert_eq!(m.cache_pollution(64 * 1024), Cycles::ZERO);
        // ...but worse in-cache rate than ERMS.
        let erms = CostModel::haswell_2_4ghz().memcpy(1500, false);
        assert!(m.memcpy(1500, false) > erms);
    }

    #[test]
    fn cross_numa_is_more_expensive() {
        let m = CostModel::haswell_2_4ghz();
        assert!(m.memcpy(4096, true) > m.memcpy(4096, false));
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.memcpy(1 << 20, true), Cycles::ZERO);
        assert_eq!(m.inval_wait(16), Cycles::ZERO);
        assert_eq!(m.copy_user(4096), Cycles::ZERO);
        assert_eq!(m.cache_pollution(1 << 20), Cycles::ZERO);
    }

    #[test]
    fn empty_copies_are_free() {
        let m = CostModel::haswell_2_4ghz();
        assert_eq!(m.memcpy(0, false), Cycles::ZERO);
        assert_eq!(m.copy_user(0), Cycles::ZERO);
    }
}
