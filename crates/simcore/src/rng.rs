//! Deterministic random number generation for workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG used by workload generators (memslap keys, payload bytes)
/// so that every experiment is reproducible bit-for-bit.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }

    /// A pseudo-random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
        assert_eq!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let va: Vec<u64> = (0..32).map(|_| a.below(1 << 30)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.below(1 << 30)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed(7);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }
}
