//! Deterministic random number generation for workloads.
//!
//! Implemented in-tree (xoshiro256++ seeded via SplitMix64) so the
//! workspace builds with no external dependencies. Streams are stable
//! for a given seed on every platform, which is all the workloads rely
//! on — experiments are reproducible bit-for-bit.

/// A seeded RNG used by workload generators (memslap keys, payload bytes)
/// so that every experiment is reproducible bit-for-bit.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand the 64-bit seed into the 256-bit
/// xoshiro state (the initialization recommended by the xoshiro authors).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Debiased multiply-shift (Lemire): rejection keeps the
        // distribution exactly uniform while almost never looping.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        // Compare a uniform [0,1) double (53 random bits) against p.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// A pseudo-random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
        assert_eq!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let va: Vec<u64> = (0..32).map(|_| a.below(1 << 30)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.below(1 << 30)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed(7);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::seed(1234);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i} count {b}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut r = SimRng::seed(3);
        let v = r.bytes(13);
        assert_eq!(v.len(), 13);
        assert!(v.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }
}
