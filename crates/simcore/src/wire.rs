//! Serialized link (wire) model.

use crate::Cycles;
use std::cell::Cell;

/// A serialized transmission medium with a fixed bit rate, e.g. the paper's
/// 40 Gb/s ethernet link.
///
/// The wire transmits one frame at a time in virtual time: a frame offered
/// at `now` starts no earlier than the end of the previous frame and
/// occupies the wire for `bytes / rate`. This is what caps aggregate
/// throughput at line rate in the 16-core experiments regardless of how
/// fast the cores run.
/// # Examples
///
/// ```
/// use simcore::{Cycles, Wire};
///
/// let wire = Wire::forty_gbe();
/// // Two back-to-back MTU frames serialize: 720 cycles each at 2.4 GHz.
/// assert_eq!(wire.transmit(Cycles(0), 1500), Cycles(720));
/// assert_eq!(wire.transmit(Cycles(0), 1500), Cycles(1440));
/// ```
#[derive(Debug)]
pub struct Wire {
    cyc_per_byte: f64,
    /// One-way propagation + PHY latency added to each frame's delivery.
    latency: Cycles,
    next_free: Cell<u64>,
    bytes_sent: Cell<u64>,
    frames_sent: Cell<u64>,
}

impl Wire {
    /// Creates a wire with the given rate in Gb/s at the given CPU clock
    /// (used to express wire time in CPU cycles).
    pub fn new(rate_gbps: f64, clock_ghz: f64) -> Self {
        assert!(rate_gbps > 0.0, "wire rate must be positive");
        // cycles per byte = (8 bits / rate[bits/sec]) * clock[cycles/sec]
        let cyc_per_byte = 8.0 / (rate_gbps * 1e9) * (clock_ghz * 1e9);
        Wire {
            cyc_per_byte,
            latency: Cycles::ZERO,
            next_free: Cell::new(0),
            bytes_sent: Cell::new(0),
            frames_sent: Cell::new(0),
        }
    }

    /// The paper's 40 Gb/s link at the 2.4 GHz testbed clock.
    pub fn forty_gbe() -> Self {
        Wire::new(40.0, 2.4)
    }

    /// Sets the one-way latency added to every frame's delivery time.
    pub fn with_latency(mut self, latency: Cycles) -> Self {
        self.latency = latency;
        self
    }

    /// Serialization time of a frame of `bytes` bytes.
    pub fn frame_time(&self, bytes: usize) -> Cycles {
        Cycles((bytes as f64 * self.cyc_per_byte).ceil() as u64)
    }

    /// Transmits a frame offered at `now`; returns the instant the frame is
    /// fully delivered at the far end.
    ///
    /// Frames queue FIFO: transmission starts at `max(now, wire free)`.
    pub fn transmit(&self, now: Cycles, bytes: usize) -> Cycles {
        let start = now.max(Cycles(self.next_free.get()));
        let end = start + self.frame_time(bytes);
        self.next_free.set(end.get());
        self.bytes_sent.set(self.bytes_sent.get() + bytes as u64);
        self.frames_sent.set(self.frames_sent.get() + 1);
        end + self.latency
    }

    /// The instant the wire next becomes free.
    pub fn next_free(&self) -> Cycles {
        Cycles(self.next_free.get())
    }

    /// Total payload bytes transmitted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Total frames transmitted.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_gbe_mtu_frame_time() {
        // 40 Gb/s, 2.4 GHz: 0.48 cycles per byte; 1500 B = 720 cycles = 0.3us.
        let w = Wire::forty_gbe();
        assert_eq!(w.frame_time(1500), Cycles(720));
    }

    #[test]
    fn frames_serialize_fifo() {
        let w = Wire::forty_gbe();
        let d1 = w.transmit(Cycles(0), 1500);
        assert_eq!(d1, Cycles(720));
        // Offered while the wire is busy: queues behind frame 1.
        let d2 = w.transmit(Cycles(100), 1500);
        assert_eq!(d2, Cycles(1440));
        // Offered after the wire drains: starts immediately.
        let d3 = w.transmit(Cycles(5000), 1500);
        assert_eq!(d3, Cycles(5720));
        assert_eq!(w.frames_sent(), 3);
        assert_eq!(w.bytes_sent(), 4500);
    }

    #[test]
    fn latency_delays_delivery_not_wire_occupancy() {
        let w = Wire::forty_gbe().with_latency(Cycles(1000));
        let d1 = w.transmit(Cycles(0), 1500);
        assert_eq!(d1, Cycles(1720));
        // The wire itself freed at 720, so the next frame ends at 1440+1000.
        let d2 = w.transmit(Cycles(0), 1500);
        assert_eq!(d2, Cycles(2440));
    }

    #[test]
    fn throughput_is_capped_at_line_rate() {
        let w = Wire::forty_gbe();
        let mut t = Cycles::ZERO;
        for _ in 0..10_000 {
            t = w.transmit(Cycles::ZERO, 1500);
        }
        let gbps = crate::Gbps::from_bytes(w.bytes_sent(), t, 2.4);
        assert!((gbps.get() - 40.0).abs() < 0.1, "rate = {gbps}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = Wire::new(0.0, 2.4);
    }
}
