//! Finding types and the machine-readable report.

use std::collections::BTreeMap;

use obs::json::Json;

use crate::rules::lock_order::LockOrderReport;
use crate::rules::unsafe_audit::UnsafeReport;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Path (workspace-relative where possible) of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Stable rule name: `panic`, `phys-addr-arith`, `ambient-io`,
    /// `external-dep`, `relaxed-atomic`, `lock-order`, `use-after-unmap`,
    /// `leak-on-exit`, `double-unmap`, `sync-before-cpu-read`,
    /// `unsafe-no-safety`.
    pub rule: &'static str,
    /// What was found.
    pub detail: String,
}

impl std::fmt::Display for LintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// Per-rule finding counts, every known rule present (zero when clean) so
/// the CI log always prints the full table.
pub fn rule_summary(violations: &[LintViolation]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> =
        crate::ALL_RULES.iter().map(|&r| (r, 0)).collect();
    for v in violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts
}

/// Builds the machine-readable lint report (`lint --json <path>`): the
/// findings, the per-rule summary, and the exported lock-order and unsafe
/// inventories.
pub fn json_report(
    violations: &[LintViolation],
    locks: &LockOrderReport,
    unsafes: &UnsafeReport,
) -> Json {
    let viol = |v: &LintViolation| {
        Json::Obj(vec![
            ("file".into(), Json::Str(v.file.clone())),
            ("line".into(), Json::UInt(v.line as u64)),
            ("rule".into(), Json::Str(v.rule.to_string())),
            ("detail".into(), Json::Str(v.detail.clone())),
        ])
    };
    let summary = Json::Obj(
        rule_summary(violations)
            .into_iter()
            .map(|(r, n)| (r.to_string(), Json::UInt(n as u64)))
            .collect(),
    );
    let lock_sites = Json::Arr(
        locks
            .sites
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(s.file.clone())),
                    ("line".into(), Json::UInt(s.line as u64)),
                    ("lock".into(), Json::Str(s.lock.clone())),
                    ("acquisition".into(), Json::Bool(s.acquisition)),
                ])
            })
            .collect(),
    );
    let lock_edges = Json::Arr(
        locks
            .edges
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("outer".into(), Json::Str(e.outer.clone())),
                    ("inner".into(), Json::Str(e.inner.clone())),
                    ("file".into(), Json::Str(e.file.clone())),
                    ("line".into(), Json::UInt(e.line as u64)),
                ])
            })
            .collect(),
    );
    let cycles = Json::Arr(
        locks
            .cycles
            .iter()
            .map(|c| Json::Arr(c.iter().map(|n| Json::Str(n.clone())).collect()))
            .collect(),
    );
    let unsafe_sites = Json::Arr(
        unsafes
            .sites
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(s.file.clone())),
                    ("line".into(), Json::UInt(s.line as u64)),
                    (
                        "has_safety_comment".into(),
                        Json::Bool(s.has_safety_comment),
                    ),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("tool".into(), Json::Str("lint".to_string())),
        (
            "violations".into(),
            Json::Arr(violations.iter().map(viol).collect()),
        ),
        ("summary".into(), summary),
        (
            "lock_order".into(),
            Json::Obj(vec![
                ("sites".into(), lock_sites),
                ("edges".into(), lock_edges),
                ("cycles".into(), cycles),
            ]),
        ),
        (
            "unsafe_audit".into(),
            Json::Obj(vec![
                ("sites".into(), unsafe_sites),
                (
                    "forbid_crates".into(),
                    Json::Arr(
                        unsafes
                            .forbid_crates
                            .iter()
                            .map(|c| Json::Str(c.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_lists_every_rule_and_counts_findings() {
        let v = vec![
            LintViolation {
                file: "a.rs".into(),
                line: 1,
                rule: "panic",
                detail: "x".into(),
            },
            LintViolation {
                file: "a.rs".into(),
                line: 2,
                rule: "panic",
                detail: "y".into(),
            },
        ];
        let s = rule_summary(&v);
        assert_eq!(s["panic"], 2);
        assert_eq!(s["use-after-unmap"], 0);
        assert!(s.contains_key("lock-order"));
    }

    #[test]
    fn json_report_round_trips() {
        let v = vec![LintViolation {
            file: "a.rs".into(),
            line: 3,
            rule: "leak-on-exit",
            detail: "m leaks".into(),
        }];
        let j = json_report(&v, &LockOrderReport::default(), &UnsafeReport::default());
        let parsed = Json::parse(&j.encode()).expect("valid json");
        let first = parsed
            .get("violations")
            .and_then(|a| match a {
                Json::Arr(items) => items.first(),
                _ => None,
            })
            .expect("one violation");
        assert_eq!(
            first.get("rule").and_then(Json::as_str),
            Some("leak-on-exit")
        );
        assert_eq!(
            parsed
                .get("summary")
                .and_then(|s| s.get("leak-on-exit"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
