//! Finding types and the machine-readable report.

use std::collections::BTreeMap;

use obs::json::Json;

use crate::rules::lock_order::LockOrderReport;
use crate::rules::protocol::ProtocolAnalysis;
use crate::rules::unsafe_audit::UnsafeReport;
use crate::summary::RetEffect;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Path (workspace-relative where possible) of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Stable rule name: `panic`, `phys-addr-arith`, `ambient-io`,
    /// `external-dep`, `relaxed-atomic`, `lock-order`, `use-after-unmap`,
    /// `leak-on-exit`, `double-unmap`, `sync-before-cpu-read`,
    /// `unsafe-no-safety`.
    pub rule: &'static str,
    /// What was found.
    pub detail: String,
}

impl std::fmt::Display for LintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// Per-rule finding counts, every known rule present (zero when clean) so
/// the CI log always prints the full table.
pub fn rule_summary(violations: &[LintViolation]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> =
        crate::ALL_RULES.iter().map(|&r| (r, 0)).collect();
    for v in violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts
}

/// The `call_graph`, `summaries`, `escapes`, and `taint_analysis`
/// sections of the JSON report, from a full scan's interprocedural
/// product. Summaries are exported only when DMA-relevant — a parameter
/// with an unmap or sync effect, a fresh-mapped return, or a device-data
/// read — so the report stays proportional to the DMA surface, not the
/// workspace size (plain escape/return facts exist for nearly every
/// function and are only interesting to the checker itself).
fn protocol_sections(analysis: &ProtocolAnalysis) -> Vec<(String, Json)> {
    let g = &analysis.graph;
    let closures = g.nodes.iter().filter(|n| n.is_closure).count();
    let edges: usize = g.callees.iter().map(|c| c.len()).sum();
    let call_graph = Json::Obj(vec![
        (
            "functions".into(),
            Json::UInt((g.nodes.len() - closures) as u64),
        ),
        ("closures".into(), Json::UInt(closures as u64)),
        ("edges".into(), Json::UInt(edges as u64)),
        (
            "unknown_calls".into(),
            Json::UInt(g.unknown_calls.iter().sum::<usize>() as u64),
        ),
        ("sccs".into(), Json::UInt(g.sccs().len() as u64)),
    ]);
    let param_effects = |s: &crate::summary::FnSummary| {
        Json::Arr(
            s.params
                .iter()
                .map(|p| {
                    let mut effects = Vec::new();
                    for (on, name) in [
                        (p.must_unmap, "must-unmap"),
                        (p.may_unmap && !p.must_unmap, "may-unmap"),
                        (p.syncs_cpu, "syncs-cpu"),
                        (p.escapes, "escapes"),
                        (p.returned, "returned"),
                        (p.uses, "uses"),
                    ] {
                        if on {
                            effects.push(Json::Str(name.to_string()));
                        }
                    }
                    Json::Arr(effects)
                })
                .collect(),
        )
    };
    let ret_str = |s: &crate::summary::FnSummary| match &s.ret {
        RetEffect::NotHandle => "not-handle".to_string(),
        RetEffect::FreshMapped { dir } => format!("fresh-mapped:{}", dir.name()),
        RetEffect::Unknown => "unknown".to_string(),
    };
    let interesting = |s: &crate::summary::FnSummary| {
        s.reads_device_data
            || matches!(s.ret, RetEffect::FreshMapped { .. })
            || s.params
                .iter()
                .any(|p| p.may_unmap || p.must_unmap || p.syncs_cpu)
    };
    let summaries = Json::Arr(
        g.nodes
            .iter()
            .zip(&analysis.summaries)
            .filter(|(_, s)| interesting(s))
            .map(|(n, s)| {
                Json::Obj(vec![
                    ("function".into(), Json::Str(n.name.clone())),
                    ("file".into(), Json::Str(n.file.clone())),
                    ("line".into(), Json::UInt(n.line as u64)),
                    ("params".into(), param_effects(s)),
                    ("ret".into(), Json::Str(ret_str(s))),
                    ("reads_device_data".into(), Json::Bool(s.reads_device_data)),
                    ("converged".into(), Json::Bool(s.converged)),
                ])
            })
            .collect(),
    );
    let escapes = Json::Arr(
        analysis
            .escapes
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(e.file.clone())),
                    ("function".into(), Json::Str(e.note.function.clone())),
                    ("line".into(), Json::UInt(e.note.line as u64)),
                    ("var".into(), Json::Str(e.note.var.clone())),
                    ("kind".into(), Json::Str(e.note.kind.name().to_string())),
                    ("detail".into(), Json::Str(e.note.detail.clone())),
                ])
            })
            .collect(),
    );
    let taint = Json::Obj(vec![
        ("sources".into(), Json::UInt(analysis.taint.sources as u64)),
        (
            "tainted_vars".into(),
            Json::UInt(analysis.taint.tainted_vars as u64),
        ),
        (
            "sanitized_vars".into(),
            Json::UInt(analysis.taint.sanitized_vars as u64),
        ),
    ]);
    vec![
        ("call_graph".into(), call_graph),
        ("summaries".into(), summaries),
        ("escapes".into(), escapes),
        ("taint_analysis".into(), taint),
    ]
}

/// Builds the machine-readable lint report (`lint --json <path>`): the
/// findings, the per-rule summary, the exported lock-order and unsafe
/// inventories, and (on a full scan) the interprocedural call-graph,
/// summary, escape, and taint sections.
pub fn json_report(
    violations: &[LintViolation],
    locks: &LockOrderReport,
    unsafes: &UnsafeReport,
    protocol: Option<&ProtocolAnalysis>,
) -> Json {
    let viol = |v: &LintViolation| {
        Json::Obj(vec![
            ("file".into(), Json::Str(v.file.clone())),
            ("line".into(), Json::UInt(v.line as u64)),
            ("rule".into(), Json::Str(v.rule.to_string())),
            ("detail".into(), Json::Str(v.detail.clone())),
        ])
    };
    let summary = Json::Obj(
        rule_summary(violations)
            .into_iter()
            .map(|(r, n)| (r.to_string(), Json::UInt(n as u64)))
            .collect(),
    );
    let lock_sites = Json::Arr(
        locks
            .sites
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(s.file.clone())),
                    ("line".into(), Json::UInt(s.line as u64)),
                    ("lock".into(), Json::Str(s.lock.clone())),
                    ("acquisition".into(), Json::Bool(s.acquisition)),
                ])
            })
            .collect(),
    );
    let lock_edges = Json::Arr(
        locks
            .edges
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("outer".into(), Json::Str(e.outer.clone())),
                    ("inner".into(), Json::Str(e.inner.clone())),
                    ("file".into(), Json::Str(e.file.clone())),
                    ("line".into(), Json::UInt(e.line as u64)),
                ])
            })
            .collect(),
    );
    let cycles = Json::Arr(
        locks
            .cycles
            .iter()
            .map(|c| Json::Arr(c.iter().map(|n| Json::Str(n.clone())).collect()))
            .collect(),
    );
    let unsafe_sites = Json::Arr(
        unsafes
            .sites
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(s.file.clone())),
                    ("line".into(), Json::UInt(s.line as u64)),
                    (
                        "has_safety_comment".into(),
                        Json::Bool(s.has_safety_comment),
                    ),
                ])
            })
            .collect(),
    );
    let mut fields = vec![
        ("tool".into(), Json::Str("lint".to_string())),
        (
            "violations".into(),
            Json::Arr(violations.iter().map(viol).collect()),
        ),
        ("summary".into(), summary),
        (
            "lock_order".into(),
            Json::Obj(vec![
                ("sites".into(), lock_sites),
                ("edges".into(), lock_edges),
                ("cycles".into(), cycles),
            ]),
        ),
        (
            "unsafe_audit".into(),
            Json::Obj(vec![
                ("sites".into(), unsafe_sites),
                (
                    "forbid_crates".into(),
                    Json::Arr(
                        unsafes
                            .forbid_crates
                            .iter()
                            .map(|c| Json::Str(c.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ];
    if let Some(analysis) = protocol {
        fields.extend(protocol_sections(analysis));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_lists_every_rule_and_counts_findings() {
        let v = vec![
            LintViolation {
                file: "a.rs".into(),
                line: 1,
                rule: "panic",
                detail: "x".into(),
            },
            LintViolation {
                file: "a.rs".into(),
                line: 2,
                rule: "panic",
                detail: "y".into(),
            },
        ];
        let s = rule_summary(&v);
        assert_eq!(s["panic"], 2);
        assert_eq!(s["use-after-unmap"], 0);
        assert!(s.contains_key("lock-order"));
    }

    #[test]
    fn json_report_round_trips() {
        let v = vec![LintViolation {
            file: "a.rs".into(),
            line: 3,
            rule: "leak-on-exit",
            detail: "m leaks".into(),
        }];
        let j = json_report(
            &v,
            &LockOrderReport::default(),
            &UnsafeReport::default(),
            None,
        );
        let parsed = Json::parse(&j.encode()).expect("valid json");
        let first = parsed
            .get("violations")
            .and_then(|a| match a {
                Json::Arr(items) => items.first(),
                _ => None,
            })
            .expect("one violation");
        assert_eq!(
            first.get("rule").and_then(Json::as_str),
            Some("leak-on-exit")
        );
        assert_eq!(
            parsed
                .get("summary")
                .and_then(|s| s.get("leak-on-exit"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // A fast pass has no interprocedural product, so no such sections.
        assert!(parsed.get("call_graph").is_none());
        assert!(parsed.get("taint_analysis").is_none());
    }

    #[test]
    fn full_report_exports_interprocedural_sections() {
        let src = "fn unmap_it(engine: &E, ctx: &mut C, m: Mapping) {\n\
            engine.unmap(ctx, m).expect(\"u\");\n\
            }\n";
        let p = crate::lexer::prep("crates/x/src/lib.rs", src);
        let graph = crate::callgraph::CallGraph::build(&[(p, "x".to_string())]);
        let summaries = crate::summary::compute(&graph);
        let analysis = ProtocolAnalysis {
            graph,
            summaries,
            escapes: Vec::new(),
            taint: crate::taint::TaintStats {
                sources: 2,
                tainted_vars: 3,
                sanitized_vars: 1,
            },
        };
        let j = json_report(
            &[],
            &LockOrderReport::default(),
            &UnsafeReport::default(),
            Some(&analysis),
        );
        let parsed = Json::parse(&j.encode()).expect("valid json");
        assert_eq!(
            parsed
                .get("call_graph")
                .and_then(|g| g.get("functions"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("taint_analysis")
                .and_then(|t| t.get("sources"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // `unmap_it` must-unmaps its third parameter, so it is exported.
        let summaries = parsed.get("summaries").expect("summaries section");
        let first = match summaries {
            Json::Arr(items) => items.first().expect("one summary"),
            _ => panic!("summaries not an array"),
        };
        assert_eq!(
            first.get("function").and_then(Json::as_str),
            Some("unmap_it")
        );
    }
}
