//! Per-function DMA-effect summaries, computed bottom-up over the call
//! graph's SCCs.
//!
//! A summary answers, for one function, the only questions the caller's
//! typestate lattice needs:
//!
//! - **per parameter** — may/must the callee unmap a handle passed in
//!   this slot? does it `sync_for_cpu` it? does the handle *escape*
//!   (stored, captured, forwarded to an opaque callee) or get returned?
//! - **return slot** — does the function return a freshly mapped handle
//!   (and with which direction), so `let h = make_rx(…)` can be tracked
//!   like a direct `map` call?
//! - does the function read data back out of a device-writable buffer
//!   (the taint pass's interprocedural source bit)?
//!
//! The parameter lattice is six booleans ordered by implication
//! (`must_unmap ⇒ may_unmap`, everything `⇒ uses`); the return lattice is
//! `NotHandle < FreshMapped(dir) < Unknown`. Summaries are computed per
//! SCC with a fixpoint (callees first, so non-recursive code converges in
//! one sweep); an SCC that fails to converge within its round cap falls
//! back to the explicit conservative bottom — every parameter escapes,
//! return unknown, `converged = false` — rather than an unsound guess.
//!
//! `must_unmap` is the one flow-sensitive bit: it runs a tiny dataflow
//! over the function's CFG (per candidate parameter) asking whether the
//! handle is unmapped on *every* path reaching the exit, including `?`
//! error edges — only then may the caller keep tracking the handle as
//! `Unmapped` (enabling use-after-unmap-through-helper findings) instead
//! of dropping it from the lattice.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, INTRINSICS};
use crate::cfg::{Cfg, Stmt};
use crate::typestate::{detect_bind, scan, CallKind, Dir, Ev, READ_METHODS};

/// Effect of a call on the handle passed in one parameter slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParamEffect {
    /// The parameter is mentioned at all.
    pub uses: bool,
    /// Some path unmaps/frees the handle (directly or transitively).
    pub may_unmap: bool,
    /// Every path to the exit unmaps the handle.
    pub must_unmap: bool,
    /// Some path calls `sync_for_cpu` on the handle.
    pub syncs_cpu: bool,
    /// The handle is stored, captured by a closure, or forwarded to an
    /// opaque callee: the caller must stop tracking it.
    pub escapes: bool,
    /// The handle is returned to the caller (in `return`/tail position).
    pub returned: bool,
}

/// What the function's return slot carries, handle-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetEffect {
    /// Provably not a DMA handle (unit, counters, …) — the bottom.
    #[default]
    NotHandle,
    /// Every return path ends in a fresh `map`/`alloc_coherent` (or a
    /// callee that provably does): callers may track the binding.
    FreshMapped { dir: Dir },
    /// Anything else: possibly a handle, not provably fresh.
    Unknown,
}

/// One function's DMA-effect summary, indexed like `CallGraph::nodes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSummary {
    /// Per-parameter effects (receiver included at slot 0).
    pub params: Vec<ParamEffect>,
    /// Return-slot effect.
    pub ret: RetEffect,
    /// Reads CPU-visible data out of a `FromDevice`/`Bidirectional`
    /// mapping: a device-taint source.
    pub reads_device_data: bool,
    /// `false` when the SCC fixpoint hit its round cap and this summary
    /// is the conservative fallback.
    pub converged: bool,
}

impl FnSummary {
    fn bottom(nparams: usize) -> FnSummary {
        FnSummary {
            params: vec![ParamEffect::default(); nparams],
            ret: RetEffect::NotHandle,
            reads_device_data: false,
            converged: true,
        }
    }

    fn conservative(nparams: usize) -> FnSummary {
        FnSummary {
            params: vec![
                ParamEffect {
                    uses: true,
                    escapes: true,
                    ..Default::default()
                };
                nparams
            ],
            ret: RetEffect::Unknown,
            reads_device_data: false,
            converged: false,
        }
    }
}

/// Where a call site leads, for summary purposes.
enum Res {
    /// Exactly one workspace function: apply its summary.
    Known(usize),
    /// Unresolved, ambiguous, path-qualified, or a DMA/read intrinsic:
    /// treat a handle argument as escaping.
    Opaque,
}

fn resolve_site(graph: &CallGraph, name: &str, method: bool, qualified: bool, argc: usize) -> Res {
    if qualified || INTRINSICS.contains(&name) || READ_METHODS.contains(&name) {
        return Res::Opaque;
    }
    match graph.resolve(name, method, argc)[..] {
        [id] => Res::Known(id),
        _ => Res::Opaque,
    }
}

/// Computes summaries for every node, callees before callers.
pub fn compute(graph: &CallGraph) -> Vec<FnSummary> {
    let cfgs: Vec<Cfg> = graph.nodes.iter().map(|n| Cfg::build(&n.body)).collect();
    let mut sums: Vec<FnSummary> = graph
        .nodes
        .iter()
        .map(|n| FnSummary::bottom(n.params.len()))
        .collect();
    for scc in graph.sccs() {
        let cap = 3 * scc.len() + 3;
        let mut rounds = 0;
        loop {
            let mut changed = false;
            for &id in &scc {
                let next = summarize_one(graph, &cfgs[id], id, &sums);
                if next != sums[id] {
                    sums[id] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            rounds += 1;
            if rounds >= cap {
                for &id in &scc {
                    sums[id] = FnSummary::conservative(graph.nodes[id].params.len());
                }
                break;
            }
        }
    }
    sums
}

/// Every statement in a CFG, with its events, in block order.
fn stmt_events(cfg: &Cfg) -> Vec<(&Stmt, Vec<Ev>)> {
    let mut out = Vec::new();
    for b in &cfg.blocks {
        let Some(stmt) = &b.stmt else { continue };
        if stmt.trees.first().is_some_and(|t| t.is_ident("fn")) {
            continue; // nested fn item: its own node
        }
        let mut evs = Vec::new();
        scan(&stmt.trees, false, &mut evs);
        out.push((stmt, evs));
    }
    out
}

fn summarize_one(graph: &CallGraph, cfg: &Cfg, id: usize, sums: &[FnSummary]) -> FnSummary {
    let node = &graph.nodes[id];
    let mut s = FnSummary::bottom(node.params.len());
    let slot_of = |name: &str| node.params.iter().position(|p| p.name == name);
    let stmts = stmt_events(cfg);

    // Device-writable buffers bound in this body (taint sources).
    let mut device_bufs: BTreeSet<String> = BTreeSet::new();
    for (stmt, _) in &stmts {
        if let Some(b) = detect_bind(&stmt.trees, None) {
            if b.dir.needs_cpu_sync() {
                if let Some(buf) = b.buf {
                    device_bufs.insert(buf);
                }
            }
        }
    }

    // Phase A: flow-insensitive flags per parameter.
    for (stmt, evs) in &stmts {
        let ret_pos = stmt.is_return || stmt.is_tail;
        for ev in evs {
            match ev {
                Ev::Call { kind, args, .. } => {
                    for a in args {
                        let Some(k) = slot_of(a) else { continue };
                        s.params[k].uses = true;
                        match kind {
                            CallKind::Unmap => s.params[k].may_unmap = true,
                            CallKind::SyncCpu => s.params[k].syncs_cpu = true,
                            CallKind::Map | CallKind::SyncDev => {}
                        }
                    }
                }
                Ev::Proj { var, .. } => {
                    if let Some(k) = slot_of(var) {
                        s.params[k].uses = true;
                    }
                }
                Ev::Read { head, .. } => {
                    for h in head {
                        if let Some(k) = slot_of(h) {
                            s.params[k].uses = true;
                        }
                    }
                    if head.iter().any(|h| device_bufs.contains(h)) {
                        s.reads_device_data = true;
                    }
                }
                Ev::UserCall {
                    name,
                    method,
                    qualified,
                    args,
                    ..
                } => {
                    for (i, arg) in args.iter().enumerate() {
                        let Some(a) = arg else { continue };
                        let Some(k) = slot_of(a) else { continue };
                        s.params[k].uses = true;
                        match resolve_site(graph, name, *method, *qualified, args.len()) {
                            Res::Known(callee) => {
                                let slot = i + usize::from(*method);
                                let ce =
                                    sums[callee]
                                        .params
                                        .get(slot)
                                        .copied()
                                        .unwrap_or(ParamEffect {
                                            uses: true,
                                            escapes: true,
                                            ..Default::default()
                                        });
                                s.params[k].may_unmap |= ce.may_unmap || ce.must_unmap;
                                s.params[k].syncs_cpu |= ce.syncs_cpu;
                                s.params[k].escapes |= ce.escapes || ce.returned;
                            }
                            Res::Opaque => {
                                if ret_pos {
                                    s.params[k].returned = true;
                                } else {
                                    s.params[k].escapes = true;
                                }
                            }
                        }
                    }
                }
                Ev::ClosureCapture { vars, .. } => {
                    for v in vars {
                        if let Some(k) = slot_of(v) {
                            s.params[k].uses = true;
                            s.params[k].escapes = true;
                        }
                    }
                }
                Ev::Bare { var } => {
                    if let Some(k) = slot_of(var) {
                        s.params[k].uses = true;
                        if ret_pos {
                            s.params[k].returned = true;
                        } else {
                            s.params[k].escapes = true;
                        }
                    }
                }
            }
        }
    }

    // Phase A: return-slot effect, joined over all return-position stmts.
    for (stmt, _) in &stmts {
        if !(stmt.is_return || stmt.is_tail) {
            continue;
        }
        let mut trees = &stmt.trees[..];
        if trees.first().is_some_and(|t| t.is_ident("return")) {
            trees = &trees[1..];
        }
        if trees.is_empty() {
            continue; // bare `return` / empty tail: no value
        }
        s.ret = join_ret(s.ret, ret_effect_of(trees, graph, sums));
    }

    // Phase B: must_unmap per candidate parameter (flow-sensitive).
    for k in 0..s.params.len() {
        let e = s.params[k];
        if e.may_unmap && !e.escapes && !e.returned {
            let name = node.params[k].name.clone();
            s.params[k].must_unmap = param_must_unmap(graph, cfg, &stmts, &name, sums);
        }
    }
    s
}

fn join_ret(a: RetEffect, b: RetEffect) -> RetEffect {
    match (a, b) {
        (RetEffect::NotHandle, x) | (x, RetEffect::NotHandle) => x,
        (RetEffect::FreshMapped { dir: d1 }, RetEffect::FreshMapped { dir: d2 }) => {
            RetEffect::FreshMapped {
                dir: if d1 == d2 { d1 } else { Dir::Unknown },
            }
        }
        _ => RetEffect::Unknown,
    }
}

/// The return effect of one return-position expression: `FreshMapped`
/// when it *ends* with a recognized map call (modulo `?`/`.unwrap()`/
/// `.expect(…)`) or a uniquely-resolved callee that provably returns one;
/// `Unknown` otherwise.
fn ret_effect_of(trees: &[crate::cfg::Tree], graph: &CallGraph, sums: &[FnSummary]) -> RetEffect {
    match crate::typestate::tail_call_effect(trees, graph, sums) {
        Some(eff) => eff,
        None => RetEffect::Unknown,
    }
}

/// Per-parameter lattice for the must-unmap dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PSt {
    /// Unreached.
    Bot,
    /// Still tracked; bitset of {MAPPED, UNMAPPED} path facts.
    Bits(u8),
    /// Escaped / moved / returned on some path: give up.
    Gone,
}

const P_MAPPED: u8 = 1;
const P_UNMAPPED: u8 = 2;

fn p_join(a: PSt, b: PSt) -> PSt {
    match (a, b) {
        (PSt::Bot, x) | (x, PSt::Bot) => x,
        (PSt::Gone, _) | (_, PSt::Gone) => PSt::Gone,
        (PSt::Bits(x), PSt::Bits(y)) => PSt::Bits(x | y),
    }
}

fn p_step(graph: &CallGraph, evs: &[Ev], param: &str, st: PSt, sums: &[FnSummary]) -> PSt {
    let PSt::Bits(mut bits) = st else { return st };
    for ev in evs {
        match ev {
            Ev::Call {
                kind: CallKind::Unmap,
                args,
                ..
            } if args.iter().any(|a| a == param) => {
                bits = P_UNMAPPED;
            }
            Ev::UserCall {
                name,
                method,
                qualified,
                args,
                ..
            } => {
                for (i, arg) in args.iter().enumerate() {
                    if arg.as_deref() != Some(param) {
                        continue;
                    }
                    match resolve_site(graph, name, *method, *qualified, args.len()) {
                        Res::Known(callee) => {
                            let slot = i + usize::from(*method);
                            let ce = sums[callee].params.get(slot).copied().unwrap_or_default();
                            if ce.must_unmap {
                                bits = P_UNMAPPED;
                            } else if ce.may_unmap || ce.escapes || ce.returned {
                                return PSt::Gone;
                            } else {
                                // No effect: by ref the handle stays ours;
                                // by value the callee drops it.
                                let by_ref = graph.nodes[callee]
                                    .params
                                    .get(slot)
                                    .map(|p| p.by_ref)
                                    .unwrap_or(false);
                                if !by_ref {
                                    return PSt::Gone;
                                }
                            }
                        }
                        Res::Opaque => return PSt::Gone,
                    }
                }
            }
            Ev::ClosureCapture { vars, .. } if vars.iter().any(|v| v == param) => {
                return PSt::Gone;
            }
            Ev::Bare { var } if var == param => {
                return PSt::Gone;
            }
            _ => {}
        }
    }
    PSt::Bits(bits)
}

/// Whether `param` is unmapped on every path from entry to exit.
fn param_must_unmap(
    graph: &CallGraph,
    cfg: &Cfg,
    stmts: &[(&Stmt, Vec<Ev>)],
    param: &str,
    sums: &[FnSummary],
) -> bool {
    // Per-block events, aligned with cfg.blocks (stmt_events skipped
    // empty blocks, so re-associate by statement identity via line+ptr).
    let n = cfg.blocks.len();
    let mut ins = vec![PSt::Bot; n];
    ins[cfg.entry] = PSt::Bits(P_MAPPED);
    let evs_of = |b: usize| -> Option<&Vec<Ev>> {
        let stmt = cfg.blocks[b].stmt.as_ref()?;
        stmts
            .iter()
            .find(|(s, _)| std::ptr::eq(*s, stmt))
            .map(|(_, e)| e)
    };
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 8 * n + 64 {
        changed = false;
        rounds += 1;
        for b in 0..n {
            if ins[b] == PSt::Bot {
                continue;
            }
            let out = match evs_of(b) {
                Some(evs) => p_step(graph, evs, param, ins[b], sums),
                None => ins[b],
            };
            let has_try = cfg.blocks[b].stmt.as_ref().is_some_and(|stmt| stmt.has_try);
            if has_try {
                let j = p_join(ins[cfg.exit], out);
                if j != ins[cfg.exit] {
                    ins[cfg.exit] = j;
                    changed = true;
                }
            }
            for &succ in &cfg.blocks[b].succs {
                let j = p_join(ins[succ], out);
                if j != ins[succ] {
                    ins[succ] = j;
                    changed = true;
                }
            }
        }
    }
    ins[cfg.exit] == PSt::Bits(P_UNMAPPED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prep;

    fn setup(src: &str) -> (CallGraph, Vec<FnSummary>) {
        let g = CallGraph::build(&[(prep("x.rs", src), "x".to_string())]);
        let s = compute(&g);
        (g, s)
    }

    fn sum_of<'s>(g: &CallGraph, s: &'s [FnSummary], name: &str) -> &'s FnSummary {
        let id = g
            .nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("{name} not in graph"));
        &s[id]
    }

    #[test]
    fn by_ref_reader_has_no_effects() {
        let src = "fn log_mapping(m: &M) { note(m.iova); }\n";
        let (g, s) = setup(src);
        let e = sum_of(&g, &s, "log_mapping").params[0];
        assert!(e.uses);
        assert!(
            !e.may_unmap && !e.must_unmap && !e.escapes && !e.returned,
            "{e:?}"
        );
    }

    #[test]
    fn unconditional_unmap_is_must_unmap() {
        let src = "fn release(engine: &E, ctx: &mut C, m: M) {\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        let (g, s) = setup(src);
        let e = sum_of(&g, &s, "release").params[2];
        assert!(e.may_unmap && e.must_unmap, "{e:?}");
    }

    #[test]
    fn conditional_unmap_is_may_not_must() {
        let src = "fn maybe(engine: &E, ctx: &mut C, m: M, fast: bool) {\n\
                   if fast {\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   }\n";
        let (g, s) = setup(src);
        let e = sum_of(&g, &s, "maybe").params[2];
        assert!(e.may_unmap && !e.must_unmap, "{e:?}");
    }

    #[test]
    fn must_unmap_propagates_through_a_helper() {
        let src = "fn release(engine: &E, ctx: &mut C, m: M) {\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   fn outer(engine: &E, ctx: &mut C, m: M) {\n\
                   release(engine, ctx, m);\n\
                   }\n";
        let (g, s) = setup(src);
        let e = sum_of(&g, &s, "outer").params[2];
        assert!(e.must_unmap, "{e:?}");
    }

    #[test]
    fn returned_param_is_flagged_returned() {
        let src = "fn pass(m: M) -> M { m }\n";
        let (g, s) = setup(src);
        let e = sum_of(&g, &s, "pass").params[0];
        assert!(e.returned && !e.escapes, "{e:?}");
    }

    #[test]
    fn stored_param_escapes() {
        let src = "fn stash(ring: &mut R, m: M) { ring.slots.push(m); }\n";
        let (g, s) = setup(src);
        let e = sum_of(&g, &s, "stash").params[1];
        assert!(e.escapes, "{e:?}");
    }

    #[test]
    fn closure_captured_param_escapes() {
        let src = "fn defer(q: &mut Q, m: M) { q.push(Box::new(move || consume(m))); }\n";
        let (g, s) = setup(src);
        let e = sum_of(&g, &s, "defer").params[1];
        assert!(e.escapes, "{e:?}");
    }

    #[test]
    fn tail_map_call_returns_fresh_mapping() {
        let src = "fn make_rx(engine: &E, ctx: &mut C) -> M {\n\
                   engine.map(ctx, DmaBuf::new(buf, 64), DmaDirection::FromDevice).expect(\"m\")\n\
                   }\n\
                   fn wrap(engine: &E, ctx: &mut C) -> M {\n\
                   make_rx(engine, ctx)\n\
                   }\n";
        let (g, s) = setup(src);
        assert_eq!(
            sum_of(&g, &s, "make_rx").ret,
            RetEffect::FreshMapped {
                dir: Dir::FromDevice
            }
        );
        // Propagates through a uniquely-resolved tail call.
        assert_eq!(
            sum_of(&g, &s, "wrap").ret,
            RetEffect::FreshMapped {
                dir: Dir::FromDevice
            }
        );
    }

    #[test]
    fn recursion_converges() {
        let src = "fn walk(n: u32) { if n > 0 { walk(n - 1); } }\n";
        let (g, s) = setup(src);
        assert!(sum_of(&g, &s, "walk").converged);
    }

    #[test]
    fn device_read_sets_the_taint_source_bit() {
        let src = "fn rx(engine: &E, mem: &M, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   engine.sync_for_cpu(ctx, &m);\n\
                   let data = mem.read_vec(frame, 256);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        let (g, s) = setup(src);
        assert!(sum_of(&g, &s, "rx").reads_device_data);
    }
}
