//! The shared front-end: byte-aligned comment/string-stripped views of a
//! Rust source file, the `#[cfg(test)]` region mask, and a token stream.
//!
//! Everything downstream — the style rules, the lock-order pass, the
//! unsafe audit, and the DMA-protocol typestate checker — consumes the
//! output of this one pass, so there is exactly one tokenizer and one
//! interpretation of what is code and what is comment.

/// A source file prepared for scanning. The two views are byte-aligned
/// with each other and with the raw source: `kept` has comments blanked
/// but string literals preserved (lock names live in strings); `blank`
/// additionally blanks string/char contents, so structural matching on it
/// is immune to both comments and literal contents.
#[derive(Debug, Clone)]
pub struct Prep {
    /// Reporting label (workspace-relative path).
    pub label: String,
    /// Comment-stripped view, string contents preserved.
    pub kept: String,
    /// Comment- and literal-stripped view.
    pub blank: String,
    /// Per line (0-indexed): does the line belong to a `#[cfg(test)]`
    /// item? Computed over `blank`.
    pub mask: Vec<bool>,
}

/// Prepares one source file: builds both views and the test mask.
pub fn prep(label: &str, src: &str) -> Prep {
    let (kept, blank) = aligned_views(src);
    let mask = test_region_mask(&blank);
    Prep {
        label: label.to_string(),
        kept,
        blank,
        mask,
    }
}

impl Prep {
    /// 1-indexed line of byte offset `pos` in either view.
    pub fn line_of(&self, pos: usize) -> usize {
        self.blank.as_bytes()[..pos.min(self.blank.len())]
            .iter()
            .filter(|&&c| c == b'\n')
            .count()
            + 1
    }

    /// Whether 1-indexed `line` is inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: usize) -> bool {
        self.mask
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Replaces comments and string/char literals with spaces, preserving
/// newlines and all other structure (so brace matching and line numbers
/// survive). Doc comments — and therefore doctests — are stripped too.
/// This is the `blank` view of [`aligned_views`].
pub fn strip_code(src: &str) -> String {
    aligned_views(src).1
}

/// Builds the byte-aligned comment-stripped (`kept`) and fully-blanked
/// (`blank`) views. Handles nested block comments, raw strings with any
/// number of `#`s (including unterminated ones at EOF), escapes, and
/// byte-string literals.
pub fn aligned_views(src: &str) -> (String, String) {
    let b = src.as_bytes();
    let mut kept = Vec::with_capacity(b.len());
    let mut blank = Vec::with_capacity(b.len());
    let nl = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                kept.push(b' ');
                blank.push(b' ');
                i += 1;
            }
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            kept.extend([b' ', b' ']);
            blank.extend([b' ', b' ']);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    kept.extend([b' ', b' ']);
                    blank.extend([b' ', b' ']);
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    kept.extend([b' ', b' ']);
                    blank.extend([b' ', b' ']);
                    i += 2;
                } else {
                    kept.push(nl(b[i]));
                    blank.push(nl(b[i]));
                    i += 1;
                }
            }
        } else if c == b'r' && raw_string_here(b, i) {
            let start = i;
            let mut j = i + 1;
            while j < b.len() && b[j] == b'#' {
                j += 1;
            }
            let hashes = j - (i + 1);
            // Copy `r##"` verbatim into kept, spaces into blank.
            for &d in &b[start..=j] {
                kept.push(d);
                blank.push(b' ');
            }
            i = j + 1;
            while i < b.len() {
                // The closer is `"` followed by exactly `hashes` `#`s; a
                // `"` too close to EOF to fit them cannot close the
                // literal.
                if b[i] == b'"'
                    && b.len() - (i + 1) >= hashes
                    && b[i + 1..].iter().take(hashes).all(|&d| d == b'#')
                {
                    for &d in &b[i..i + 1 + hashes] {
                        kept.push(d);
                        blank.push(b' ');
                    }
                    i += 1 + hashes;
                    break;
                }
                kept.push(b[i]);
                blank.push(nl(b[i]));
                i += 1;
            }
        } else if c == b'"' {
            kept.push(c);
            blank.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    kept.push(b[i]);
                    kept.push(b[i + 1]);
                    blank.push(b' ');
                    blank.push(nl(b[i + 1]));
                    i += 2;
                    continue;
                }
                let done = b[i] == b'"';
                kept.push(b[i]);
                blank.push(nl(b[i]));
                i += 1;
                if done {
                    break;
                }
            }
        } else if c == b'\'' && char_literal_here(b, i) {
            kept.push(c);
            blank.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    kept.push(b[i]);
                    kept.push(b[i + 1]);
                    blank.extend([b' ', b' ']);
                    i += 2;
                    continue;
                }
                let done = b[i] == b'\'';
                kept.push(b[i]);
                blank.push(b' ');
                i += 1;
                if done {
                    break;
                }
            }
        } else {
            kept.push(c);
            blank.push(c);
            i += 1;
        }
    }
    (
        String::from_utf8_lossy(&kept).into_owned(),
        String::from_utf8_lossy(&blank).into_owned(),
    )
}

fn raw_string_here(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && (j > i + 1 || b[i + 1] == b'"')
}

fn char_literal_here(b: &[u8], i: usize) -> bool {
    // Distinguish 'x' / '\n' char literals from lifetimes ('a, 'static).
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => b.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Returns, per line (0-indexed), whether the line belongs to a
/// `#[cfg(test)]` item — computed by brace-matching the item that follows
/// the attribute. Expects *stripped* source (the `blank` view).
///
/// Brace counting starts at the attribute itself, so a closing brace
/// earlier on the same line (`} #[cfg(test)] mod t {`) cannot unbalance
/// the match, and a brace-less item on the attribute's own line
/// (`#[cfg(test)] use x;`) terminates there instead of swallowing the
/// rest of the file.
pub fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let Some(col) = lines[i].find("#[cfg(test)]") else {
            i += 1;
            continue;
        };
        // The attributed item starts at the attribute (possibly on the
        // same line) and runs until its braces balance back to zero — or,
        // for brace-less items (`#[cfg(test)] use …;`), until the
        // terminating semicolon.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            let scan = if j == i { &lines[j][col..] } else { lines[j] };
            for c in scan.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened
                && scan.trim_end().ends_with(';')
                && !scan.trim_end().ends_with("#[cfg(test)]")
            {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// One token over the `blank` view. Identifiers (including keywords and
/// number literals) carry their text; everything else is a single- or
/// multi-character punctuation token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (identifier characters or the punctuation sequence).
    pub text: String,
    /// `true` for identifier/keyword/number tokens.
    pub is_ident: bool,
    /// Byte offset into the `blank` view.
    pub pos: usize,
    /// 1-indexed line.
    pub line: usize,
}

/// Multi-character punctuation sequences kept together by the tokenizer.
/// Everything not listed lexes as a single character.
const JOINED: [&str; 6] = ["::", "->", "=>", "..=", "..", "&&"];

/// Tokenizes the `blank` view: identifier runs (`[A-Za-z0-9_]+`) become
/// ident tokens, a few multi-character operators stay joined, and every
/// other non-whitespace byte is a one-character punct token. String and
/// char literal contents were blanked by [`aligned_views`], so no string
/// byte ever reaches the token stream.
pub fn tokenize(blank: &str) -> Vec<Token> {
    let b = blank.as_bytes();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                text: blank[start..i].to_string(),
                is_ident: true,
                pos: start,
                line,
            });
            continue;
        }
        let rest = &blank[i..];
        let joined = JOINED.iter().find(|p| rest.starts_with(**p));
        let len = joined.map_or(1, |p| p.len());
        out.push(Token {
            text: rest[..len].to_string(),
            is_ident: false,
            pos: i,
            line,
        });
        i += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_strings_and_doctests() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\n/* .expect( */ let b = 'x';\n/// ```\n/// v.unwrap();\n/// ```\nfn f() {}\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("expect"));
        assert!(s.contains("let a ="));
        assert!(s.contains("fn f() {}"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"a } { .unwrap() \"#;\nfn g<'a>(x: &'a str) -> &'a str { x }\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        // Braces inside the raw string are gone; real braces survive.
        assert!(s.contains("fn g<'a>(x: &'a str) -> &'a str { x }"));
    }

    #[test]
    fn strip_handles_nested_block_comments() {
        // Regression: `/* outer /* inner */ still comment */` must stay
        // one comment — the naive scan used to resurface after `inner */`.
        let src = "/* outer /* inner */ still.unwrap() */ let keep = 1;\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"), "{s}");
        assert!(s.contains("let keep = 1;"), "{s}");
    }

    #[test]
    fn strip_handles_unterminated_raw_string_at_eof() {
        // Regression: with 2 closer hashes and a `"` on the last byte, the
        // old closer probe `take(hashes).all(..)` matched an *empty*
        // remainder and treated the literal as closed.
        let src = "let r = r##\"abc\"";
        let (kept, blank) = aligned_views(src);
        assert_eq!(kept.len(), src.len());
        assert_eq!(blank.len(), src.len());
        assert!(!blank.contains("abc"));
    }

    #[test]
    fn mask_covers_test_mod() {
        let s = strip_code(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n",
        );
        let m = test_region_mask(&s);
        assert_eq!(m, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn mask_ignores_brace_noise_before_attribute_on_same_line() {
        // Regression: the `}` before the attribute used to pre-decrement
        // the depth counter and end the region on the opening line.
        let s = strip_code("fn a() {}\n} #[cfg(test)] mod t {\n    fn x() {}\n}\nfn b() {}\n");
        let m = test_region_mask(&s);
        assert!(!m[0]);
        assert!(m[1] && m[2] && m[3], "{m:?}");
        assert!(!m[4]);
    }

    #[test]
    fn mask_handles_single_line_braceless_item() {
        // Regression: `#[cfg(test)] use x;` on one line used to keep
        // masking until the next semicolon-terminated line.
        let s = strip_code("#[cfg(test)] use helpers::x;\nfn prod() { v.unwrap(); }\n");
        let m = test_region_mask(&s);
        assert_eq!(m, vec![true, false]);
    }

    #[test]
    fn mask_covers_cfg_test_impl_blocks() {
        // Regression companion: an attributed `impl` block (with extra
        // attributes between `#[cfg(test)]` and the braces) is one item.
        let src = "struct S;\n#[cfg(test)]\n#[allow(dead_code)]\nimpl S {\n    fn t(&self) -> u32 {\n        1\n    }\n}\nfn prod() {}\n";
        let m = test_region_mask(&strip_code(src));
        assert_eq!(
            m,
            vec![false, true, true, true, true, true, true, true, false]
        );
    }

    #[test]
    fn tokenizer_yields_idents_and_joined_puncts() {
        let toks = tokenize("let m = eng.map(ctx)?; a::b -> c\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            [
                "let", "m", "=", "eng", ".", "map", "(", "ctx", ")", "?", ";", "a", "::", "b",
                "->", "c"
            ]
        );
        assert!(toks[0].is_ident && !toks[2].is_ident);
        assert_eq!(toks[0].line, 1);
    }

    #[test]
    fn tokenizer_tracks_lines() {
        let toks = tokenize("a\nb\n\nc\n");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
