//! The DMA-API protocol rule pass: runs the typestate checker
//! ([`crate::typestate`]) over a prepared file and converts its findings
//! into waiver-compatible lint violations.
//!
//! In a full workspace scan the pass runs **interprocedurally**: the
//! workspace call graph ([`crate::callgraph`]) and per-function effect
//! summaries ([`crate::summary`]) resolve helper calls, returned handles,
//! and closure captures instead of waiving them, and the device-taint
//! pass ([`crate::taint`]) rides on the same summaries. The assembled
//! [`ProtocolAnalysis`] is what `lint --json` exports next to the
//! lock-order and unsafe inventories.

use crate::callgraph::CallGraph;
use crate::lexer::Prep;
use crate::report::LintViolation;
use crate::rules::has_rule_waiver;
use crate::rules::style::FileContext;
use crate::summary::FnSummary;
use crate::taint::TaintStats;
use crate::typestate::{EscapeNote, Finding, InterCtx};

/// The protocol rule names, in reporting order.
pub const PROTOCOL_RULES: [&str; 4] = [
    "use-after-unmap",
    "leak-on-exit",
    "double-unmap",
    "sync-before-cpu-read",
];

/// One handle-escape note tagged with its file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeExport {
    /// Workspace-relative file.
    pub file: String,
    /// The note itself.
    pub note: EscapeNote,
}

/// The interprocedural analysis product of one full workspace scan: the
/// call graph, every function's effect summary, the handle-escape notes,
/// and the device-taint statistics.
#[derive(Debug, Default)]
pub struct ProtocolAnalysis {
    /// The workspace call graph.
    pub graph: CallGraph,
    /// Effect summaries, indexed like `graph.nodes`.
    pub summaries: Vec<FnSummary>,
    /// Handles that left the typestate lattice, declared not hidden.
    pub escapes: Vec<EscapeExport>,
    /// Aggregate taint numbers across the workspace.
    pub taint: TaintStats,
}

/// Per-file protocol + taint result, raw and filtered.
pub struct FileProtocol {
    /// Waiver-filtered violations (what the build gates on).
    pub violations: Vec<LintViolation>,
    /// Unfiltered findings (what dead-waiver detection counts).
    pub raw: Vec<Finding>,
    /// Handle-escape notes (interprocedural mode only).
    pub escapes: Vec<EscapeNote>,
    /// Taint stats for this file.
    pub taint: TaintStats,
}

/// Runs the protocol checker (and, in interprocedural mode, the taint
/// pass) over one prepared file. `src` is the raw source (for waiver
/// comments). Aux files (`tests/`, `benches/`) are exempt: protocol
/// discipline is a library-code concern, and test code deliberately
/// constructs broken sequences to feed dmasan.
pub fn check_file(
    prep: &Prep,
    src: &str,
    ctx: FileContext,
    inter: Option<&InterCtx<'_>>,
) -> FileProtocol {
    if ctx.aux {
        return FileProtocol {
            violations: Vec::new(),
            raw: Vec::new(),
            escapes: Vec::new(),
            taint: TaintStats::default(),
        };
    }
    let (mut raw, escapes) = crate::typestate::check_file_inter(prep, inter);
    let mut taint = TaintStats::default();
    if let Some(ic) = inter {
        let (tfindings, tstats) = crate::taint::check_file(prep, Some((ic.graph, ic.summaries)));
        raw.extend(tfindings);
        taint = tstats;
    }
    let violations = raw
        .iter()
        .filter(|f| !has_rule_waiver(src, f.rule))
        .map(|f| LintViolation {
            file: prep.label.clone(),
            line: f.line,
            rule: f.rule,
            detail: f.detail.clone(),
        })
        .collect();
    FileProtocol {
        violations,
        raw,
        escapes,
        taint,
    }
}

/// Intraprocedural per-file entry point (the historical signature).
pub fn check(prep: &Prep, src: &str, ctx: FileContext) -> Vec<LintViolation> {
    check_file(prep, src, ctx, None).violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prep;

    const LEAKY: &str = "fn f(engine: &E, ctx: &mut C) {\n\
        let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
        }\n";

    #[test]
    fn protocol_findings_become_violations() {
        let p = prep("x.rs", LEAKY);
        let v = check(&p, LEAKY, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "leak-on-exit");
        assert_eq!(v[0].file, "x.rs");
    }

    #[test]
    fn aux_files_are_exempt() {
        let p = prep("tests/x.rs", LEAKY);
        let aux = FileContext {
            aux: true,
            ..Default::default()
        };
        assert!(check(&p, LEAKY, aux).is_empty());
    }

    #[test]
    fn reasoned_waiver_silences_one_rule_only() {
        let src = format!(
            "// lint: allow(leak-on-exit) — ownership handed to the ring at runtime\n{LEAKY}"
        );
        let p = prep("x.rs", &src);
        assert!(check(&p, &src, FileContext::default()).is_empty());
        // The waiver names its rule; other protocol rules still fire.
        let uaf = "// lint: allow(leak-on-exit) — reasoned\n\
            fn f(engine: &E, ctx: &mut C) {\n\
            let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
            engine.unmap(ctx, m).expect(\"u\");\n\
            poke(m.iova.get());\n\
            }\n";
        let p = prep("x.rs", uaf);
        let v = check(&p, uaf, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "use-after-unmap");
    }

    #[test]
    fn waivers_filter_but_raw_findings_remain() {
        let src = format!("// lint: allow(leak-on-exit) — reasoned waiver here\n{LEAKY}");
        let p = prep("x.rs", &src);
        let fp = check_file(&p, &src, FileContext::default(), None);
        assert!(fp.violations.is_empty(), "{:?}", fp.violations);
        assert_eq!(fp.raw.len(), 1, "{:?}", fp.raw);
        assert_eq!(fp.raw[0].rule, "leak-on-exit");
    }
}
