//! The DMA-API protocol rule pass: runs the typestate checker
//! ([`crate::typestate`]) over a prepared file and converts its findings
//! into waiver-compatible lint violations.

use crate::lexer::Prep;
use crate::report::LintViolation;
use crate::rules::has_rule_waiver;
use crate::rules::style::FileContext;

/// The protocol rule names, in reporting order.
pub const PROTOCOL_RULES: [&str; 4] = [
    "use-after-unmap",
    "leak-on-exit",
    "double-unmap",
    "sync-before-cpu-read",
];

/// Runs the protocol checker over one prepared file. `src` is the raw
/// source (for waiver comments). Aux files (`tests/`, `benches/`) are
/// exempt: protocol discipline is a library-code concern, and test code
/// deliberately constructs broken sequences to feed dmasan.
pub fn check(prep: &Prep, src: &str, ctx: FileContext) -> Vec<LintViolation> {
    if ctx.aux {
        return Vec::new();
    }
    crate::typestate::check_file(prep)
        .into_iter()
        .filter(|f| !has_rule_waiver(src, f.rule))
        .map(|f| LintViolation {
            file: prep.label.clone(),
            line: f.line,
            rule: f.rule,
            detail: f.detail,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prep;

    const LEAKY: &str = "fn f(engine: &E, ctx: &mut C) {\n\
        let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
        }\n";

    #[test]
    fn protocol_findings_become_violations() {
        let p = prep("x.rs", LEAKY);
        let v = check(&p, LEAKY, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "leak-on-exit");
        assert_eq!(v[0].file, "x.rs");
    }

    #[test]
    fn aux_files_are_exempt() {
        let p = prep("tests/x.rs", LEAKY);
        let aux = FileContext {
            aux: true,
            ..Default::default()
        };
        assert!(check(&p, LEAKY, aux).is_empty());
    }

    #[test]
    fn reasoned_waiver_silences_one_rule_only() {
        let src = format!(
            "// lint: allow(leak-on-exit) — ownership handed to the ring at runtime\n{LEAKY}"
        );
        let p = prep("x.rs", &src);
        assert!(check(&p, &src, FileContext::default()).is_empty());
        // The waiver names its rule; other protocol rules still fire.
        let uaf = "// lint: allow(leak-on-exit) — reasoned\n\
            fn f(engine: &E, ctx: &mut C) {\n\
            let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
            engine.unmap(ctx, m).expect(\"u\");\n\
            poke(m.iova.get());\n\
            }\n";
        let p = prep("x.rs", uaf);
        let v = check(&p, uaf, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "use-after-unmap");
    }
}
