//! The rule passes, all consuming the shared front-end ([`crate::lexer`]).
//!
//! - [`style`] — the line-level house rules (panic, phys-addr-arith,
//!   ambient-io, relaxed-atomic) and the manifest rule (external-dep).
//! - [`lock_order`] — lock-site inventory and acquisition-cycle detection.
//! - [`protocol`] — the DMA-API typestate checker (use-after-unmap,
//!   leak-on-exit, double-unmap, sync-before-cpu-read).
//! - [`unsafe_audit`] — every `unsafe` must carry a `// SAFETY:` comment.
//!
//! Every rule is waiver-compatible: a file opts out of one rule with
//! `// lint: allow(<rule>) — <reason>`; the reason is mandatory.

pub mod lock_order;
pub mod protocol;
pub mod style;
pub mod unsafe_audit;

/// The waiver comment a file uses to opt out of the panic rule. A reason
/// is mandatory: `// lint: allow(panic) — deliberate invariant panics`.
pub const PANIC_WAIVER: &str = "// lint: allow(panic)";

/// The waiver comment a file uses to opt out of the ambient-I/O rule. A
/// reason is mandatory:
/// `// lint: allow(ambient-io) — the harness writes BENCH_HOST.json`.
pub const IO_WAIVER: &str = "// lint: allow(ambient-io)";

/// The waiver comment a file uses to opt out of the relaxed-atomic rule.
/// A reason is mandatory — it must say why no ordering is needed:
/// `// lint: allow(relaxed-atomic) — stats counters, never synchronized on`.
pub const RELAXED_WAIVER: &str = "// lint: allow(relaxed-atomic)";

/// Whether `src` contains `waiver` followed by a non-trivial reason.
pub(crate) fn has_waiver(src: &str, waiver: &str) -> bool {
    src.lines().any(|l| {
        let t = l.trim_start();
        t.starts_with(waiver) && t.len() > waiver.len() + 3
    })
}

/// Whether `src` carries a reasoned waiver for `rule`
/// (`// lint: allow(<rule>) — <reason>`).
pub fn has_rule_waiver(src: &str, rule: &str) -> bool {
    let waiver = format!("// lint: allow({rule})");
    has_waiver(src, &waiver)
}

/// The 1-indexed line of the first reasoned waiver for `rule`, if any.
pub(crate) fn rule_waiver_line(src: &str, rule: &str) -> Option<usize> {
    let waiver = format!("// lint: allow({rule})");
    src.lines()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with(&waiver) && t.len() > waiver.len() + 3
        })
        .map(|i| i + 1)
}

/// The waivable rules that actually *execute* for a file in context
/// `ctx`: the universe dead-waiver detection checks against. A waiver
/// for a rule that never runs here (e.g. `panic` in a bench) is left
/// alone — it is inert, not stale evidence.
pub(crate) fn executed_waivable_rules(ctx: style::FileContext) -> Vec<&'static str> {
    let mut rules = Vec::new();
    if !ctx.io_allowed {
        rules.push("ambient-io");
    }
    if ctx.aux {
        return rules;
    }
    rules.push("panic");
    if !ctx.in_obs {
        rules.push("relaxed-atomic");
    }
    rules.extend(protocol::PROTOCOL_RULES);
    rules.push("device-taint");
    rules.push("unsafe-no-safety");
    rules
}

/// Reports reasoned waivers that no longer suppress anything: for each
/// executed waivable rule, a waiver present in `src` while the
/// *unfiltered* finding count for that rule is zero is itself a finding
/// (`dead-waiver`), so waivers obsoleted by the interprocedural pass
/// cannot linger.
pub(crate) fn dead_waivers(
    label: &str,
    src: &str,
    ctx: style::FileContext,
    raw_counts: &std::collections::BTreeMap<&'static str, usize>,
) -> Vec<crate::report::LintViolation> {
    let mut out = Vec::new();
    for rule in executed_waivable_rules(ctx) {
        if raw_counts.get(rule).copied().unwrap_or(0) > 0 {
            continue;
        }
        if let Some(line) = rule_waiver_line(src, rule) {
            out.push(crate::report::LintViolation {
                file: label.to_string(),
                line,
                rule: "dead-waiver",
                detail: format!("waiver for `{rule}` no longer suppresses any finding"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_waiver_requires_reason() {
        let with = "// lint: allow(use-after-unmap) — deliberate attack replay\nfn f() {}\n";
        assert!(has_rule_waiver(with, "use-after-unmap"));
        let bare = "// lint: allow(use-after-unmap)\nfn f() {}\n";
        assert!(!has_rule_waiver(bare, "use-after-unmap"));
        assert!(!has_rule_waiver(with, "double-unmap"));
    }
}
