// lint: allow(ambient-io) — the unsafe inventory must read member crates' sources
//! The `unsafe` audit: every `unsafe` block, fn, impl, or trait outside
//! `#[cfg(test)]` must carry a `// SAFETY:` comment (on the same line or
//! an adjacent comment/attribute line above) stating why the invariants
//! hold. The full site inventory is exported like the lock-order report,
//! so CI artifacts record where unsafety lives even when every site is
//! justified — today the answer is "nowhere": every member crate carries
//! `#![forbid(unsafe_code)]`, which the inventory also records.

use std::fs;
use std::path::Path;

use crate::lexer::{prep, tokenize, Prep};
use crate::report::LintViolation;
use crate::rules::has_rule_waiver;

/// One `unsafe` occurrence in non-test code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line of the `unsafe` keyword.
    pub line: usize,
    /// A `// SAFETY:` comment was found for the site.
    pub has_safety_comment: bool,
}

/// The exported result of the unsafe audit.
#[derive(Debug, Clone, Default)]
pub struct UnsafeReport {
    /// Every non-test `unsafe` occurrence.
    pub sites: Vec<UnsafeSite>,
    /// Member crates whose lib.rs carries `#![forbid(unsafe_code)]`.
    pub forbid_crates: Vec<String>,
}

/// How many comment/attribute lines above an `unsafe` are searched for
/// the `SAFETY:` marker.
const SAFETY_LOOKBACK: usize = 4;

/// Scans one prepared file for `unsafe` keywords outside test regions.
/// `src` is the raw source — the SAFETY marker lives in comments, which
/// the blank view erases.
pub fn scan_file(p: &Prep, src: &str) -> Vec<UnsafeSite> {
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for tok in tokenize(&p.blank) {
        if !(tok.is_ident && tok.text == "unsafe") || p.in_test(tok.line) {
            continue;
        }
        let idx = tok.line - 1;
        let mut found = raw_lines.get(idx).is_some_and(|l| l.contains("SAFETY:"));
        let mut k = idx;
        let mut looked = 0;
        while !found && k > 0 && looked < SAFETY_LOOKBACK {
            k -= 1;
            looked += 1;
            let t = raw_lines.get(k).map(|l| l.trim_start()).unwrap_or("");
            if t.starts_with("//") || t.starts_with("#[") {
                found = t.contains("SAFETY:");
                if found {
                    break;
                }
            } else {
                break;
            }
        }
        out.push(UnsafeSite {
            file: p.label.clone(),
            line: tok.line,
            has_safety_comment: found,
        });
    }
    out
}

/// Converts undocumented sites into `unsafe-no-safety` violations,
/// honoring a reasoned file waiver.
pub fn violations(sites: &[UnsafeSite], src: &str) -> Vec<LintViolation> {
    if has_rule_waiver(src, "unsafe-no-safety") {
        return Vec::new();
    }
    sites
        .iter()
        .filter(|s| !s.has_safety_comment)
        .map(|s| LintViolation {
            file: s.file.clone(),
            line: s.line,
            rule: "unsafe-no-safety",
            detail: "`unsafe` without a `// SAFETY:` comment; state why the \
                     invariants hold (or add `// lint: allow(unsafe-no-safety) — <reason>`)"
                .to_string(),
        })
        .collect()
}

/// Runs the unsafe inventory over every member crate rooted at `root`
/// (`src/`, `tests/`, and `benches/` trees — unsafety in tests still
/// wants a reason, though only non-test *regions* are counted).
pub fn unsafe_audit_analysis(root: &Path) -> std::io::Result<UnsafeReport> {
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    let mut report = UnsafeReport::default();
    for member in crate::member_crates(root)? {
        let crate_name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        crate::rust_files(&src_dir, &mut files)?;
        files.sort();
        for f in &files {
            let src = fs::read_to_string(f)?;
            if f.file_name().is_some_and(|n| n == "lib.rs")
                && src.contains("#![forbid(unsafe_code)]")
            {
                report.forbid_crates.push(crate_name.clone());
            }
            let p = prep(&label(f), &src);
            report.sites.extend(scan_file(&p, &src));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prep;

    #[test]
    fn documented_unsafe_is_inventoried_but_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   // SAFETY: caller guarantees p is valid for reads\n\
                   unsafe { *p }\n\
                   }\n";
        let sites = scan_file(&prep("x.rs", src), src);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert!(sites[0].has_safety_comment);
        assert_eq!(sites[0].line, 3);
        assert!(violations(&sites, src).is_empty());
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let sites = scan_file(&prep("x.rs", src), src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].has_safety_comment);
        let v = violations(&sites, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-no-safety");
    }

    #[test]
    fn same_line_and_distant_comments() {
        let same = "unsafe { go() } // SAFETY: single-threaded init\n";
        let sites = scan_file(&prep("x.rs", same), same);
        assert!(sites[0].has_safety_comment);
        // A code line between comment and site breaks the association.
        let far = "// SAFETY: stale justification\nfn f() {\nunsafe { go() }\n}\n";
        let sites = scan_file(&prep("x.rs", far), far);
        assert!(!sites[0].has_safety_comment, "{sites:?}");
    }

    #[test]
    fn test_regions_and_strings_are_ignored() {
        let src = "const S: &str = \"unsafe\";\n\
                   #[cfg(test)]\n\
                   mod t {\n\
                   fn x() { unsafe { no() } }\n\
                   }\n";
        let sites = scan_file(&prep("x.rs", src), src);
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn waiver_silences_the_audit() {
        let src = "// lint: allow(unsafe-no-safety) — ffi shim audited in DESIGN.md\n\
                   fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let sites = scan_file(&prep("x.rs", src), src);
        assert_eq!(sites.len(), 1);
        assert!(violations(&sites, src).is_empty());
    }
}
