// lint: allow(ambient-io) — the lock-order pass must read member crates' sources
//! Lock-order static analysis.
//!
//! Extracts every instrumented lock site (`SimLock::new`, `.with(ctx, …)`,
//! `.with_spin(ctx, …)`, `lockset_guarded`, `with_lockset`) from the
//! member crates, resolves the
//! lock-name constants, builds the nested-acquisition graph by paren
//! matching the critical-section closures, and flags any cycle as a
//! `lock-order` violation. The site inventory is exported
//! ([`lock_order_analysis`]) and fed to the bounded model checker's
//! `known_locks` check, so a lock the checker schedules around can never
//! be missing from the static map.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::lexer::{prep, Prep};
use crate::report::LintViolation;

/// One statically discovered lock site in a member crate's sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Resolved lock name — the string handed to `SimLock::new` or the
    /// dmasan lockset helpers, after constant resolution.
    pub lock: String,
    /// `true` for acquisition sites (`.with(ctx, …)`, `lockset_guarded`,
    /// `with_lockset`); `false` for the `SimLock::new` declaration.
    pub acquisition: bool,
}

/// A nested acquisition: `inner` is acquired while `outer` is held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held at the outer site.
    pub outer: String,
    /// Lock acquired inside the outer critical section.
    pub inner: String,
    /// File of the inner (nested) acquisition.
    pub file: String,
    /// 1-indexed line of the inner acquisition.
    pub line: usize,
}

/// The exported result of the lock-order pass: the full site inventory
/// (which the model checker cross-checks its runtime lock labels against),
/// the nested-acquisition graph, and any cycles found in it.
#[derive(Debug, Clone, Default)]
pub struct LockOrderReport {
    /// Every declaration and acquisition site found.
    pub sites: Vec<LockSite>,
    /// Deduplicated nested-acquisition edges.
    pub edges: Vec<LockEdge>,
    /// Each distinct acquisition-order cycle, smallest lock name first.
    pub cycles: Vec<Vec<String>>,
}

impl LockOrderReport {
    /// Sorted, deduplicated lock names — the model checker's
    /// `Config::known_locks` input.
    pub fn lock_names(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.sites.iter().map(|s| s.lock.as_str()).collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// One `lock-order` violation per cycle, anchored at a witnessing
    /// nested acquisition.
    pub fn cycle_violations(&self) -> Vec<LintViolation> {
        self.cycles
            .iter()
            .map(|cyc| {
                let outer = &cyc[0];
                let inner = cyc.get(1).unwrap_or(&cyc[0]);
                let site = self
                    .edges
                    .iter()
                    .find(|e| &e.outer == outer && &e.inner == inner);
                let ring: Vec<&str> = cyc
                    .iter()
                    .map(String::as_str)
                    .chain([cyc[0].as_str()])
                    .collect();
                LintViolation {
                    file: site.map(|e| e.file.clone()).unwrap_or_default(),
                    line: site.map(|e| e.line).unwrap_or(0),
                    rule: "lock-order",
                    detail: format!(
                        "lock acquisition cycle {}; nested acquisitions must follow \
                         one global order",
                        ring.join(" -> ")
                    ),
                }
            })
            .collect()
    }
}

/// Collects `const NAME: &str = "value";`-style string constants (the
/// idiom lock names are declared with) into `consts`, crate-wide.
pub(crate) fn scan_lock_consts(prep: &Prep, consts: &mut BTreeMap<String, String>) {
    let bb = prep.blank.as_bytes();
    let kb = prep.kept.as_bytes();
    for (pos, _) in prep.blank.match_indices("const ") {
        if pos > 0 && (bb[pos - 1].is_ascii_alphanumeric() || bb[pos - 1] == b'_') {
            continue;
        }
        let mut k = pos + "const ".len();
        while k < bb.len() && bb[k] == b' ' {
            k += 1;
        }
        let start = k;
        while k < bb.len() && (bb[k].is_ascii_alphanumeric() || bb[k] == b'_') {
            k += 1;
        }
        if k == start {
            continue;
        }
        let ident = &prep.blank[start..k];
        // The type between `:` and `=` must be a &str flavor.
        let Some(eq) = prep.blank[k..].find('=').map(|o| k + o) else {
            continue;
        };
        if !prep.blank[k..eq].contains("str") {
            continue;
        }
        let mut v = eq + 1;
        while v < kb.len() && (kb[v] == b' ' || kb[v] == b'\n') {
            v += 1;
        }
        if v >= kb.len() || kb[v] != b'"' {
            continue;
        }
        let mut e = v + 1;
        while e < kb.len() && kb[e] != b'"' {
            e += 1;
        }
        if let Ok(val) = std::str::from_utf8(&kb[v + 1..e]) {
            consts.insert(ident.to_string(), val.to_string());
        }
    }
}

/// Reads a lock-name argument starting at byte `k`: a string literal
/// (from the comment-stripped view) or an identifier resolved through the
/// crate's constant table.
fn read_lock_arg(prep: &Prep, mut k: usize, consts: &BTreeMap<String, String>) -> Option<String> {
    let bb = prep.blank.as_bytes();
    let kb = prep.kept.as_bytes();
    while k < kb.len() && (kb[k] == b' ' || kb[k] == b'\n' || kb[k] == b'\t') {
        k += 1;
    }
    if k >= kb.len() {
        return None;
    }
    if kb[k] == b'"' {
        let mut e = k + 1;
        while e < kb.len() && kb[e] != b'"' {
            e += 1;
        }
        return std::str::from_utf8(&kb[k + 1..e]).ok().map(str::to_string);
    }
    let start = k;
    let mut e = k;
    while e < bb.len() && (bb[e].is_ascii_alphanumeric() || bb[e] == b'_') {
        e += 1;
    }
    if e == start {
        return None;
    }
    consts.get(&prep.blank[start..e]).cloned()
}

/// The identifier ending right before byte `end` (used for `.with`
/// receivers and `SimLock::new` binders).
fn ident_before(blank: &str, end: usize) -> &str {
    let bb = blank.as_bytes();
    let mut k = end;
    while k > 0 && (bb[k - 1].is_ascii_alphanumeric() || bb[k - 1] == b'_') {
        k -= 1;
    }
    &blank[k..end]
}

/// Matches the `(` at `open` to its `)` on the fully-blanked view (string
/// contents cannot unbalance it).
fn match_paren(blank: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, &c) in blank.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// An acquisition occurrence with the byte span of its critical-section
/// argument list (nested occurrences starting inside the span become
/// lock-order edges).
struct Acq {
    start: usize,
    end: usize,
    line: usize,
    names: Vec<String>,
}

/// Scans one prepared file for lock declarations and acquisitions,
/// recording sites and intra-file nested-acquisition edges.
pub(crate) fn scan_lock_file(
    prep: &Prep,
    consts: &BTreeMap<String, String>,
    sites: &mut Vec<LockSite>,
    edges: &mut Vec<LockEdge>,
) {
    let bb = prep.blank.as_bytes();

    // Declarations: `binder: SimLock::new(ARG)` / `let binder = …`.
    let mut fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (pos, _) in prep.blank.match_indices("SimLock::new(") {
        let line = prep.line_of(pos);
        if prep.in_test(line) {
            continue;
        }
        let Some(name) = read_lock_arg(prep, pos + "SimLock::new(".len(), consts) else {
            continue;
        };
        let mut j = pos;
        while j > 0 && bb[j - 1] == b' ' {
            j -= 1;
        }
        if j > 0 && (bb[j - 1] == b':' || bb[j - 1] == b'=') {
            j -= 1;
            while j > 0 && bb[j - 1] == b' ' {
                j -= 1;
            }
            let binder = ident_before(&prep.blank, j);
            if !binder.is_empty() && binder != "let" {
                fields
                    .entry(binder.to_string())
                    .or_default()
                    .insert(name.clone());
            }
        }
        sites.push(LockSite {
            file: prep.label.clone(),
            line,
            lock: name,
            acquisition: false,
        });
    }

    let unique_lock: Option<String> = {
        let all: BTreeSet<&String> = fields.values().flatten().collect();
        if all.len() == 1 {
            all.iter().next().map(|s| (*s).clone())
        } else {
            None
        }
    };

    let mut acqs: Vec<Acq> = Vec::new();
    let mut record = |names: Vec<String>, open: usize, pos: usize, acqs: &mut Vec<Acq>| {
        let line = prep.line_of(pos);
        if names.is_empty() || prep.in_test(line) {
            return;
        }
        let Some(end) = match_paren(bb, open) else {
            return;
        };
        for n in &names {
            sites.push(LockSite {
                file: prep.label.clone(),
                line,
                lock: n.clone(),
                acquisition: true,
            });
        }
        acqs.push(Acq {
            start: pos,
            end,
            line,
            names,
        });
    };

    // `receiver.with(ctx, |ctx| …)` — receiver must be a known SimLock
    // binder (this is what keeps `CURRENT.with(|…|)` thread-locals out).
    for (pos, _) in prep.blank.match_indices(".with(") {
        let names: Vec<String> = fields
            .get(ident_before(&prep.blank, pos))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        record(names, pos + ".with".len(), pos, &mut acqs);
    }
    // `receiver.with_spin(ctx, |ctx| …)` — same acquisition shape as
    // `.with(`, but also returns the acquisition's own spin so callers
    // can attribute contention per-site.
    for (pos, _) in prep.blank.match_indices(".with_spin(") {
        let names: Vec<String> = fields
            .get(ident_before(&prep.blank, pos))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        record(names, pos + ".with_spin".len(), pos, &mut acqs);
    }
    // `lockset_guarded(ctx, NAME, …)` — dmasan lockset regions.
    for (pos, _) in prep.blank.match_indices("lockset_guarded(ctx") {
        let mut k = pos + "lockset_guarded(ctx".len();
        while k < bb.len() && (bb[k] == b' ' || bb[k] == b'\n') {
            k += 1;
        }
        if k >= bb.len() || bb[k] != b',' {
            continue;
        }
        let names = read_lock_arg(prep, k + 1, consts).into_iter().collect();
        record(names, pos + "lockset_guarded".len(), pos, &mut acqs);
    }
    // `self.with_lockset(ctx, |ctx| …)` — resolves to the file's single
    // declared lock (the helper wraps `self.lock.with` internally).
    for (pos, _) in prep.blank.match_indices(".with_lockset(ctx") {
        let names = unique_lock.clone().into_iter().collect();
        record(names, pos + ".with_lockset".len(), pos, &mut acqs);
    }

    for outer in &acqs {
        for inner in &acqs {
            if inner.start <= outer.start || inner.start >= outer.end {
                continue;
            }
            for no in &outer.names {
                for ni in &inner.names {
                    if !edges.iter().any(|e| &e.outer == no && &e.inner == ni) {
                        edges.push(LockEdge {
                            outer: no.clone(),
                            inner: ni.clone(),
                            file: prep.label.clone(),
                            line: inner.line,
                        });
                    }
                }
            }
        }
    }
}

/// DFS cycle extraction over the lock-name graph; each cycle reported
/// once, rotated so its smallest name comes first.
pub(crate) fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.outer).or_default().insert(&e.inner);
    }
    fn dfs<'a>(
        n: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        out: &mut Vec<Vec<String>>,
    ) {
        color.insert(n, 1);
        stack.push(n);
        for &m in adj.get(n).into_iter().flatten() {
            match color.get(m).copied().unwrap_or(0) {
                0 => dfs(m, adj, color, stack, out),
                1 => {
                    let k = stack.iter().position(|&x| x == m).unwrap_or(0);
                    let mut cyc: Vec<String> = stack[k..].iter().map(|s| s.to_string()).collect();
                    if let Some(mi) = (0..cyc.len()).min_by_key(|&i| cyc[i].clone()) {
                        cyc.rotate_left(mi);
                    }
                    if !out.contains(&cyc) {
                        out.push(cyc);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(n, 2);
    }
    let mut color = BTreeMap::new();
    let mut stack = Vec::new();
    let mut out = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            dfs(n, &adj, &mut color, &mut stack, &mut out);
        }
    }
    out
}

/// Runs the lock-order pass over every member crate's `src/` tree rooted
/// at `root`, returning the site inventory, acquisition graph, and cycles.
pub fn lock_order_analysis(root: &Path) -> std::io::Result<LockOrderReport> {
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    let mut report = LockOrderReport::default();
    for member in crate::member_crates(root)? {
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        crate::rust_files(&src_dir, &mut files)?;
        files.sort();
        let mut preps = Vec::new();
        let mut consts = BTreeMap::new();
        for f in &files {
            let src = fs::read_to_string(f)?;
            let p = prep(&label(f), &src);
            scan_lock_consts(&p, &mut consts);
            preps.push(p);
        }
        for p in &preps {
            scan_lock_file(p, &consts, &mut report.sites, &mut report.edges);
        }
    }
    report.cycles = find_cycles(&report.edges);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_sites_resolve_consts_fields_and_nesting() {
        let src = concat!(
            "const A_LOCK: &str = \"lock-a\";\n",
            "struct S { a: SimLock, b: SimLock }\n",
            "impl S {\n",
            "    fn build() -> Self { Self { a: SimLock::new(A_LOCK), b: SimLock::new(\"lock-b\") } }\n",
            "    fn nest(&self, ctx: &mut CoreCtx) {\n",
            "        self.a.with(ctx, |ctx| {\n",
            "            self.b.with(ctx, |_ctx| {});\n",
            "        });\n",
            "    }\n",
            "}\n",
        );
        let p = prep("x.rs", src);
        let mut consts = BTreeMap::new();
        scan_lock_consts(&p, &mut consts);
        assert_eq!(consts.get("A_LOCK").map(String::as_str), Some("lock-a"));
        let (mut sites, mut edges) = (Vec::new(), Vec::new());
        scan_lock_file(&p, &consts, &mut sites, &mut edges);
        assert!(
            sites
                .iter()
                .any(|s| s.lock == "lock-a" && !s.acquisition && s.line == 4),
            "{sites:?}"
        );
        assert!(
            sites
                .iter()
                .any(|s| s.lock == "lock-b" && s.acquisition && s.line == 7),
            "{sites:?}"
        );
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(
            (
                edges[0].outer.as_str(),
                edges[0].inner.as_str(),
                edges[0].line
            ),
            ("lock-a", "lock-b", 7)
        );
    }

    #[test]
    fn with_spin_sites_are_acquisitions_and_nest() {
        let src = concat!(
            "struct S { a: SimLock, b: SimLock }\n",
            "impl S {\n",
            "    fn build() -> Self { Self { a: SimLock::new(\"lock-a\"), b: SimLock::new(\"lock-b\") } }\n",
            "    fn nest(&self, ctx: &mut CoreCtx) {\n",
            "        let (_, _spin) = self.a.with_spin(ctx, |ctx| {\n",
            "            self.b.with(ctx, |_ctx| {});\n",
            "        });\n",
            "    }\n",
            "}\n",
        );
        let p = prep("x.rs", src);
        let (mut sites, mut edges) = (Vec::new(), Vec::new());
        scan_lock_file(&p, &BTreeMap::new(), &mut sites, &mut edges);
        assert!(
            sites
                .iter()
                .any(|s| s.lock == "lock-a" && s.acquisition && s.line == 5),
            "with_spin must register as an acquisition site: {sites:?}"
        );
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(
            (edges[0].outer.as_str(), edges[0].inner.as_str()),
            ("lock-a", "lock-b")
        );
    }

    #[test]
    fn thread_locals_and_test_regions_are_not_lock_sites() {
        let src = concat!(
            "fn f() { CURRENT.with(|c| c.get()); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let l = SimLock::new(\"test\"); l.with(ctx, |ctx| {}); }\n",
            "}\n",
        );
        let p = prep("x.rs", src);
        let (mut sites, mut edges) = (Vec::new(), Vec::new());
        scan_lock_file(&p, &BTreeMap::new(), &mut sites, &mut edges);
        assert!(sites.is_empty(), "{sites:?}");
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn lock_cycles_are_detected_and_reported() {
        let edges = vec![
            LockEdge {
                outer: "b".into(),
                inner: "a".into(),
                file: "x.rs".into(),
                line: 9,
            },
            LockEdge {
                outer: "a".into(),
                inner: "b".into(),
                file: "x.rs".into(),
                line: 4,
            },
        ];
        let cycles = find_cycles(&edges);
        assert_eq!(cycles, vec![vec!["a".to_string(), "b".to_string()]]);
        let report = LockOrderReport {
            sites: Vec::new(),
            edges,
            cycles,
        };
        let v = report.cycle_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].detail.contains("a -> b -> a"), "{}", v[0].detail);
        assert_eq!((v[0].file.as_str(), v[0].line), ("x.rs", 4));
    }

    #[test]
    fn acyclic_lock_graph_is_clean() {
        let edges = vec![LockEdge {
            outer: "a".into(),
            inner: "b".into(),
            file: "x.rs".into(),
            line: 4,
        }];
        assert!(find_cycles(&edges).is_empty());
    }
}
