//! The line-level house rules and the manifest rule, ported onto the
//! shared front-end: the scan runs over the `blank` view (comments and
//! literal contents erased) with the `#[cfg(test)]` mask applied.

use crate::lexer::prep;
use crate::report::LintViolation;
use crate::rules::{has_waiver, IO_WAIVER, PANIC_WAIVER, RELAXED_WAIVER};

const FORBIDDEN_MODULES: [&str; 3] = ["std::process", "std::net", "std::fs"];

/// Options describing where a source file sits, which determines which
/// rules apply to it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// The file belongs to `crates/memsim` (raw address arithmetic is its
    /// job).
    pub in_memsim: bool,
    /// The file is pre-approved as an ambient-I/O edge (callers that
    /// cannot carry a waiver comment); source files normally opt out with
    /// a reasoned [`IO_WAIVER`] comment instead.
    pub io_allowed: bool,
    /// The file belongs to `crates/obs` (relaxed telemetry counters are
    /// its job).
    pub in_obs: bool,
    /// The file lives under a member's `tests/` or `benches/` tree: only
    /// the ambient-I/O rule applies (panic / address / atomic discipline
    /// is a library-code concern).
    pub aux: bool,
}

/// Lints one Rust source file's contents. `label` is used for reporting.
pub fn lint_source(label: &str, src: &str, ctx: FileContext) -> Vec<LintViolation> {
    check_prepped(&prep(label, src), src, ctx)
}

/// Same as [`lint_source`], over an already-prepared file (the workspace
/// walk preps each file once and shares it across all rule passes).
pub fn check_prepped(p: &crate::lexer::Prep, src: &str, ctx: FileContext) -> Vec<LintViolation> {
    let label = &p.label;
    let mut out = Vec::new();
    let waived_panics = has_waiver(src, PANIC_WAIVER);
    let waived_io = has_waiver(src, IO_WAIVER);
    let waived_relaxed = has_waiver(src, RELAXED_WAIVER);
    for (idx, line) in p.blank.lines().enumerate() {
        let in_test = p.in_test(idx + 1);
        let lineno = idx + 1;
        if !in_test && !waived_panics && !ctx.aux {
            for pat in [".unwrap()", ".expect("] {
                if line.contains(pat) {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "panic",
                        detail: format!(
                            "`{pat}` outside #[cfg(test)]; propagate the error or add \
                             `{PANIC_WAIVER} — <reason>`"
                        ),
                    });
                }
            }
        }
        if !in_test && !ctx.in_memsim && !ctx.aux {
            if let Some(arg) = phys_addr_ctor_arg(line) {
                if arg.contains(['+', '*']) || arg.contains("<<") || arg.contains(" - ") {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "phys-addr-arith",
                        detail: format!(
                            "raw PhysAddr arithmetic `PhysAddr({arg})` outside memsim; \
                             use PhysAddr::add or page-frame APIs"
                        ),
                    });
                }
            }
        }
        if !ctx.io_allowed && !waived_io {
            for m in FORBIDDEN_MODULES {
                if line.contains(m) {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "ambient-io",
                        detail: format!(
                            "`{m}` in simulation code; the stack stays deterministic \
                             and self-contained — deliberate I/O edges add \
                             `{IO_WAIVER} — <reason>`"
                        ),
                    });
                }
            }
        }
        if !in_test
            && !ctx.aux
            && !ctx.in_obs
            && !waived_relaxed
            && line.contains("Ordering::Relaxed")
        {
            out.push(LintViolation {
                file: label.to_string(),
                line: lineno,
                rule: "relaxed-atomic",
                detail: format!(
                    "`Ordering::Relaxed` outside the obs counters; pick an ordering \
                     or argue why none is needed via `{RELAXED_WAIVER} — <reason>`"
                ),
            });
        }
    }
    out
}

/// The argument of a `PhysAddr(...)` constructor on this line, if any.
fn phys_addr_ctor_arg(line: &str) -> Option<&str> {
    let start = line.find("PhysAddr(")? + "PhysAddr(".len();
    let rest = &line[start..];
    let mut depth = 1;
    for (k, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..k]);
                }
            }
            _ => {}
        }
    }
    Some(rest)
}

/// Lints one `Cargo.toml`: every dependency must resolve in-tree.
pub fn lint_manifest(label: &str, toml: &str) -> Vec<LintViolation> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            );
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        let in_tree = name.ends_with(".workspace")
            || value.contains("workspace = true")
            || value.contains("path =");
        if !in_tree {
            out.push(LintViolation {
                file: label.to_string(),
                line: idx + 1,
                rule: "external-dep",
                detail: format!(
                    "dependency `{name}` is not an in-tree path/workspace crate; the \
                     workspace must build offline"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "fn prod() { v.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, "panic");
    }

    #[test]
    fn waiver_with_reason_silences_panic_rule_only() {
        let src = "// lint: allow(panic) — invariant panics are documented\nfn f() { v.unwrap(); let p = PhysAddr(a + b); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "phys-addr-arith");
    }

    #[test]
    fn bare_waiver_without_reason_is_ignored() {
        let src = "// lint: allow(panic)\nfn f() { v.unwrap(); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn phys_addr_rules() {
        let ok = "let p = PhysAddr(addr);\nlet q = PhysAddr(0x1000);\n";
        assert!(lint_source("x.rs", ok, FileContext::default()).is_empty());
        let bad = "let p = PhysAddr(base + off * 4096);\n";
        let v = lint_source("x.rs", bad, FileContext::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "phys-addr-arith");
        // memsim owns address arithmetic.
        let memsim = FileContext {
            in_memsim: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", bad, memsim).is_empty());
    }

    #[test]
    fn ambient_io_rule() {
        let src = "use std::fs;\nfn f() { std::process::exit(1); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "ambient-io"));
        let bench = FileContext {
            io_allowed: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", src, bench).is_empty());
    }

    #[test]
    fn io_waiver_with_reason_silences_ambient_io_only() {
        let src = "// lint: allow(ambient-io) — the harness writes BENCH_HOST.json\nuse std::fs;\nfn f() { v.unwrap(); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic");
        // A bare waiver with no reason does not count.
        let bare = "// lint: allow(ambient-io)\nuse std::fs;\n";
        let v = lint_source("x.rs", bare, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
        // A panic waiver does not satisfy the ambient-io rule.
        let cross = "// lint: allow(panic) — deliberate\nuse std::fs;\n";
        let v = lint_source("x.rs", cross, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
    }

    #[test]
    fn relaxed_atomic_rule() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "relaxed-atomic");
        // obs owns relaxed telemetry counters.
        let obs = FileContext {
            in_obs: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", src, obs).is_empty());
        // A reasoned waiver silences it; a bare one does not.
        let waived = "// lint: allow(relaxed-atomic) — stats counter, never synchronized on\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(lint_source("x.rs", waived, FileContext::default()).is_empty());
        let bare = "// lint: allow(relaxed-atomic)\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(lint_source("x.rs", bare, FileContext::default()).len(), 1);
    }

    #[test]
    fn aux_files_only_get_ambient_io() {
        let src = "use std::fs;\nfn f() { v.unwrap(); let p = PhysAddr(a + b); x.load(Ordering::Relaxed); }\n";
        let aux = FileContext {
            aux: true,
            ..Default::default()
        };
        let v = lint_source("tests/x.rs", src, aux);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
    }

    #[test]
    fn manifest_rejects_external_deps() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nobs.workspace = true\nmemsim = { workspace = true }\nlocal = { path = \"../local\" }\nserde = \"1.0\"\n";
        let v = lint_manifest("Cargo.toml", toml);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "external-dep");
        assert!(v[0].detail.contains("serde"));
    }
}
